//! Equivalence suite for the work-stealing frontier engine: on random
//! guarded systems, the engine must produce exactly the serial
//! `Explorer`'s reachable set, state count, transition count, and
//! violation verdicts at every worker count — and byte-identical
//! canonical trails across worker counts and schedules.

use proptest::prelude::*;

use fixd_investigator::parallel::explore_parallel;
use fixd_investigator::{ExploreConfig, ExploreReport, Explorer, GuardedSystemBuilder, Invariant};

/// A random bounded guarded system: `k` counters with caps, plus
/// `transfers` cross-coupling actions that move a unit from one counter
/// to another (guarded to stay within caps, so the space stays finite).
fn random_system(
    caps: Vec<u8>,
    transfers: Vec<(usize, usize)>,
) -> fixd_investigator::GuardedSystem<Vec<u8>> {
    let n = caps.len();
    let mut b = GuardedSystemBuilder::new(vec![0u8; n]);
    for (i, cap) in caps.iter().copied().enumerate() {
        b = b.action(
            &format!("inc{i}"),
            move |s: &Vec<u8>| s[i] < cap,
            move |s| s[i] += 1,
        );
    }
    for (t, (from, to)) in transfers.into_iter().enumerate() {
        let (from, to) = (from % n, to % n);
        if from == to {
            continue;
        }
        let cap_to = caps[to];
        b = b.action(
            &format!("mv{t}_{from}_{to}"),
            move |s: &Vec<u8>| s[from] > 0 && s[to] < cap_to,
            move |s| {
                s[from] -= 1;
                s[to] += 1;
            },
        );
    }
    b.build()
}

fn uncapped() -> ExploreConfig {
    ExploreConfig {
        // No violation cap: both engines collect every violating state,
        // so the comparison is over complete (schedule-free) sets.
        max_violations: usize::MAX,
        ..ExploreConfig::default()
    }
}

/// (depth, end key, violation name) for every violation, sorted — the
/// canonical verdict set.
fn verdicts(
    r: &ExploreReport<fixd_investigator::guarded::GuardedLabel>,
) -> Vec<(usize, u64, String)> {
    let mut v: Vec<_> = r
        .violations
        .iter()
        .map(|t| (t.depth, t.end_fingerprint, t.violation.clone()))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Reachable set, state count, transitions, and violation verdicts
    /// equal the serial explorer's at 1/2/4/8 workers.
    #[test]
    fn stealing_equals_serial(
        caps in proptest::collection::vec(1u8..4, 2..5),
        transfers in proptest::collection::vec((0usize..5, 0usize..5), 0..3),
        bad_sum in 2u32..7,
    ) {
        let sys = random_system(caps.clone(), transfers);
        let inv = Invariant::new("sum-bound", move |s: &Vec<u8>| {
            s.iter().map(|&v| u32::from(v)).sum::<u32>() < bad_sum
        });
        let seq = Explorer::new(&sys, uncapped())
            .invariant(inv.clone())
            .run();
        for workers in [1usize, 2, 4, 8] {
            let par = explore_parallel(&sys, std::slice::from_ref(&inv), &uncapped(), workers);
            prop_assert_eq!(seq.states, par.states, "states (workers={})", workers);
            prop_assert_eq!(seq.transitions, par.transitions, "transitions (workers={})", workers);
            prop_assert_eq!(seq.max_depth_reached, par.max_depth_reached, "depth (workers={})", workers);
            prop_assert_eq!(verdicts(&seq), verdicts(&par), "verdicts (workers={})", workers);
            prop_assert_eq!(seq.deadlocks.len(), par.deadlocks.len());
        }
    }

    /// Violation trails are canonical: byte-identical label sequences at
    /// every worker count, and each is feasible and shortest.
    #[test]
    fn trails_canonical_across_worker_counts(
        caps in proptest::collection::vec(1u8..4, 2..4),
        bad_sum in 1u32..5,
    ) {
        let max_sum: u32 = caps.iter().map(|&c| u32::from(c)).sum();
        prop_assume!(bad_sum <= max_sum);
        let sys = random_system(caps, Vec::new());
        let inv = Invariant::new("sum-bound", move |s: &Vec<u8>| {
            s.iter().map(|&v| u32::from(v)).sum::<u32>() < bad_sum
        });
        let mut baseline: Option<Vec<Vec<String>>> = None;
        for workers in [1usize, 2, 4, 8] {
            let par = explore_parallel(&sys, std::slice::from_ref(&inv), &uncapped(), workers);
            prop_assert!(!par.violations.is_empty());
            let trails: Vec<Vec<String>> = par
                .violations
                .iter()
                .map(|t| t.labels.iter().map(|l| l.name.clone()).collect())
                .collect();
            // Every trail is shortest (relaxed depths are exact BFS
            // distances) and feasible.
            for t in &par.violations {
                prop_assert_eq!(t.depth as u32, bad_sum, "BFS-minimal trail");
            }
            let guided = Explorer::new(&sys, ExploreConfig::default())
                .invariant(inv.clone())
                .run_guided(&par.violations[0].labels);
            prop_assert!(guided.stuck_at.is_none(), "trail must replay");
            match &baseline {
                None => baseline = Some(trails),
                Some(prev) => prop_assert_eq!(prev, &trails, "workers={}", workers),
            }
        }
    }
}
