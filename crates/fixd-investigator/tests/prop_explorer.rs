//! Property-based tests for the Investigator: order-independence of the
//! reachable set, parallel/sequential agreement, trail feasibility.

use proptest::prelude::*;

use fixd_investigator::parallel::explore_parallel;
use fixd_investigator::system::TransitionSystem;
use fixd_investigator::{
    ExploreConfig, Explorer, GuardedSystemBuilder, Invariant, ModelD, NetModel, SearchOrder,
};
use fixd_runtime::{Context, Message, Pid, Program};

/// A bounded random-ish guarded system: `k` counters with caps.
fn counters(caps: Vec<u8>) -> fixd_investigator::GuardedSystem<Vec<u8>> {
    let n = caps.len();
    let mut b = GuardedSystemBuilder::new(vec![0u8; n]);
    for (i, cap) in caps.into_iter().enumerate() {
        b = b.action(
            &format!("inc{i}"),
            move |s: &Vec<u8>| s[i] < cap,
            move |s| s[i] += 1,
        );
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The reachable state count is the product of (cap+1) — and is the
    /// same for BFS, DFS, and random order.
    #[test]
    fn order_independence(caps in proptest::collection::vec(0u8..4, 1..4), seed in any::<u64>()) {
        let expected: usize = caps.iter().map(|&c| usize::from(c) + 1).product();
        let sys = counters(caps);
        for order in [SearchOrder::Bfs, SearchOrder::Dfs, SearchOrder::Random { seed }] {
            let report = Explorer::new(
                &sys,
                ExploreConfig { order, ..ExploreConfig::default() },
            )
            .run();
            prop_assert_eq!(report.states, expected);
            prop_assert!(!report.truncated);
        }
    }

    /// Parallel BFS visits exactly the sequential reachable set.
    #[test]
    fn parallel_equals_sequential(caps in proptest::collection::vec(0u8..5, 1..4),
                                  threads in 1usize..5) {
        let sys = counters(caps);
        let seq = Explorer::new(&sys, ExploreConfig::default()).run();
        let par = explore_parallel(&sys, &[], &ExploreConfig::default(), threads);
        prop_assert_eq!(seq.states, par.states);
        prop_assert_eq!(seq.transitions, par.transitions);
    }

    /// Every violation trail the explorer returns is feasible: guided
    /// re-execution reaches a state violating the same invariant.
    #[test]
    fn trails_are_feasible(caps in proptest::collection::vec(1u8..4, 2..4), bad_sum in 1u32..6) {
        let sys = counters(caps.clone());
        let max_sum: u32 = caps.iter().map(|&c| u32::from(c)).sum();
        prop_assume!(bad_sum <= max_sum);
        let inv = Invariant::new("sum-bound", move |s: &Vec<u8>| {
            s.iter().map(|&v| u32::from(v)).sum::<u32>() < bad_sum
        });
        let explorer = Explorer::new(&sys, ExploreConfig::default()).invariant(inv);
        let report = explorer.run();
        prop_assert!(!report.violations.is_empty());
        for trail in &report.violations {
            let out = explorer.run_guided(&trail.labels);
            prop_assert!(out.stuck_at.is_none(), "infeasible trail");
            prop_assert!(out.violations.iter().any(|(_, n)| n == "sum-bound"));
        }
        // BFS minimality: the first trail has depth == bad_sum (shortest
        // way to reach the bound).
        prop_assert_eq!(report.violations[0].depth as u32, bad_sum);
    }
}

/// Real-program model checking: a broadcastier app with a seeded bug.
struct Bcast {
    hits: u8,
    limit: u8,
}
impl Program for Bcast {
    fn on_start(&mut self, ctx: &mut Context) {
        if ctx.pid() == Pid(0) {
            ctx.broadcast(1, [2]);
        }
    }
    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        self.hits += 1;
        if msg.payload[0] > 0 {
            ctx.send(msg.src, 1, vec![msg.payload[0] - 1]);
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        vec![self.hits, self.limit]
    }
    fn restore(&mut self, b: &[u8]) {
        self.hits = b[0];
        self.limit = b[1];
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Bcast {
            hits: self.hits,
            limit: self.limit,
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// World-model exploration is deterministic and its reachable count
    /// is stable across repeated runs; loss models only grow the space.
    #[test]
    fn world_model_deterministic_and_monotone(n in 2usize..4, seed in 0u64..50) {
        let factory = move || -> Vec<Box<dyn Program>> {
            (0..n).map(|_| Box::new(Bcast { hits: 0, limit: 3 }) as Box<dyn Program>).collect()
        };
        let run = |net| {
            ModelD::from_initial(seed, net, factory)
                .config(ExploreConfig { max_states: 200_000, ..ExploreConfig::default() })
                .run()
        };
        let a = run(NetModel::reliable());
        let b = run(NetModel::reliable());
        prop_assert_eq!(a.states, b.states);
        prop_assert_eq!(a.transitions, b.transitions);
        let lossy = run(NetModel::lossy());
        prop_assert!(lossy.states >= a.states);
    }

    /// Model-state fingerprints never collide with start-order
    /// permutations that lead to genuinely different states; equal
    /// outcomes merge (sanity of the canonical fingerprint).
    #[test]
    fn fingerprint_canonicalization(seed in 0u64..50) {
        let factory = move || -> Vec<Box<dyn Program>> {
            (0..3).map(|_| Box::new(Bcast { hits: 0, limit: 3 }) as Box<dyn Program>).collect()
        };
        let model = fixd_investigator::WorldModel::new(seed, NetModel::reliable(), factory);
        let s0 = model.initial();
        use fixd_investigator::ModelAction::*;
        // Start orders (0,1) and (1,0) both yield "0 and 1 started".
        let a = model.apply(&model.apply(&s0, &Start { pid: Pid(0) }), &Start { pid: Pid(1) });
        let b = model.apply(&model.apply(&s0, &Start { pid: Pid(1) }), &Start { pid: Pid(0) });
        prop_assert_eq!(model.fingerprint(&a), model.fingerprint(&b));
        prop_assert_ne!(model.fingerprint(&a), model.fingerprint(&s0));
    }
}
