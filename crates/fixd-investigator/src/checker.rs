//! [`ModelD`] — the assembled model checker (front-end + back-end), plus
//! from-checkpoint investigation.
//!
//! This is the facade the FixD glue (fixd-core) drives. It bundles a
//! [`WorldModel`] (real programs + environment model) with invariants and
//! an exploration configuration, and supports the two investigation modes
//! the paper contrasts:
//!
//! * **from the initial state** — what CMC does; explores the entire
//!   history (baseline in experiments F3/F4);
//! * **from a restored global checkpoint** (Fig. 4) — what FixD does
//!   after a fault: the peers' checkpoints are assembled into a
//!   [`WorldState`] and exploration starts there, investigating only the
//!   neighborhood of the fault.

use fixd_runtime::{Pid, Program, SharedMessage, SoloHarness, TimerId};

use crate::envmodel::NetModel;
use crate::explorer::{ExploreConfig, ExploreReport, Explorer, GuidedOutcome};
use crate::invariant::Invariant;
use crate::parallel::explore_parallel;
use crate::worldmodel::{ModelAction, WorldModel, WorldState};

/// The ModelD model checker over a distributed application.
pub struct ModelD {
    model: WorldModel,
    invariants: Vec<Invariant<WorldState>>,
    cfg: ExploreConfig,
}

impl ModelD {
    /// Check an application from its initial state (CMC-style whole-run
    /// verification).
    pub fn from_initial(
        seed: u64,
        net: NetModel,
        factory: impl Fn() -> Vec<Box<dyn Program>> + Send + Sync + 'static,
    ) -> Self {
        Self {
            model: WorldModel::new(seed, net, factory),
            invariants: Vec::new(),
            cfg: ExploreConfig::default(),
        }
    }

    /// Check an application from a restored consistent global state —
    /// FixD's fault-response mode (Fig. 4).
    pub fn from_checkpoint(seed: u64, net: NetModel, state: WorldState) -> Self {
        Self {
            model: WorldModel::from_state(seed, net, state),
            invariants: Vec::new(),
            cfg: ExploreConfig::default(),
        }
    }

    /// Assemble a [`WorldState`] from per-process restored programs and
    /// channel contents (the collection step of the Fig. 4 protocol),
    /// then check from it.
    pub fn from_parts(
        seed: u64,
        net: NetModel,
        programs: Vec<Box<dyn Program>>,
        harnesses: Vec<SoloHarness>,
        inflight: Vec<SharedMessage>,
        timers: Vec<(Pid, TimerId)>,
    ) -> Self {
        let state = WorldModel::assemble_state(programs, harnesses, inflight, timers);
        Self::from_checkpoint(seed, net, state)
    }

    /// Add a safety property.
    pub fn invariant(mut self, inv: Invariant<WorldState>) -> Self {
        self.invariants.push(inv);
        self
    }

    /// Set the exploration configuration.
    pub fn config(mut self, cfg: ExploreConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Swap the environment model (§4.3's action swap).
    pub fn set_net(&mut self, net: NetModel) {
        self.model.set_net(net);
    }

    /// Use strict fingerprints (include clocks/RNG positions; needed when
    /// programs branch on `ctx.random()`).
    pub fn strict_fingerprint(mut self, on: bool) -> Self {
        self.model.strict_fingerprint = on;
        self
    }

    /// The underlying model (e.g. for custom exploration).
    pub fn model(&self) -> &WorldModel {
        &self.model
    }

    /// Run the exploration. Returns the report with violation trails.
    pub fn run(&self) -> ExploreReport<ModelAction> {
        Explorer::new(&self.model, self.cfg.clone())
            .invariants(self.invariants.iter().cloned())
            .run()
    }

    /// Run with `threads` parallel workers (BFS).
    pub fn run_parallel(&self, threads: usize) -> ExploreReport<ModelAction> {
        explore_parallel(&self.model, &self.invariants, &self.cfg, threads)
    }

    /// Execute a single prescribed path (the "conventional execution"
    /// mode of §4.3) and report violations along it.
    pub fn run_guided(&self, path: &[ModelAction]) -> GuidedOutcome<WorldState, ModelAction> {
        Explorer::new(&self.model, self.cfg.clone())
            .invariants(self.invariants.iter().cloned())
            .run_guided(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::Context;
    use fixd_runtime::Message;

    /// A tiny 2PC-ish protocol with a bug: the coordinator commits after
    /// the FIRST vote instead of waiting for all — classic atomicity
    /// violation that only some interleavings expose.
    pub struct Coord {
        pub votes: u8,
        pub committed: bool,
        pub n_participants: u8,
    }
    impl Program for Coord {
        fn on_start(&mut self, ctx: &mut Context) {
            for i in 1..ctx.world_size() as u32 {
                ctx.send(Pid(i), 1, vec![]); // VOTE-REQ
            }
        }
        fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
            if msg.tag == 2 {
                self.votes += 1;
                // BUG: should be `self.votes == self.n_participants`.
                if self.votes >= 1 && !self.committed {
                    self.committed = true;
                    for i in 1..ctx.world_size() as u32 {
                        ctx.send(Pid(i), 3, vec![]); // COMMIT
                    }
                }
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            vec![self.votes, u8::from(self.committed), self.n_participants]
        }
        fn restore(&mut self, b: &[u8]) {
            self.votes = b[0];
            self.committed = b[1] != 0;
            self.n_participants = b[2];
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Coord {
                votes: self.votes,
                committed: self.committed,
                n_participants: self.n_participants,
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    pub struct Participant {
        pub will_vote: bool,
        pub committed: bool,
    }
    impl Program for Participant {
        fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
            match msg.tag {
                1 if self.will_vote => ctx.send(Pid(0), 2, vec![]), // VOTE-YES
                3 => self.committed = true,
                _ => {}
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            vec![u8::from(self.will_vote), u8::from(self.committed)]
        }
        fn restore(&mut self, b: &[u8]) {
            self.will_vote = b[0] != 0;
            self.committed = b[1] != 0;
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Participant {
                will_vote: self.will_vote,
                committed: self.committed,
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Atomicity: nobody commits unless every participant voted yes.
    fn atomicity() -> Invariant<WorldState> {
        Invariant::new("atomic-commit", |s: &WorldState| {
            let n = s.width();
            let voters = (1..n)
                .filter(|&i| {
                    s.program::<Participant>(Pid(i as u32))
                        .is_some_and(|p| p.will_vote)
                })
                .count();
            let committed = (1..n).any(|i| {
                s.program::<Participant>(Pid(i as u32))
                    .is_some_and(|p| p.committed)
            });
            !committed || voters == n - 1
        })
    }

    fn factory() -> Vec<Box<dyn Program>> {
        vec![
            Box::new(Coord {
                votes: 0,
                committed: false,
                n_participants: 2,
            }) as Box<dyn Program>,
            Box::new(Participant {
                will_vote: true,
                committed: false,
            }),
            Box::new(Participant {
                will_vote: false,
                committed: false,
            }), // NO-voter
        ]
    }

    #[test]
    fn modeld_finds_the_premature_commit() {
        let md = ModelD::from_initial(1, NetModel::reliable(), factory).invariant(atomicity());
        let report = md.run();
        assert!(!report.violations.is_empty(), "{}", report.summary());
        let trail = &report.violations[0];
        assert_eq!(trail.violation, "atomic-commit");
        // The bug needs at least: start P0+P1, VOTE-REQ to P1, VOTE back
        // (premature COMMIT), COMMIT delivered — 5 steps.
        assert!(trail.depth >= 5, "depth={}", trail.depth);
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        let md = ModelD::from_initial(1, NetModel::reliable(), factory).invariant(atomicity());
        let seq = md.run();
        let par = md.run_parallel(4);
        assert_eq!(seq.states, par.states);
        assert_eq!(!seq.violations.is_empty(), !par.violations.is_empty());
    }

    #[test]
    fn trail_replays_in_guided_mode() {
        let md = ModelD::from_initial(1, NetModel::reliable(), factory).invariant(atomicity());
        let report = md.run();
        let trail = &report.violations[0];
        let out = md.run_guided(&trail.labels);
        assert!(out.stuck_at.is_none(), "trail must be feasible");
        assert_eq!(out.executed, trail.depth);
        assert!(
            out.violations.iter().any(|(_, n)| n == "atomic-commit"),
            "replaying the trail reproduces the violation"
        );
    }

    #[test]
    fn from_checkpoint_explores_fewer_states() {
        // Whole-history exploration vs. investigation from midway.
        let md_full = ModelD::from_initial(1, NetModel::reliable(), factory).invariant(atomicity());
        let full = md_full.run();

        // Build the "checkpoint": run the real path up to the votes being
        // in flight, then investigate only from there.
        let model = WorldModel::new(1, NetModel::reliable(), factory);
        use crate::system::TransitionSystem;
        let mut s = model.initial();
        for pid in 0..3u32 {
            s = model.apply(&s, &ModelAction::Start { pid: Pid(pid) });
        }
        // Deliver both VOTE-REQs.
        s = model.apply(
            &s,
            &ModelAction::Deliver {
                src: Pid(0),
                dst: Pid(1),
            },
        );
        s = model.apply(
            &s,
            &ModelAction::Deliver {
                src: Pid(0),
                dst: Pid(2),
            },
        );

        let md_ckpt = ModelD::from_checkpoint(1, NetModel::reliable(), s).invariant(atomicity());
        let from_ckpt = md_ckpt.run();
        assert!(
            !from_ckpt.violations.is_empty(),
            "bug still found from checkpoint"
        );
        assert!(
            from_ckpt.states < full.states,
            "from-checkpoint should be cheaper: {} vs {}",
            from_ckpt.states,
            full.states
        );
    }

    #[test]
    fn lossy_net_model_expands_the_space() {
        let reliable = ModelD::from_initial(1, NetModel::reliable(), factory).run();
        let lossy = ModelD::from_initial(1, NetModel::lossy(), factory).run();
        assert!(lossy.states > reliable.states);
    }
}
