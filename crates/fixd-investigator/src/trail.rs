//! Trails: paths from the exploration root to a violating state.
//!
//! Paper §3.3: the Investigator provides *"the ability to \[return\] a set
//! of trails that lead to invariant violations"*. A trail is the labelled
//! path the engine reconstructs from its parent map; the Healer and the
//! bug report hand it to the programmer.

/// One path to a bad state.
#[derive(Clone, Debug, PartialEq)]
pub struct Trail<L> {
    /// Transition labels from the exploration root, in order.
    pub labels: Vec<L>,
    /// Name of the violated invariant ("deadlock" for deadlock trails).
    pub violation: String,
    /// Fingerprint of the violating state.
    pub end_fingerprint: u64,
    /// Depth (= `labels.len()`, kept explicit for truncated trails).
    pub depth: usize,
}

impl<L> Trail<L> {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True for a root violation (the initial state itself is bad).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Render with a label-naming function.
    pub fn render(&self, name: impl Fn(&L) -> String) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "violation: {} (depth {})", self.violation, self.depth);
        for (i, l) in self.labels.iter().enumerate() {
            let _ = writeln!(s, "  {:>3}. {}", i + 1, name(l));
        }
        s
    }

    /// Map labels (e.g. to strings for storage in a report).
    pub fn map_labels<M>(self, f: impl Fn(L) -> M) -> Trail<M> {
        Trail {
            labels: self.labels.into_iter().map(f).collect(),
            violation: self.violation,
            end_fingerprint: self.end_fingerprint,
            depth: self.depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_len() {
        let t = Trail {
            labels: vec!["a", "b"],
            violation: "mutex".to_string(),
            end_fingerprint: 7,
            depth: 2,
        };
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let s = t.render(|l| l.to_string());
        assert!(s.contains("violation: mutex (depth 2)"));
        assert!(s.contains("1. a"));
        assert!(s.contains("2. b"));
    }

    #[test]
    fn map_labels_preserves_metadata() {
        let t = Trail {
            labels: vec![1, 2],
            violation: "x".into(),
            end_fingerprint: 9,
            depth: 2,
        };
        let m = t.map_labels(|l| format!("L{l}"));
        assert_eq!(m.labels, vec!["L1", "L2"]);
        assert_eq!(m.end_fingerprint, 9);
    }
}
