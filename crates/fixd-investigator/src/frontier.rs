//! The work-stealing frontier engine.
//!
//! Exploration factored cspx-style into three replaceable parts:
//!
//! * a [`TransitionProvider`] — where states and their successors come
//!   from (every [`TransitionSystem`] is one for free);
//! * a [`StateStore`] — the deduplicating visited set that assigns each
//!   distinct state its 64-bit key ([`FingerprintStore`] hashes states,
//!   [`PagedStateStore`] interns their serialized bytes into a shared
//!   [`fixd_store::PageStore`] so the page hashes ARE the identity and a
//!   revisit is a refcount bump, not a rehash of the full state);
//! * a [`WorkQueue`] — how pending states are distributed over workers
//!   ([`StealQueue`]: per-worker deques, owners pop LIFO, idle workers
//!   steal half a victim's deque from the front).
//!
//! Unlike the old layer-barriered parallel BFS, nothing here
//! synchronizes on depth: workers expand whatever is nearest, and a
//! per-state *relaxation* rule keeps the result deterministic anyway.
//! Every discovered edge `p --(label #i)--> c` offers the candidate
//! tuple `(depth(p)+1, key(p), i)` to `c`; the state keeps the
//! lexicographic minimum and is re-expanded when its depth strictly
//! improves. At quiescence every depth equals the exact BFS distance and
//! every parent pointer is the canonical minimum over shortest-path
//! predecessors — so the reachable set, the verdict, every violation
//! trail, and the transition count are byte-identical for ANY worker
//! count and ANY steal schedule.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use fixd_store::{PageStore, PagedImage, StoreStats, DEFAULT_PAGE_SIZE};

use crate::explorer::{ExploreConfig, ExploreReport};
use crate::invariant::Invariant;
use crate::system::TransitionSystem;
use crate::trail::Trail;

/// Supplies the root state and successor transitions to the engine.
///
/// Blanket-implemented for every [`TransitionSystem`]; implement it
/// directly for sources that are not transition systems (e.g. replaying
/// a recorded graph).
pub trait TransitionProvider: Sync {
    /// Global state of the explored system.
    type State: Clone + Send;
    /// Transition label.
    type Label: Clone + Send + PartialEq + std::fmt::Debug;

    /// The exploration root.
    fn root(&self) -> Self::State;

    /// All `(label, successor)` pairs enabled in `s`, in the system's
    /// canonical label order (the order indexes the canonical-parent
    /// tie-break).
    fn successors(&self, s: &Self::State) -> Vec<(Self::Label, Self::State)>;

    /// Is a state with no successors an acceptable end state (not a
    /// deadlock)?
    fn expected_terminal(&self, _s: &Self::State) -> bool {
        true
    }
}

impl<T: TransitionSystem> TransitionProvider for T {
    type State = T::State;
    type Label = T::Label;

    fn root(&self) -> T::State {
        self.initial()
    }

    fn successors(&self, s: &T::State) -> Vec<(T::Label, T::State)> {
        self.enabled(s)
            .into_iter()
            .map(|l| {
                let next = self.apply(s, &l);
                (l, next)
            })
            .collect()
    }

    fn expected_terminal(&self, s: &T::State) -> bool {
        self.is_expected_terminal(s)
    }
}

/// Dedup counters of a [`StateStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Interns that found the state already present.
    pub hits: u64,
    /// Interns that inserted a fresh state.
    pub misses: u64,
}

impl DedupStats {
    /// Fraction of interns that deduplicated (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The deduplicating visited set: maps each distinct state to a stable
/// 64-bit key. `intern` must be linearizable (exactly one caller sees
/// `fresh == true` per distinct state) and the key must not depend on
/// intern order.
pub trait StateStore<S>: Sync {
    /// Intern a state; returns its key and whether this call inserted it.
    fn intern(&self, s: &S) -> (u64, bool);

    /// Distinct states interned so far.
    fn len(&self) -> usize;

    /// True before anything was interned.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters.
    fn dedup_stats(&self) -> DedupStats;
}

const STORE_SHARDS: usize = 64;

/// A [`StateStore`] keyed by a caller-provided 64-bit hash function
/// (typically [`TransitionSystem::fingerprint`]): the exact visited-set
/// semantics of the serial [`crate::Explorer`].
pub struct FingerprintStore<F> {
    shards: Vec<Mutex<std::collections::HashSet<u64>>>,
    hash: F,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<F> FingerprintStore<F> {
    /// An empty store hashing states with `hash`.
    pub fn new(hash: F) -> Self {
        Self {
            shards: (0..STORE_SHARDS)
                .map(|_| Mutex::new(std::collections::HashSet::new()))
                .collect(),
            hash,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<S, F: Fn(&S) -> u64 + Sync> StateStore<S> for FingerprintStore<F> {
    fn intern(&self, s: &S) -> (u64, bool) {
        let key = (self.hash)(s);
        let fresh = self.shards[(key % STORE_SHARDS as u64) as usize]
            .lock()
            .insert(key);
        if fresh {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (key, fresh)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|m| m.lock().len()).sum()
    }

    fn dedup_stats(&self) -> DedupStats {
        DedupStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// A [`StateStore`] whose identity is **content hashes through
/// `fixd-store` paging**: each state is serialized and interned as a
/// [`PagedImage`] in a shared [`PageStore`]; its key is
/// [`PagedImage::identity`] (FNV over the page keys). States that share
/// pages — localized mutations, common substructure, other explorations
/// over the same store — share storage, and re-interning a visited state
/// is per-page refcount bumps on hash hits rather than a rehash of the
/// full state.
pub struct PagedStateStore<F> {
    pages: PageStore,
    page_size: usize,
    encode: F,
    shards: Vec<Mutex<HashMap<u64, PagedImage>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<F> PagedStateStore<F> {
    /// A store serializing states with `encode` into `pages`. The
    /// encoding must be canonical: equal states (as the exploration
    /// should identify them) must encode to equal bytes.
    pub fn new(pages: PageStore, encode: F) -> Self {
        Self::with_page_size(pages, encode, DEFAULT_PAGE_SIZE)
    }

    /// Same, with an explicit page size.
    pub fn with_page_size(pages: PageStore, encode: F, page_size: usize) -> Self {
        Self {
            pages,
            page_size,
            encode,
            shards: (0..STORE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The backing page store (shared; clone to hold onto it).
    pub fn page_store(&self) -> &PageStore {
        &self.pages
    }

    /// Page-level intern counters from the backing store.
    pub fn page_stats(&self) -> StoreStats {
        self.pages.stats()
    }
}

impl<S, F: Fn(&S, &mut Vec<u8>) + Sync> StateStore<S> for PagedStateStore<F> {
    fn intern(&self, s: &S) -> (u64, bool) {
        let mut buf = Vec::new();
        (self.encode)(s, &mut buf);
        let img = PagedImage::from_bytes_with(&self.pages, &buf, self.page_size);
        let key = img.identity();
        let mut shard = self.shards[(key % STORE_SHARDS as u64) as usize].lock();
        let fresh = match shard.entry(key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                // Keep the image: its handles keep the pages resident, so
                // every future revisit dedups against them.
                e.insert(img);
                true
            }
            std::collections::hash_map::Entry::Occupied(_) => {
                // `img` drops here; its refcount bumps roll back and the
                // interned copy stays.
                false
            }
        };
        drop(shard);
        if fresh {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (key, fresh)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|m| m.lock().len()).sum()
    }

    fn dedup_stats(&self) -> DedupStats {
        DedupStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Distributes pending state keys over `workers` workers.
pub trait WorkQueue<I>: Sync {
    /// Enqueue `item` on `worker`'s lane.
    fn push(&self, worker: usize, item: I);

    /// Dequeue work for `worker` — its own lane first, then (for
    /// stealing queues) other workers' lanes.
    fn pop(&self, worker: usize) -> Option<I>;

    /// Successful steal operations so far (0 for non-stealing queues).
    fn steals(&self) -> u64 {
        0
    }
}

/// Per-worker deques with steal-half: owners push/pop LIFO at the back
/// (depth-first locality, hot caches); an idle worker scans the other
/// lanes and moves the front *half* of the first non-empty one into its
/// own lane (the front of a lane is its oldest, shallowest work — the
/// part the owner would reach last). Two locks are never held at once.
pub struct StealQueue<I> {
    lanes: Vec<Mutex<VecDeque<I>>>,
    steals: AtomicU64,
}

impl<I> StealQueue<I> {
    /// A queue with one lane per worker.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one lane");
        Self {
            lanes: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// Number of lanes.
    pub fn workers(&self) -> usize {
        self.lanes.len()
    }
}

impl<I: Send> WorkQueue<I> for StealQueue<I> {
    fn push(&self, worker: usize, item: I) {
        self.lanes[worker].lock().push_back(item);
    }

    fn pop(&self, worker: usize) -> Option<I> {
        if let Some(item) = self.lanes[worker].lock().pop_back() {
            return Some(item);
        }
        let n = self.lanes.len();
        for off in 1..n {
            let victim = (worker + off) % n;
            let mut stolen: VecDeque<I> = {
                let mut lane = self.lanes[victim].lock();
                let len = lane.len();
                if len == 0 {
                    continue;
                }
                lane.drain(..len.div_ceil(2)).collect()
            };
            self.steals.fetch_add(1, Ordering::Relaxed);
            let item = stolen.pop_back();
            if !stolen.is_empty() {
                let mut own = self.lanes[worker].lock();
                // Preserve relative order at the front of our lane so the
                // stolen batch stays stealable-from in turn.
                while let Some(i) = stolen.pop_back() {
                    own.push_front(i);
                }
            }
            return item;
        }
        None
    }

    fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

/// Per-state record in the exploration graph.
struct Info<S, L> {
    state: S,
    depth: usize,
    /// Canonical in-edge: `(parent key, label index, label)`, minimized
    /// lexicographically by `(depth, parent key, label index)`.
    parent: Option<(u64, u32, L)>,
    /// A queue entry for this key exists.
    queued: bool,
    /// Children have been processed at least once (guards the one-time
    /// transition/deadlock accounting).
    expanded: bool,
    /// False for violating states: they relax (their trail must be
    /// shortest) but are never expanded, matching the serial engine.
    expandable: bool,
}

struct InfoMap<S, L> {
    shards: Vec<Mutex<HashMap<u64, Info<S, L>>>>,
}

impl<S, L> InfoMap<S, L> {
    fn new() -> Self {
        Self {
            shards: (0..STORE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    #[inline]
    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Info<S, L>>> {
        &self.shards[(key % STORE_SHARDS as u64) as usize]
    }
}

/// What one engine run measured about itself (the report carries the
/// verdict; this carries the performance story).
#[derive(Clone, Debug, Default)]
pub struct FrontierMetrics {
    /// Workers used.
    pub workers: usize,
    /// Per-worker busy time (lock waits included): the critical path of
    /// the run under perfect scheduling is the maximum entry.
    pub busy: Vec<Duration>,
    /// Per-worker count of nodes popped and processed. On hosts with
    /// fewer cores than workers the busy clocks absorb preemption, so
    /// load balance is the contention-free signal: the modelled critical
    /// path is `max_share()` of the serial work.
    pub processed: Vec<u64>,
    /// Successful steals.
    pub steals: u64,
    /// Visited-set dedup counters.
    pub dedup: DedupStats,
    /// States re-expanded because their depth improved after their first
    /// expansion (the price of barrier-free determinism; ~0 in practice).
    pub reexpansions: u64,
}

impl FrontierMetrics {
    /// The longest per-worker busy time — the modelled critical path.
    pub fn critical_path(&self) -> Duration {
        self.busy.iter().max().copied().unwrap_or_default()
    }

    /// The busiest worker's share of all processed nodes, in `[1/workers,
    /// 1.0]`. Under uniform per-node cost, a run balanced to share `s`
    /// completes in `s` of the serial time on enough cores.
    pub fn max_share(&self) -> f64 {
        let total: u64 = self.processed.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = self.processed.iter().copied().max().unwrap_or(0);
        max as f64 / total as f64
    }
}

/// Explore `provider` over `store` and `queue` with `workers` workers.
///
/// Semantics (states, transitions, violations, deadlocks, truncation)
/// match the serial [`crate::Explorer`] in BFS order, independent of
/// `workers`; see the module docs for why. `cfg.order` and
/// `cfg.use_reduction` are ignored (the engine is BFS-equivalent and
/// unreduced). Violation and deadlock trails are sorted canonically by
/// `(depth, end key, violation name)`.
pub fn explore_frontier<P, St, Q>(
    provider: &P,
    store: &St,
    queue: &Q,
    invariants: &[Invariant<P::State>],
    cfg: &ExploreConfig,
    workers: usize,
) -> (ExploreReport<P::Label>, FrontierMetrics)
where
    P: TransitionProvider,
    St: StateStore<P::State>,
    Q: WorkQueue<u64>,
{
    assert!(workers > 0, "need at least one worker");

    let infos: InfoMap<P::State, P::Label> = InfoMap::new();
    let pending = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let truncated = AtomicBool::new(false);
    let violation_count = AtomicUsize::new(0);
    let reexpansions = AtomicU64::new(0);
    // (end key, violation name): recorded once per violating state by
    // whichever worker freshly interned it.
    let violations: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());
    let deadlocks: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    // Root: interned, recorded, and (matching the serial engine) always
    // expandable — even a violating root is expanded unless the run
    // stops at the first violation.
    let root = provider.root();
    let (root_key, _) = store.intern(&root);
    let mut root_violating = false;
    if let Some(inv) = invariants.iter().find(|i| !i.holds(&root)) {
        violations.lock().push((root_key, inv.name.clone()));
        violation_count.store(1, Ordering::Relaxed);
        root_violating = true;
    }
    infos.shard(root_key).lock().insert(
        root_key,
        Info {
            state: root,
            depth: 0,
            parent: None,
            queued: true,
            expanded: false,
            expandable: true,
        },
    );
    let stop_now = root_violating && cfg.stop_at_first_violation;
    if stop_now {
        stop.store(true, Ordering::Relaxed);
    } else {
        pending.fetch_add(1, Ordering::Relaxed);
        queue.push(0, root_key);
    }

    let transitions_total = AtomicU64::new(0);
    let lanes: Vec<(Duration, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let infos = &infos;
            let pending = &pending;
            let stop = &stop;
            let truncated = &truncated;
            let violation_count = &violation_count;
            let violations = &violations;
            let deadlocks = &deadlocks;
            let transitions_total = &transitions_total;
            let reexpansions = &reexpansions;
            handles.push(scope.spawn(move || {
                let mut busy = Duration::ZERO;
                let mut processed = 0u64;
                let mut transitions = 0u64;
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Some(key) = queue.pop(w) else {
                        if pending.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        std::thread::yield_now();
                        continue;
                    };
                    let t0 = Instant::now();
                    process_key::<P, St, Q>(
                        provider,
                        store,
                        queue,
                        invariants,
                        cfg,
                        w,
                        key,
                        infos,
                        pending,
                        stop,
                        truncated,
                        violation_count,
                        violations,
                        deadlocks,
                        reexpansions,
                        &mut transitions,
                    );
                    busy += t0.elapsed();
                    processed += 1;
                    // Only after the children are pushed: pending == 0
                    // then proves global quiescence.
                    pending.fetch_sub(1, Ordering::Release);
                }
                transitions_total.fetch_add(transitions, Ordering::Relaxed);
                (busy, processed)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Assemble the report from the converged graph.
    let mut max_depth_reached = 0usize;
    for shard in &infos.shards {
        for info in shard.lock().values() {
            max_depth_reached = max_depth_reached.max(info.depth);
        }
    }
    let depth_of = |key: u64| -> usize {
        infos
            .shard(key)
            .lock()
            .get(&key)
            .map(|i| i.depth)
            .unwrap_or(0)
    };
    let reconstruct = |end: u64, violation: &str| -> Trail<P::Label> {
        let mut labels = Vec::new();
        let mut at = end;
        while at != root_key {
            let parent = infos
                .shard(at)
                .lock()
                .get(&at)
                .and_then(|i| i.parent.clone());
            match parent {
                Some((prev, _, l)) => {
                    labels.push(l);
                    at = prev;
                }
                None => break,
            }
        }
        labels.reverse();
        Trail {
            depth: labels.len(),
            labels,
            violation: violation.to_string(),
            end_fingerprint: end,
        }
    };

    let mut violation_ends = violations.into_inner();
    violation_ends.sort_by(|a, b| (depth_of(a.0), a.0, &a.1).cmp(&(depth_of(b.0), b.0, &b.1)));
    let mut deadlock_ends = deadlocks.into_inner();
    deadlock_ends.sort_by_key(|&k| (depth_of(k), k));

    let report = ExploreReport {
        states: store.len(),
        transitions: transitions_total.load(Ordering::Relaxed),
        max_depth_reached,
        violations: violation_ends
            .into_iter()
            .take(cfg.max_violations)
            .map(|(k, name)| reconstruct(k, &name))
            .collect(),
        deadlocks: deadlock_ends
            .into_iter()
            .map(|k| reconstruct(k, "deadlock"))
            .collect(),
        // A violating root under stop-at-first is a complete answer, not
        // a truncation — matching the serial engine's early return.
        truncated: truncated.load(Ordering::Relaxed),
    };
    let (busy, processed): (Vec<Duration>, Vec<u64>) = lanes.into_iter().unzip();
    let metrics = FrontierMetrics {
        workers,
        busy,
        processed,
        steals: queue.steals(),
        dedup: store.dedup_stats(),
        reexpansions: reexpansions.load(Ordering::Relaxed),
    };
    (report, metrics)
}

/// Expand one popped key: read its current depth, compute successors,
/// account once, and relax every out-edge.
#[allow(clippy::too_many_arguments)]
fn process_key<P, St, Q>(
    provider: &P,
    store: &St,
    queue: &Q,
    invariants: &[Invariant<P::State>],
    cfg: &ExploreConfig,
    worker: usize,
    key: u64,
    infos: &InfoMap<P::State, P::Label>,
    pending: &AtomicUsize,
    stop: &AtomicBool,
    truncated: &AtomicBool,
    violation_count: &AtomicUsize,
    violations: &Mutex<Vec<(u64, String)>>,
    deadlocks: &Mutex<Vec<u64>>,
    reexpansions: &AtomicU64,
    transitions: &mut u64,
) where
    P: TransitionProvider,
    St: StateStore<P::State>,
    Q: WorkQueue<u64>,
{
    let (state, depth, first) = {
        let mut shard = infos.shard(key).lock();
        let info = shard.get_mut(&key).expect("queued key has an info entry");
        info.queued = false;
        let first = !info.expanded;
        (info.state.clone(), info.depth, first)
    };

    let succs = provider.successors(&state);
    if succs.is_empty() {
        if first {
            infos
                .shard(key)
                .lock()
                .get_mut(&key)
                .expect("entry")
                .expanded = true;
            if cfg.detect_deadlocks && !provider.expected_terminal(&state) {
                deadlocks.lock().push(key);
            }
        }
        return;
    }
    if depth >= cfg.max_depth {
        // Not expanded: if the depth later improves below the cap, the
        // improver requeues it.
        truncated.store(true, Ordering::Relaxed);
        return;
    }
    if first {
        *transitions += succs.len() as u64;
    } else {
        reexpansions.fetch_add(1, Ordering::Relaxed);
    }
    {
        let mut shard = infos.shard(key).lock();
        shard.get_mut(&key).expect("entry").expanded = true;
    }

    let child_depth = depth + 1;
    for (idx, (label, next)) in succs.into_iter().enumerate() {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let (ckey, fresh) = store.intern(&next);
        let candidate = (child_depth, key, idx as u32);
        if fresh {
            // We own classification: check invariants outside any lock,
            // then publish the entry.
            let bad = invariants
                .iter()
                .find(|i| !i.holds(&next))
                .map(|i| i.name.clone());
            let expandable = bad.is_none();
            {
                let mut shard = infos.shard(ckey).lock();
                shard.insert(
                    ckey,
                    Info {
                        state: next,
                        depth: child_depth,
                        parent: Some((key, idx as u32, label)),
                        queued: expandable,
                        expanded: false,
                        expandable,
                    },
                );
            }
            if let Some(name) = bad {
                violations.lock().push((ckey, name));
                let seen = violation_count.fetch_add(1, Ordering::Relaxed) + 1;
                if seen >= cfg.max_violations || cfg.stop_at_first_violation {
                    truncated.store(true, Ordering::Relaxed);
                    stop.store(true, Ordering::Relaxed);
                }
            } else {
                pending.fetch_add(1, Ordering::Release);
                queue.push(worker, ckey);
            }
            if store.len() >= cfg.max_states {
                truncated.store(true, Ordering::Relaxed);
                stop.store(true, Ordering::Relaxed);
            }
        } else {
            // Relax: keep the lexicographic minimum (depth, parent key,
            // label index); requeue on strict depth improvement. The
            // retry loop covers the tiny window where the fresh interner
            // has not yet published its info entry.
            loop {
                let mut shard = infos.shard(ckey).lock();
                let Some(info) = shard.get_mut(&ckey) else {
                    drop(shard);
                    std::thread::yield_now();
                    continue;
                };
                let current = (
                    info.depth,
                    info.parent.as_ref().map(|p| p.0).unwrap_or(0),
                    info.parent.as_ref().map(|p| p.1).unwrap_or(0),
                );
                if info.parent.is_some() && candidate < current {
                    let improved_depth = candidate.0 < current.0;
                    info.depth = candidate.0;
                    info.parent = Some((key, idx as u32, label.clone()));
                    if improved_depth && info.expandable && !info.queued {
                        info.queued = true;
                        drop(shard);
                        pending.fetch_add(1, Ordering::Release);
                        queue.push(worker, ckey);
                    }
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::Explorer;
    use crate::guarded::GuardedSystemBuilder;

    #[test]
    fn steal_queue_owner_lifo_and_steal_half() {
        let q: StealQueue<u64> = StealQueue::new(2);
        for i in 0..8 {
            q.push(0, i);
        }
        // Owner pops LIFO.
        assert_eq!(q.pop(0), Some(7));
        // Thief takes half the victim's lane from the front (oldest).
        let stolen = q.pop(1).expect("steals from lane 0");
        assert!(stolen < 4, "stole from the front, got {stolen}");
        assert_eq!(q.steals(), 1);
        // Everything drains exactly once between the two workers.
        let mut drained = vec![7, stolen];
        while let Some(i) = q.pop(0) {
            drained.push(i);
        }
        while let Some(i) = q.pop(1) {
            drained.push(i);
        }
        drained.sort_unstable();
        assert_eq!(drained, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn fingerprint_store_interns_once() {
        let store = FingerprintStore::new(|s: &u64| *s ^ 0xABCD);
        let (k1, fresh1) = store.intern(&7);
        let (k2, fresh2) = store.intern(&7);
        assert_eq!(k1, k2);
        assert!(fresh1);
        assert!(!fresh2);
        assert_eq!(store.len(), 1);
        let stats = store.dedup_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn paged_store_identity_is_content_hash_and_pages_shared() {
        let pages = PageStore::new();
        let store = PagedStateStore::with_page_size(
            pages.clone(),
            |s: &Vec<u8>, out: &mut Vec<u8>| out.extend_from_slice(s),
            64,
        );
        let a: Vec<u8> = vec![1u8; 640];
        let mut b = a.clone();
        b[630] = 2; // differs in the last page only
        let (ka, fa) = StateStore::intern(&store, &a);
        let (kb, fb) = StateStore::intern(&store, &b);
        assert!(fa && fb);
        assert_ne!(ka, kb);
        // Content sharing: the two states share the all-ones page.
        assert!(
            pages.stats().live_bytes < a.len() + b.len(),
            "pages shared across states"
        );
        // Revisit: same key, not fresh, and no new pages.
        let pages_before = pages.stats().live_pages;
        let (ka2, fa2) = StateStore::intern(&store, &a);
        assert_eq!(ka, ka2);
        assert!(!fa2);
        assert_eq!(pages.stats().live_pages, pages_before);
        assert_eq!(StateStore::<Vec<u8>>::len(&store), 2);
    }

    /// The engine over a paged store must agree with the serial explorer
    /// when the encoding is exactly as discriminating as the
    /// fingerprint.
    #[test]
    fn paged_store_exploration_matches_serial() {
        let sys = GuardedSystemBuilder::new([0u8; 3])
            .action("x", |s: &[u8; 3]| s[0] < 3, |s| s[0] += 1)
            .action("y", |s: &[u8; 3]| s[1] < 3, |s| s[1] += 1)
            .action("z", |s: &[u8; 3]| s[2] < 3, |s| s[2] += 1)
            .build();
        let seq = Explorer::new(&sys, ExploreConfig::default()).run();
        for workers in [1usize, 4] {
            let store = PagedStateStore::with_page_size(
                PageStore::new(),
                |s: &[u8; 3], out: &mut Vec<u8>| out.extend_from_slice(s),
                16,
            );
            let queue = StealQueue::new(workers);
            let (par, metrics) = explore_frontier(
                &sys,
                &store,
                &queue,
                &[],
                &ExploreConfig::default(),
                workers,
            );
            assert_eq!(seq.states, par.states, "workers={workers}");
            assert_eq!(seq.transitions, par.transitions);
            assert!(par.clean());
            // Every revisited edge target was a dedup hit.
            assert_eq!(metrics.dedup.misses as usize, par.states);
            assert_eq!(
                metrics.dedup.hits + metrics.dedup.misses,
                par.transitions + 1,
                "one intern per computed successor plus the root"
            );
        }
    }

    #[test]
    fn metrics_report_busy_lanes() {
        let sys = GuardedSystemBuilder::new([0u8; 2])
            .action("a", |s: &[u8; 2]| s[0] < 40, |s| s[0] += 1)
            .action("b", |s: &[u8; 2]| s[1] < 40, |s| s[1] += 1)
            .build();
        let store = FingerprintStore::new(|s: &[u8; 2]| u64::from(s[0]) << 8 | u64::from(s[1]));
        let queue = StealQueue::new(4);
        let (report, metrics) =
            explore_frontier(&sys, &store, &queue, &[], &ExploreConfig::default(), 4);
        assert_eq!(report.states, 41 * 41);
        assert_eq!(metrics.workers, 4);
        assert_eq!(metrics.busy.len(), 4);
        assert!(metrics.critical_path() >= *metrics.busy.iter().min().unwrap());
        // Every reachable state is popped at least once; re-expansions
        // can only add to the count.
        assert!(metrics.processed.iter().sum::<u64>() >= report.states as u64);
        let share = metrics.max_share();
        assert!((0.25..=1.0).contains(&share), "share={share}");
    }
}
