//! Safety properties: named predicates over global states.
//!
//! The engine "verifies that no user-specified invariants are violated"
//! (§4.3). Invariants over the real-program [`crate::WorldState`] can be
//! written directly against typed program state via
//! [`Invariant::for_program`], the ergonomic equivalent of CMC's
//! C-embedded invariants.

use std::sync::Arc;

/// A named safety property: `check` must hold in every reachable state.
#[derive(Clone)]
pub struct Invariant<S> {
    pub name: String,
    pub check: Arc<dyn Fn(&S) -> bool + Send + Sync>,
}

impl<S> Invariant<S> {
    /// Build an invariant from a closure.
    pub fn new(name: &str, check: impl Fn(&S) -> bool + Send + Sync + 'static) -> Self {
        Self {
            name: name.to_string(),
            check: Arc::new(check),
        }
    }

    /// Does the invariant hold in `s`?
    pub fn holds(&self, s: &S) -> bool {
        (self.check)(s)
    }

    /// Conjunction of several invariants under one name.
    pub fn all_of(name: &str, invs: Vec<Invariant<S>>) -> Invariant<S>
    where
        S: 'static,
    {
        Invariant::new(name, move |s| invs.iter().all(|i| i.holds(s)))
    }
}

impl Invariant<crate::worldmodel::WorldState> {
    /// An invariant that must hold for *every* process whose program is
    /// of type `P` (a local invariant, lifted pointwise).
    pub fn for_program<P: 'static>(
        name: &str,
        check: impl Fn(fixd_runtime::Pid, &P) -> bool + Send + Sync + 'static,
    ) -> Self {
        Invariant::new(name, move |s: &crate::worldmodel::WorldState| {
            (0..s.width()).all(|i| {
                let pid = fixd_runtime::Pid(i as u32);
                match s.program::<P>(pid) {
                    Some(p) => check(pid, p),
                    None => true,
                }
            })
        })
    }
}

impl<S> std::fmt::Debug for Invariant<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Invariant({})", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_invariant() {
        let inv = Invariant::new("non-negative", |s: &i64| *s >= 0);
        assert!(inv.holds(&0));
        assert!(!inv.holds(&-1));
        assert_eq!(format!("{inv:?}"), "Invariant(non-negative)");
    }

    #[test]
    fn conjunction() {
        let a = Invariant::new("ge0", |s: &i64| *s >= 0);
        let b = Invariant::new("lt10", |s: &i64| *s < 10);
        let both = Invariant::all_of("range", vec![a, b]);
        assert!(both.holds(&5));
        assert!(!both.holds(&-1));
        assert!(!both.holds(&10));
    }
}
