//! Models of environment components.
//!
//! Paper §4.3: *"there will always be components of the system that will
//! be outside the control of the FixD environment (such as the network
//! itself, in the case of communicating processes); in the case of such
//! components it may be necessary to have abstract models of their
//! behavior, but perhaps many of these could be formally verified and
//! included as part of the FixD tool itself."* And §4.5 (future work)
//! asks for *"a set of general-purpose models ... of various components
//! such as network communication or disk access"*.
//!
//! [`NetModel`] is that general-purpose network model: it decides which
//! environment transitions (message loss, duplication, crashes) the
//! Investigator explores in addition to the application's own actions.
//! A reliable network model explores only delivery interleavings; a
//! lossy model additionally explores every "this message never arrives"
//! branch, etc.

/// The network/environment model the Investigator explores under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetModel {
    /// Explore message-loss branches (drop the head of any channel).
    pub allow_loss: bool,
    /// Explore duplication branches (re-enqueue the head of a channel).
    pub allow_dup: bool,
    /// Explore crash-stop branches for up to this many processes.
    pub crash_budget: usize,
}

impl NetModel {
    /// Reliable FIFO network, no faults: only delivery interleavings.
    pub fn reliable() -> Self {
        Self {
            allow_loss: false,
            allow_dup: false,
            crash_budget: 0,
        }
    }

    /// Fair-lossy network: any message may be lost.
    pub fn lossy() -> Self {
        Self {
            allow_loss: true,
            allow_dup: false,
            crash_budget: 0,
        }
    }

    /// At-least-once network: messages may be duplicated.
    pub fn duplicating() -> Self {
        Self {
            allow_loss: false,
            allow_dup: true,
            crash_budget: 0,
        }
    }

    /// Crash-stop fault model with a budget of `f` crashes.
    pub fn crashy(f: usize) -> Self {
        Self {
            allow_loss: false,
            allow_dup: false,
            crash_budget: f,
        }
    }

    /// Everything at once (the adversarial environment).
    pub fn adversarial(f: usize) -> Self {
        Self {
            allow_loss: true,
            allow_dup: true,
            crash_budget: f,
        }
    }

    /// Rough branching multiplier this model adds per state (diagnostic,
    /// used in reports to explain state-count growth).
    pub fn branching_hint(&self) -> usize {
        1 + usize::from(self.allow_loss) + usize::from(self.allow_dup) + self.crash_budget.min(1)
    }
}

impl Default for NetModel {
    fn default() -> Self {
        Self::reliable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(!NetModel::reliable().allow_loss);
        assert!(NetModel::lossy().allow_loss);
        assert!(NetModel::duplicating().allow_dup);
        assert_eq!(NetModel::crashy(2).crash_budget, 2);
        let adv = NetModel::adversarial(1);
        assert!(adv.allow_loss && adv.allow_dup && adv.crash_budget == 1);
    }

    #[test]
    fn branching_hint_monotone() {
        assert!(NetModel::adversarial(1).branching_hint() > NetModel::reliable().branching_hint());
    }
}
