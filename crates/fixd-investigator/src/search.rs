//! Search-order strategies for the exploration frontier.
//!
//! ModelD's back-end supports "the ability to customize the search order
//! for the state graph" (§4.3) — "originally introduced ... as a way to
//! support heuristic search". The engine is parameterized by this
//! frontier; BFS finds shortest trails, DFS finds deep violations fast
//! with low memory, randomized order de-biases long exploration, and the
//! priority frontier implements heuristic (best-first) search.

use std::collections::VecDeque;

use fixd_runtime::DetRng;

/// How the frontier is drained.
#[derive(Clone, Debug, PartialEq)]
pub enum SearchOrder {
    /// Breadth-first: shortest counterexamples, highest memory.
    Bfs,
    /// Depth-first: low memory, long trails.
    Dfs,
    /// Uniform-random frontier draws (seeded, reproducible).
    Random { seed: u64 },
}

/// A frontier entry: state + bookkeeping.
pub(crate) struct Node<S, L> {
    pub state: S,
    pub fp: u64,
    pub depth: usize,
    /// Sleep set (partial-order reduction); empty when reduction is off.
    pub sleep: Vec<L>,
}

/// The polymorphic frontier.
pub(crate) enum Frontier<S, L> {
    Bfs(VecDeque<Node<S, L>>),
    Dfs(Vec<Node<S, L>>),
    Random(Vec<Node<S, L>>, DetRng),
}

impl<S, L> Frontier<S, L> {
    pub fn new(order: &SearchOrder) -> Self {
        match order {
            SearchOrder::Bfs => Frontier::Bfs(VecDeque::new()),
            SearchOrder::Dfs => Frontier::Dfs(Vec::new()),
            SearchOrder::Random { seed } => {
                Frontier::Random(Vec::new(), DetRng::derive(*seed, 0xF0))
            }
        }
    }

    pub fn push(&mut self, n: Node<S, L>) {
        match self {
            Frontier::Bfs(q) => q.push_back(n),
            Frontier::Dfs(v) | Frontier::Random(v, _) => v.push(n),
        }
    }

    pub fn pop(&mut self) -> Option<Node<S, L>> {
        match self {
            Frontier::Bfs(q) => q.pop_front(),
            Frontier::Dfs(v) => v.pop(),
            Frontier::Random(v, rng) => {
                if v.is_empty() {
                    None
                } else {
                    let i = rng.below(v.len() as u64) as usize;
                    Some(v.swap_remove(i))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(fp: u64) -> Node<u64, u8> {
        Node {
            state: fp,
            fp,
            depth: 0,
            sleep: Vec::new(),
        }
    }

    #[test]
    fn bfs_is_fifo() {
        let mut f: Frontier<u64, u8> = Frontier::new(&SearchOrder::Bfs);
        f.push(node(1));
        f.push(node(2));
        assert_eq!(f.pop().unwrap().fp, 1);
        assert_eq!(f.pop().unwrap().fp, 2);
        assert!(f.pop().is_none());
    }

    #[test]
    fn dfs_is_lifo() {
        let mut f: Frontier<u64, u8> = Frontier::new(&SearchOrder::Dfs);
        f.push(node(1));
        f.push(node(2));
        assert_eq!(f.pop().unwrap().fp, 2);
        assert_eq!(f.pop().unwrap().fp, 1);
    }

    #[test]
    fn random_is_seed_deterministic_and_complete() {
        let drain = |seed: u64| {
            let mut f: Frontier<u64, u8> = Frontier::new(&SearchOrder::Random { seed });
            for i in 0..20 {
                f.push(node(i));
            }
            let mut out = Vec::new();
            while let Some(n) = f.pop() {
                out.push(n.fp);
            }
            out
        };
        let a = drain(5);
        let b = drain(5);
        assert_eq!(a, b, "same seed, same order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>(), "nothing lost");
        assert_ne!(a, sorted, "order actually shuffled (w.h.p.)");
    }
}
