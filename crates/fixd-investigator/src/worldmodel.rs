//! Model-checking *real programs*: the distributed application as a
//! transition system.
//!
//! This is the heart of the ModelD design (§4.3): "the events in the
//! system are mapped to actions \[...\] each event is a state transition
//! within the model checker", executed against the **actual
//! [`Program`] implementations** — not abstract models. The network is
//! the one environment component FixD does not control, so it is replaced
//! by a [`NetModel`] (swap real communication actions for modeled ones,
//! exactly the action-swap §4.3 describes).
//!
//! State = every process's real state + FIFO channel contents + pending
//! timers. Actions = start a process, deliver the head of a channel, fire
//! a timer, plus whatever fault branches the [`NetModel`] enables.

use std::collections::VecDeque;

use fixd_runtime::wire::{fnv1a, fnv_mix};
use fixd_runtime::{Payload, Pid, Program, SharedMessage, SoloHarness, TimerId};

use crate::envmodel::NetModel;
use crate::system::TransitionSystem;

/// A transition of the distributed application under investigation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelAction {
    /// Run a process's `on_start`.
    Start { pid: Pid },
    /// Deliver the head of channel `src → dst`.
    Deliver { src: Pid, dst: Pid },
    /// Fire the oldest pending timer of `pid`.
    FireTimer { pid: Pid },
    /// Environment model: lose the head of channel `src → dst`.
    DropHead { src: Pid, dst: Pid },
    /// Environment model: duplicate the head of channel `src → dst`.
    DupHead { src: Pid, dst: Pid },
    /// Environment model: crash-stop `pid`.
    Crash { pid: Pid },
}

impl ModelAction {
    /// Short human-readable rendering.
    pub fn describe(&self) -> String {
        match self {
            ModelAction::Start { pid } => format!("start {pid}"),
            ModelAction::Deliver { src, dst } => format!("deliver {src}→{dst}"),
            ModelAction::FireTimer { pid } => format!("timer {pid}"),
            ModelAction::DropHead { src, dst } => format!("LOSE {src}→{dst}"),
            ModelAction::DupHead { src, dst } => format!("DUP {src}→{dst}"),
            ModelAction::Crash { pid } => format!("CRASH {pid}"),
        }
    }
}

/// Global state of the application under investigation.
pub struct WorldState {
    procs: Vec<Box<dyn Program>>,
    harnesses: Vec<SoloHarness>,
    /// FIFO channels, indexed `src * width + dst`.
    channels: Vec<VecDeque<SharedMessage>>,
    /// Pending timers per process, oldest first.
    timers: Vec<VecDeque<TimerId>>,
    started: Vec<bool>,
    crashed: Vec<bool>,
    crashes_used: usize,
    /// Collected outputs (flat, for invariants over observable behavior).
    /// Shared handles aliasing the producing handlers' effects.
    outputs: Vec<(Pid, Payload)>,
}

impl Clone for WorldState {
    fn clone(&self) -> Self {
        Self {
            procs: self.procs.iter().map(|p| p.clone_program()).collect(),
            harnesses: self.harnesses.clone(),
            channels: self.channels.clone(),
            timers: self.timers.clone(),
            started: self.started.clone(),
            crashed: self.crashed.clone(),
            crashes_used: self.crashes_used,
            outputs: self.outputs.clone(),
        }
    }
}

impl std::fmt::Debug for WorldState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WorldState(n={}, mail={}, timers={})",
            self.procs.len(),
            self.channels.iter().map(VecDeque::len).sum::<usize>(),
            self.timers.iter().map(VecDeque::len).sum::<usize>()
        )
    }
}

impl WorldState {
    /// Number of processes.
    pub fn width(&self) -> usize {
        self.procs.len()
    }

    /// Typed view of a process's program (for invariants).
    pub fn program<P: 'static>(&self, pid: Pid) -> Option<&P> {
        self.procs.get(pid.idx())?.as_any().downcast_ref::<P>()
    }

    /// Messages queued on channel `src → dst`.
    pub fn channel(&self, src: Pid, dst: Pid) -> &VecDeque<SharedMessage> {
        &self.channels[src.idx() * self.procs.len() + dst.idx()]
    }

    /// Total undelivered messages.
    pub fn mail_count(&self) -> usize {
        self.channels.iter().map(VecDeque::len).sum()
    }

    /// Has `pid` crashed (in this explored branch)?
    pub fn is_crashed(&self, pid: Pid) -> bool {
        self.crashed[pid.idx()]
    }

    /// Has `pid` started?
    pub fn is_started(&self, pid: Pid) -> bool {
        self.started[pid.idx()]
    }

    /// Outputs emitted along this branch, in order.
    pub fn outputs(&self) -> &[(Pid, Payload)] {
        &self.outputs
    }

    /// Pending timer count of `pid`.
    pub fn timer_count(&self, pid: Pid) -> usize {
        self.timers[pid.idx()].len()
    }
}

/// The application + environment model as a [`TransitionSystem`].
pub struct WorldModel {
    width: usize,
    seed: u64,
    net: NetModel,
    factory: std::sync::Arc<dyn Fn() -> Vec<Box<dyn Program>> + Send + Sync>,
    init_from: Option<WorldState>,
    /// Include clocks/RNG positions in fingerprints. Off by default:
    /// states that differ only in clock values merge, which is what you
    /// want unless programs branch on `ctx.random()`.
    pub strict_fingerprint: bool,
}

impl WorldModel {
    /// A model whose initial state is `factory()` (fresh programs,
    /// nothing started). `seed` must match the production world if
    /// trails are to be re-executed there.
    pub fn new(
        seed: u64,
        net: NetModel,
        factory: impl Fn() -> Vec<Box<dyn Program>> + Send + Sync + 'static,
    ) -> Self {
        let width = factory().len();
        Self {
            width,
            seed,
            net,
            factory: std::sync::Arc::new(factory),
            init_from: None,
            strict_fingerprint: false,
        }
    }

    /// Investigate **from a restored global state** rather than from
    /// scratch — FixD's key advantage over CMC-style checking (Fig. 4:
    /// the checkpoints the peer processes provide are assembled into this
    /// state).
    pub fn from_state(seed: u64, net: NetModel, state: WorldState) -> Self {
        Self {
            width: state.width(),
            seed,
            net,
            factory: std::sync::Arc::new(Vec::new),
            init_from: Some(state),
            strict_fingerprint: false,
        }
    }

    /// **Swap the environment model** mid-investigation (§4.3: "swap out
    /// the real communication actions, replace those with models").
    pub fn set_net(&mut self, net: NetModel) {
        self.net = net;
    }

    /// Current environment model.
    pub fn net(&self) -> NetModel {
        self.net
    }

    /// Number of processes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Build a [`WorldState`] from restored programs + channel contents
    /// (the assembly step of the Fig. 4 protocol).
    pub fn assemble_state(
        programs: Vec<Box<dyn Program>>,
        harnesses: Vec<SoloHarness>,
        inflight: Vec<SharedMessage>,
        timers: Vec<(Pid, TimerId)>,
    ) -> WorldState {
        let n = programs.len();
        assert_eq!(harnesses.len(), n);
        let mut channels = vec![VecDeque::new(); n * n];
        for m in inflight {
            let idx = m.src.idx() * n + m.dst.idx();
            channels[idx].push_back(m);
        }
        let mut tq = vec![VecDeque::new(); n];
        for (pid, t) in timers {
            tq[pid.idx()].push_back(t);
        }
        WorldState {
            procs: programs,
            harnesses,
            channels,
            timers: tq,
            started: vec![true; n], // restored processes are mid-run
            crashed: vec![false; n],
            crashes_used: 0,
            outputs: Vec::new(),
        }
    }

    fn route_effects(&self, s: &mut WorldState, pid: Pid, effects: fixd_runtime::Effects) {
        let n = s.procs.len();
        for m in effects.sends {
            if m.dst.idx() < n {
                s.channels[m.src.idx() * n + m.dst.idx()].push_back(m);
            }
        }
        for (t, _fire_at) in effects.timers_set {
            s.timers[pid.idx()].push_back(t);
        }
        for t in effects.timers_cancelled {
            s.timers[pid.idx()].retain(|x| *x != t);
        }
        for o in effects.outputs {
            s.outputs.push((pid, o));
        }
        if effects.crashed {
            s.crashed[pid.idx()] = true;
            s.timers[pid.idx()].clear();
        }
    }
}

impl TransitionSystem for WorldModel {
    type State = WorldState;
    type Label = ModelAction;

    fn initial(&self) -> WorldState {
        if let Some(s) = &self.init_from {
            return s.clone();
        }
        let procs = (self.factory)();
        let n = procs.len();
        WorldState {
            harnesses: (0..n)
                .map(|i| SoloHarness::new(Pid(i as u32), n, self.seed))
                .collect(),
            procs,
            channels: vec![VecDeque::new(); n * n],
            timers: vec![VecDeque::new(); n],
            started: vec![false; n],
            crashed: vec![false; n],
            crashes_used: 0,
            outputs: Vec::new(),
        }
    }

    fn fingerprint(&self, s: &WorldState) -> u64 {
        let mut h = FINGERPRINT_SEED;
        for (i, p) in s.procs.iter().enumerate() {
            h = fnv_mix(h, fnv1a(&p.snapshot()));
            h = fnv_mix(h, u64::from(s.started[i]) | (u64::from(s.crashed[i]) << 1));
            h = fnv_mix(h, s.timers[i].len() as u64);
        }
        for ch in &s.channels {
            h = fnv_mix(h, ch.len() as u64);
            for m in ch {
                h = fnv_mix(h, m.content_fingerprint());
            }
        }
        if self.strict_fingerprint {
            for hs in &s.harnesses {
                for (p, c) in hs.vc().entries() {
                    h = fnv_mix(h, u64::from(p.0));
                    h = fnv_mix(h, c);
                }
            }
            for tq in &s.timers {
                for t in tq {
                    h = fnv_mix(h, t.0);
                }
            }
        }
        h
    }

    fn enabled(&self, s: &WorldState) -> Vec<ModelAction> {
        let n = s.procs.len();
        let mut out = Vec::new();
        for i in 0..n {
            let pid = Pid(i as u32);
            if !s.started[i] && !s.crashed[i] {
                out.push(ModelAction::Start { pid });
            }
        }
        for src in 0..n {
            for dst in 0..n {
                let ch = &s.channels[src * n + dst];
                if ch.is_empty() || s.crashed[dst] || !s.started[dst] {
                    continue;
                }
                let (src, dst) = (Pid(src as u32), Pid(dst as u32));
                out.push(ModelAction::Deliver { src, dst });
                if self.net.allow_loss {
                    out.push(ModelAction::DropHead { src, dst });
                }
                if self.net.allow_dup {
                    out.push(ModelAction::DupHead { src, dst });
                }
            }
        }
        for i in 0..n {
            if s.started[i] && !s.crashed[i] && !s.timers[i].is_empty() {
                out.push(ModelAction::FireTimer { pid: Pid(i as u32) });
            }
        }
        if s.crashes_used < self.net.crash_budget {
            for i in 0..n {
                if s.started[i] && !s.crashed[i] {
                    out.push(ModelAction::Crash { pid: Pid(i as u32) });
                }
            }
        }
        out
    }

    fn apply(&self, s: &WorldState, l: &ModelAction) -> WorldState {
        let mut next = s.clone();
        let n = next.procs.len();
        match l {
            ModelAction::Start { pid } => {
                next.started[pid.idx()] = true;
                let eff = {
                    let (h, p) = (&mut next.harnesses[pid.idx()], &mut next.procs[pid.idx()]);
                    h.start(p.as_mut())
                };
                self.route_effects(&mut next, *pid, eff);
            }
            ModelAction::Deliver { src, dst } => {
                let msg = next.channels[src.idx() * n + dst.idx()]
                    .pop_front()
                    .expect("guard ensured nonempty channel");
                let eff = {
                    let (h, p) = (&mut next.harnesses[dst.idx()], &mut next.procs[dst.idx()]);
                    h.deliver(p.as_mut(), &msg)
                };
                self.route_effects(&mut next, *dst, eff);
            }
            ModelAction::FireTimer { pid } => {
                let t = next.timers[pid.idx()]
                    .pop_front()
                    .expect("guard ensured pending timer");
                let eff = {
                    let (h, p) = (&mut next.harnesses[pid.idx()], &mut next.procs[pid.idx()]);
                    h.timer(p.as_mut(), t)
                };
                self.route_effects(&mut next, *pid, eff);
            }
            ModelAction::DropHead { src, dst } => {
                next.channels[src.idx() * n + dst.idx()].pop_front();
            }
            ModelAction::DupHead { src, dst } => {
                let ch = &mut next.channels[src.idx() * n + dst.idx()];
                if let Some(head) = ch.front().cloned() {
                    ch.push_back(head);
                }
            }
            ModelAction::Crash { pid } => {
                next.crashed[pid.idx()] = true;
                next.crashes_used += 1;
                next.timers[pid.idx()].clear();
            }
        }
        next
    }

    fn label_name(&self, l: &ModelAction) -> String {
        l.describe()
    }

    /// Conservative Mazurkiewicz independence: two actions commute if the
    /// processes and channels they touch are disjoint. A `Deliver` touches
    /// its channel, its destination process, and (through the sends the
    /// handler performs) every channel out of the destination.
    fn independent(&self, a: &ModelAction, b: &ModelAction) -> bool {
        fn touched(l: &ModelAction) -> (Option<Pid>, Option<(Pid, Pid)>) {
            match l {
                ModelAction::Start { pid }
                | ModelAction::FireTimer { pid }
                | ModelAction::Crash { pid } => (Some(*pid), None),
                ModelAction::Deliver { src, dst } => (Some(*dst), Some((*src, *dst))),
                ModelAction::DropHead { src, dst } | ModelAction::DupHead { src, dst } => {
                    (None, Some((*src, *dst)))
                }
            }
        }
        let (pa, ca) = touched(a);
        let (pb, cb) = touched(b);
        // Same channel touched => dependent.
        if let (Some(x), Some(y)) = (ca, cb) {
            if x == y {
                return false;
            }
        }
        // Same process runs a handler => dependent.
        if let (Some(x), Some(y)) = (pa, pb) {
            if x == y {
                return false;
            }
        }
        // A handler at p feeds channels (p, *): dependent with any action
        // touching such a channel.
        if let (Some(p), Some((s, _))) = (pa, cb) {
            if p == s {
                return false;
            }
        }
        if let (Some(p), Some((s, _))) = (pb, ca) {
            if p == s {
                return false;
            }
        }
        true
    }
}

/// Stable basis for [`WorldModel`] fingerprints (distinct from other
/// fingerprint domains in the workspace).
const FINGERPRINT_SEED: u64 = 0x1995_0604_F1BD_0001;

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::Context;
    use fixd_runtime::Message;

    /// Two-process increment protocol with a deliberate race: both update
    /// a "replicated register" and echo; the register must converge.
    struct Reg {
        val: u8,
        echoes: u8,
    }
    impl Program for Reg {
        fn on_start(&mut self, ctx: &mut Context) {
            // Both processes propose pid+1 as the value.
            let proposal = ctx.pid().0 as u8 + 1;
            self.val = proposal;
            let other = Pid(1 - ctx.pid().0);
            ctx.send(other, 1, vec![proposal]);
        }
        fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
            if msg.tag == 1 {
                // last-writer-wins: the race makes final values diverge
                // depending on interleaving.
                self.val = msg.payload[0];
                ctx.send(msg.src, 2, vec![self.val]);
            } else {
                self.echoes += 1;
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            vec![self.val, self.echoes]
        }
        fn restore(&mut self, b: &[u8]) {
            self.val = b[0];
            self.echoes = b[1];
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Reg {
                val: self.val,
                echoes: self.echoes,
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn model(net: NetModel) -> WorldModel {
        WorldModel::new(7, net, || {
            vec![
                Box::new(Reg { val: 0, echoes: 0 }) as Box<dyn Program>,
                Box::new(Reg { val: 0, echoes: 0 }),
            ]
        })
    }

    #[test]
    fn initial_state_nothing_started() {
        let m = model(NetModel::reliable());
        let s = m.initial();
        assert_eq!(s.width(), 2);
        assert!(!s.is_started(Pid(0)));
        assert_eq!(s.mail_count(), 0);
        let enabled = m.enabled(&s);
        assert_eq!(enabled.len(), 2, "only the two Start actions");
    }

    #[test]
    fn apply_start_enqueues_mail() {
        let m = model(NetModel::reliable());
        let s0 = m.initial();
        let s1 = m.apply(&s0, &ModelAction::Start { pid: Pid(0) });
        assert!(s1.is_started(Pid(0)));
        assert_eq!(s1.mail_count(), 1);
        assert_eq!(s1.channel(Pid(0), Pid(1)).len(), 1);
        // Source state untouched.
        assert_eq!(s0.mail_count(), 0);
    }

    #[test]
    fn deliver_requires_started_destination() {
        let m = model(NetModel::reliable());
        let s0 = m.initial();
        let s1 = m.apply(&s0, &ModelAction::Start { pid: Pid(0) });
        // P1 not started: no deliver to P1 enabled.
        assert!(!m
            .enabled(&s1)
            .iter()
            .any(|a| matches!(a, ModelAction::Deliver { dst, .. } if *dst == Pid(1))));
        let s2 = m.apply(&s1, &ModelAction::Start { pid: Pid(1) });
        assert!(m
            .enabled(&s2)
            .iter()
            .any(|a| matches!(a, ModelAction::Deliver { dst, .. } if *dst == Pid(1))));
    }

    #[test]
    fn fingerprint_merges_equal_states() {
        let m = model(NetModel::reliable());
        let s0 = m.initial();
        // Start P0 then P1 vs P1 then P0: both yield "both started, two
        // proposals in flight" — but program states differ? No: each
        // start only writes its own val. Same fingerprint expected.
        let a = m.apply(
            &m.apply(&s0, &ModelAction::Start { pid: Pid(0) }),
            &ModelAction::Start { pid: Pid(1) },
        );
        let b = m.apply(
            &m.apply(&s0, &ModelAction::Start { pid: Pid(1) }),
            &ModelAction::Start { pid: Pid(0) },
        );
        assert_eq!(m.fingerprint(&a), m.fingerprint(&b));
        assert_ne!(m.fingerprint(&a), m.fingerprint(&s0));
    }

    #[test]
    fn lossy_model_adds_drop_actions() {
        let m = model(NetModel::lossy());
        let s = m.apply(&m.initial(), &ModelAction::Start { pid: Pid(0) });
        let s = m.apply(&s, &ModelAction::Start { pid: Pid(1) });
        let acts = m.enabled(&s);
        assert!(acts
            .iter()
            .any(|a| matches!(a, ModelAction::DropHead { .. })));
        // Dropping removes the message.
        let dropped = m.apply(
            &s,
            &ModelAction::DropHead {
                src: Pid(0),
                dst: Pid(1),
            },
        );
        assert_eq!(dropped.channel(Pid(0), Pid(1)).len(), 0);
    }

    #[test]
    fn crash_budget_limits_crash_actions() {
        let m = model(NetModel::crashy(1));
        let s = m.apply(&m.initial(), &ModelAction::Start { pid: Pid(0) });
        assert!(m
            .enabled(&s)
            .iter()
            .any(|a| matches!(a, ModelAction::Crash { .. })));
        let s2 = m.apply(&s, &ModelAction::Crash { pid: Pid(0) });
        assert!(s2.is_crashed(Pid(0)));
        assert!(!m
            .enabled(&s2)
            .iter()
            .any(|a| matches!(a, ModelAction::Crash { .. })));
    }

    #[test]
    fn independence_is_conservative() {
        let m = model(NetModel::reliable());
        let d01 = ModelAction::Deliver {
            src: Pid(0),
            dst: Pid(1),
        };
        let d10 = ModelAction::Deliver {
            src: Pid(1),
            dst: Pid(0),
        };
        // Delivery at P1 may send into channel (1,0): dependent.
        assert!(!m.independent(&d01, &d10));
        let t0 = ModelAction::FireTimer { pid: Pid(0) };
        let c23 = ModelAction::Deliver {
            src: Pid(2),
            dst: Pid(3),
        };
        assert!(m.independent(&t0, &c23));
        assert!(!m.independent(&t0, &t0));
    }

    #[test]
    fn assemble_state_places_mail_and_timers() {
        let procs: Vec<Box<dyn Program>> = vec![
            Box::new(Reg { val: 3, echoes: 0 }),
            Box::new(Reg { val: 3, echoes: 0 }),
        ];
        let harnesses = vec![
            SoloHarness::new(Pid(0), 2, 7),
            SoloHarness::new(Pid(1), 2, 7),
        ];
        let msg = Message {
            id: 1,
            src: Pid(0),
            dst: Pid(1),
            tag: 1,
            payload: vec![9].into(),
            sent_at: 0,
            vc: fixd_runtime::VectorClock::new(2),
            meta: fixd_runtime::MsgMeta::default(),
        };
        let s = WorldModel::assemble_state(
            procs,
            harnesses,
            vec![msg.into()],
            vec![(Pid(0), TimerId(4))],
        );
        assert!(s.is_started(Pid(0)), "restored processes are mid-run");
        assert_eq!(s.channel(Pid(0), Pid(1)).len(), 1);
        assert_eq!(s.timer_count(Pid(0)), 1);
    }
}
