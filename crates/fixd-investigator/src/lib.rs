//! # fixd-investigator — the Investigator (ModelD)
//!
//! Reproduction of the **Investigator** component of FixD (paper §3.3,
//! Figs. 3–4) and of the **ModelD** model checker (§4.3, Fig. 7), one of
//! the paper's stated contributions:
//!
//! > *"a model checker, called ModelD, that verifies safety properties
//! > embedded in \[...\] programs and enables the injection of code in
//! > running programs."*
//!
//! Architecture mirrors Fig. 7:
//!
//! * **back-end engine** ([`explorer`], [`search`], [`frontier`],
//!   [`parallel`]) — a
//!   guarded-command state-space explorer that "performs the actual state
//!   transitions, keeps track of the visited execution paths (calculating
//!   the reachability graph), and verifies that no user-specified
//!   invariants are violated", with a *dynamically changeable action set*
//!   and *customizable search order* (§4.3);
//! * **front-end** ([`guarded`]'s builder DSL) — the Rust analogue of the
//!   Camlp4 syntax extension: a convenient interface for declaring
//!   guarded commands and invariants;
//! * **real-code checking** ([`worldmodel`]) — the distributed
//!   application's actual [`fixd_runtime::Program`] implementations are
//!   executed as model-checker actions ("each event is a state transition
//!   within the model checker"), with environment components that FixD
//!   cannot control (the network) replaced by *models* ([`envmodel`]);
//! * **trails** ([`trail`]) — the Investigator "returns a set of trails
//!   that lead to invariant violations";
//! * **from-checkpoint investigation** ([`checker`]) — exploration starts
//!   from a restored consistent global checkpoint rather than the initial
//!   state, the key difference from CMC-style whole-history checking
//!   (experiments F3/F4).

pub mod checker;
pub mod envmodel;
pub mod explorer;
pub mod frontier;
pub mod guarded;
pub mod invariant;
pub mod parallel;
pub mod search;
pub mod system;
pub mod trail;
pub mod worldmodel;

pub use checker::ModelD;
pub use envmodel::NetModel;
pub use explorer::{ExploreConfig, ExploreReport, Explorer, SearchOrder};
pub use frontier::{
    explore_frontier, DedupStats, FingerprintStore, FrontierMetrics, PagedStateStore, StateStore,
    StealQueue, TransitionProvider, WorkQueue,
};
pub use guarded::{Action, GuardedSystem, GuardedSystemBuilder};
pub use invariant::Invariant;
pub use system::TransitionSystem;
pub use trail::Trail;
pub use worldmodel::{ModelAction, WorldModel, WorldState};
