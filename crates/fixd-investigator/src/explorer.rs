//! The back-end exploration engine.
//!
//! "The back-end component is responsible for performing the actual state
//! transitions, keeping track of the visited execution paths (calculating
//! the reachability graph), and verifying that no user-specified
//! invariants are violated." (§4.3)
//!
//! Features mapped to the paper:
//! * exhaustive exploration with visited-state deduplication (Fig. 3);
//! * customizable search order ([`SearchOrder`]);
//! * guided single-path execution ([`Explorer::run_guided`]) — "we can
//!   ensure that we only pursue a single execution path (the path the
//!   'conventional' implementation would take)";
//! * trails to every violation ([`crate::Trail`]);
//! * deadlock reporting (as CMC does);
//! * optional sleep-set partial-order reduction (heuristic; see
//!   [`ExploreConfig::use_reduction`]).

use std::collections::HashMap;

use crate::invariant::Invariant;
pub use crate::search::SearchOrder;
use crate::search::{Frontier, Node};
use crate::system::TransitionSystem;
use crate::trail::Trail;

/// Exploration limits and options.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Stop after this many distinct states (the paper's motivating
    /// limit: "prohibitively expensive, memory-wise, to model a
    /// moderately complex system of more than 5-10 processes", §2.1).
    pub max_states: usize,
    /// Do not expand states deeper than this.
    pub max_depth: usize,
    pub order: SearchOrder,
    /// Return after the first violation (bug hunting) instead of
    /// collecting up to `max_violations`.
    pub stop_at_first_violation: bool,
    /// Cap on collected violation trails.
    pub max_violations: usize,
    /// Report unexpected terminal states as deadlocks.
    pub detect_deadlocks: bool,
    /// Sleep-set partial-order reduction. Sound for finding violations of
    /// stable/local invariants on commuting actions; prunes interleavings,
    /// so the reachability *count* is an under-approximation. Off by
    /// default.
    pub use_reduction: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            max_states: 1_000_000,
            max_depth: 100_000,
            order: SearchOrder::Bfs,
            stop_at_first_violation: false,
            max_violations: 16,
            detect_deadlocks: true,
            use_reduction: false,
        }
    }
}

impl ExploreConfig {
    /// Bug-hunting preset: DFS, stop at first violation.
    pub fn hunt() -> Self {
        Self {
            order: SearchOrder::Dfs,
            stop_at_first_violation: true,
            ..Self::default()
        }
    }

    /// Bounded exhaustive preset.
    pub fn exhaustive(max_states: usize) -> Self {
        Self {
            max_states,
            ..Self::default()
        }
    }
}

/// What an exploration found.
#[derive(Clone, Debug)]
pub struct ExploreReport<L> {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions executed (successor computations).
    pub transitions: u64,
    /// Deepest state reached.
    pub max_depth_reached: usize,
    /// Trails to invariant violations.
    pub violations: Vec<Trail<L>>,
    /// Trails to unexpected terminal states.
    pub deadlocks: Vec<Trail<L>>,
    /// True if a limit (states/depth/violations) cut the search short.
    pub truncated: bool,
}

impl<L> ExploreReport<L> {
    /// No violations and no deadlocks found.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.deadlocks.is_empty()
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "states={} transitions={} depth={} violations={} deadlocks={}{}",
            self.states,
            self.transitions,
            self.max_depth_reached,
            self.violations.len(),
            self.deadlocks.len(),
            if self.truncated { " (truncated)" } else { "" }
        )
    }
}

/// Outcome of a guided (single-path) run.
#[derive(Clone, Debug)]
pub struct GuidedOutcome<S, L> {
    /// Steps successfully executed.
    pub executed: usize,
    /// Invariant violations hit along the path: (step index, name).
    pub violations: Vec<(usize, String)>,
    /// Step index at which the prescribed label was not enabled (path
    /// infeasible from there), if any.
    pub stuck_at: Option<usize>,
    /// State after the executed prefix.
    pub final_state: S,
    /// The prescribed path (returned for convenience).
    pub path: Vec<L>,
}

/// The exploration engine over a [`TransitionSystem`].
pub struct Explorer<'a, T: TransitionSystem> {
    sys: &'a T,
    invariants: Vec<Invariant<T::State>>,
    terminal_checks: Vec<Invariant<T::State>>,
    cfg: ExploreConfig,
}

impl<'a, T: TransitionSystem> Explorer<'a, T> {
    /// An explorer over `sys` with the given configuration.
    pub fn new(sys: &'a T, cfg: ExploreConfig) -> Self {
        Self {
            sys,
            invariants: Vec::new(),
            terminal_checks: Vec::new(),
            cfg,
        }
    }

    /// Add a safety property (builder style).
    pub fn invariant(mut self, inv: Invariant<T::State>) -> Self {
        self.invariants.push(inv);
        self
    }

    /// Add several safety properties.
    pub fn invariants(mut self, invs: impl IntoIterator<Item = Invariant<T::State>>) -> Self {
        self.invariants.extend(invs);
        self
    }

    /// Add a **terminal** property — checked only on states with no
    /// enabled transitions. This is the bounded "eventually" check that
    /// complements safety invariants: e.g. *"when the protocol quiesces,
    /// every participant has learned the decision"*. A terminal state
    /// failing the check yields a trail named `eventually: <name>`.
    pub fn terminal_invariant(mut self, inv: Invariant<T::State>) -> Self {
        self.terminal_checks.push(inv);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &ExploreConfig {
        &self.cfg
    }

    fn violated<'i>(
        invariants: &'i [Invariant<T::State>],
        s: &T::State,
    ) -> Option<&'i Invariant<T::State>> {
        invariants.iter().find(|i| !i.holds(s))
    }

    fn trail(
        parents: &HashMap<u64, (u64, T::Label)>,
        root_fp: u64,
        end_fp: u64,
        violation: &str,
    ) -> Trail<T::Label> {
        let mut labels = Vec::new();
        let mut at = end_fp;
        while at != root_fp {
            match parents.get(&at) {
                Some((prev, l)) => {
                    labels.push(l.clone());
                    at = *prev;
                }
                None => break, // disconnected (shouldn't happen)
            }
        }
        labels.reverse();
        Trail {
            depth: labels.len(),
            labels,
            violation: violation.to_string(),
            end_fingerprint: end_fp,
        }
    }

    /// Exhaustively explore (within configured bounds).
    pub fn run(&self) -> ExploreReport<T::Label> {
        let mut report = ExploreReport {
            states: 0,
            transitions: 0,
            max_depth_reached: 0,
            violations: Vec::new(),
            deadlocks: Vec::new(),
            truncated: false,
        };
        let init = self.sys.initial();
        let root_fp = self.sys.fingerprint(&init);
        let mut visited: HashMap<u64, ()> = HashMap::new();
        let mut parents: HashMap<u64, (u64, T::Label)> = HashMap::new();
        visited.insert(root_fp, ());
        report.states = 1;
        if let Some(inv) = Self::violated(&self.invariants, &init) {
            report
                .violations
                .push(Self::trail(&parents, root_fp, root_fp, &inv.name));
            if self.cfg.stop_at_first_violation {
                return report;
            }
        }
        let mut frontier: Frontier<T::State, T::Label> = Frontier::new(&self.cfg.order);
        frontier.push(Node {
            state: init,
            fp: root_fp,
            depth: 0,
            sleep: Vec::new(),
        });

        'outer: while let Some(node) = frontier.pop() {
            let enabled = self.sys.enabled(&node.state);
            if enabled.is_empty() {
                if self.cfg.detect_deadlocks && !self.sys.is_expected_terminal(&node.state) {
                    report
                        .deadlocks
                        .push(Self::trail(&parents, root_fp, node.fp, "deadlock"));
                }
                for t in &self.terminal_checks {
                    if !t.holds(&node.state) {
                        report.violations.push(Self::trail(
                            &parents,
                            root_fp,
                            node.fp,
                            &format!("eventually: {}", t.name),
                        ));
                        if self.cfg.stop_at_first_violation
                            || report.violations.len() >= self.cfg.max_violations
                        {
                            report.truncated = true;
                            break 'outer;
                        }
                    }
                }
                continue;
            }
            if node.depth >= self.cfg.max_depth {
                report.truncated = true;
                continue;
            }
            // Sleep-set reduction: skip transitions in the sleep set.
            let mut done: Vec<T::Label> = Vec::new();
            for l in enabled {
                if self.cfg.use_reduction && node.sleep.contains(&l) {
                    continue;
                }
                let next = self.sys.apply(&node.state, &l);
                report.transitions += 1;
                let nfp = self.sys.fingerprint(&next);
                let child_sleep = if self.cfg.use_reduction {
                    node.sleep
                        .iter()
                        .chain(done.iter())
                        .filter(|z| self.sys.independent(z, &l))
                        .cloned()
                        .collect()
                } else {
                    Vec::new()
                };
                if self.cfg.use_reduction {
                    done.push(l.clone());
                }
                if visited.contains_key(&nfp) {
                    continue;
                }
                visited.insert(nfp, ());
                parents.insert(nfp, (node.fp, l));
                report.states += 1;
                let ndepth = node.depth + 1;
                report.max_depth_reached = report.max_depth_reached.max(ndepth);
                if let Some(inv) = Self::violated(&self.invariants, &next) {
                    report
                        .violations
                        .push(Self::trail(&parents, root_fp, nfp, &inv.name));
                    if self.cfg.stop_at_first_violation
                        || report.violations.len() >= self.cfg.max_violations
                    {
                        report.truncated = true;
                        break 'outer;
                    }
                    // Don't expand past a violating state.
                    continue;
                }
                if report.states >= self.cfg.max_states {
                    report.truncated = true;
                    break 'outer;
                }
                frontier.push(Node {
                    state: next,
                    fp: nfp,
                    depth: ndepth,
                    sleep: child_sleep,
                });
            }
        }
        report
    }

    /// Execute exactly one prescribed path (§4.3's "single execution
    /// path"), checking invariants along the way.
    pub fn run_guided(&self, path: &[T::Label]) -> GuidedOutcome<T::State, T::Label> {
        let mut state = self.sys.initial();
        let mut violations = Vec::new();
        if let Some(inv) = Self::violated(&self.invariants, &state) {
            violations.push((0usize, inv.name.clone()));
        }
        let mut executed = 0;
        let mut stuck_at = None;
        for (i, l) in path.iter().enumerate() {
            if !self.sys.enabled(&state).iter().any(|e| e == l) {
                stuck_at = Some(i);
                break;
            }
            state = self.sys.apply(&state, l);
            executed += 1;
            if let Some(inv) = Self::violated(&self.invariants, &state) {
                violations.push((i + 1, inv.name.clone()));
            }
        }
        GuidedOutcome {
            executed,
            violations,
            stuck_at,
            final_state: state,
            path: path.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guarded::GuardedSystemBuilder;

    /// Peterson-free naive mutex: two flags, both may enter — a seeded
    /// mutual-exclusion bug the explorer must find.
    /// State: [in_cs_a, in_cs_b, done_a, done_b]
    fn naive_mutex() -> crate::guarded::GuardedSystem<[bool; 4]> {
        GuardedSystemBuilder::new([false, false, false, false])
            .action("enter-a", |s: &[bool; 4]| !s[0] && !s[2], |s| s[0] = true)
            .action("enter-b", |s: &[bool; 4]| !s[1] && !s[3], |s| s[1] = true)
            .action(
                "leave-a",
                |s: &[bool; 4]| s[0],
                |s| {
                    s[0] = false;
                    s[2] = true;
                },
            )
            .action(
                "leave-b",
                |s: &[bool; 4]| s[1],
                |s| {
                    s[1] = false;
                    s[3] = true;
                },
            )
            .build()
    }

    fn mutex_invariant() -> Invariant<[bool; 4]> {
        Invariant::new("mutual-exclusion", |s: &[bool; 4]| !(s[0] && s[1]))
    }

    #[test]
    fn finds_mutex_violation_with_shortest_trail() {
        let sys = naive_mutex();
        let report = Explorer::new(&sys, ExploreConfig::default())
            .invariant(mutex_invariant())
            .run();
        assert!(!report.violations.is_empty());
        // BFS: shortest counterexample is enter-a, enter-b (depth 2).
        assert_eq!(report.violations[0].depth, 2);
        assert_eq!(report.violations[0].violation, "mutual-exclusion");
    }

    #[test]
    fn dfs_also_finds_it() {
        let sys = naive_mutex();
        let report = Explorer::new(&sys, ExploreConfig::hunt())
            .invariant(mutex_invariant())
            .run();
        assert_eq!(report.violations.len(), 1);
        assert!(report.truncated, "stopped early");
    }

    #[test]
    fn random_order_reproducible() {
        let sys = naive_mutex();
        let run = |seed| {
            Explorer::new(
                &sys,
                ExploreConfig {
                    order: SearchOrder::Random { seed },
                    ..ExploreConfig::default()
                },
            )
            .invariant(mutex_invariant())
            .run()
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a.states, b.states);
        assert_eq!(a.violations.len(), b.violations.len());
        assert_eq!(a.violations[0].labels, b.violations[0].labels);
    }

    #[test]
    fn exhaustive_state_count_without_invariants() {
        // Without the violation cut, count the full reachable graph.
        let sys = naive_mutex();
        let report = Explorer::new(&sys, ExploreConfig::default()).run();
        // States: each process is in one of 3 phases (idle, cs, done) —
        // 9 combined states reachable.
        assert_eq!(report.states, 9);
        assert!(report.clean());
        assert!(!report.truncated);
    }

    #[test]
    fn max_states_truncates() {
        let sys = naive_mutex();
        let report = Explorer::new(&sys, ExploreConfig::exhaustive(3)).run();
        assert!(report.truncated);
        assert!(report.states <= 3);
    }

    #[test]
    fn deadlock_detection() {
        // A system that wedges: both grab the other's resource.
        // state: (a_has, b_has) of resources (r1, r2)
        let sys = GuardedSystemBuilder::new((0u8, 0u8))
            .action("a-take-r1", |s: &(u8, u8)| s.0 == 0, |s| s.0 = 1)
            .action(
                "a-take-r2",
                |s: &(u8, u8)| s.0 == 1 && s.1 != 2,
                |s| s.0 = 3,
            )
            .action("b-take-r2", |s: &(u8, u8)| s.1 == 0, |s| s.1 = 2)
            .action(
                "b-take-r1",
                |s: &(u8, u8)| s.1 == 2 && s.0 != 1 && s.0 != 3,
                |s| s.1 = 3,
            )
            .expected_terminal(|s| s.0 == 3 || s.1 == 3)
            .build();
        let report = Explorer::new(&sys, ExploreConfig::default()).run();
        assert!(
            !report.deadlocks.is_empty(),
            "a-take-r1 + b-take-r2 wedges: {}",
            report.summary()
        );
        assert_eq!(report.deadlocks[0].violation, "deadlock");
    }

    #[test]
    fn guided_run_follows_single_path() {
        let sys = naive_mutex();
        let path = vec![sys
            .enabled(&[false; 4])
            .into_iter()
            .find(|l| l.name == "enter-a")
            .unwrap()];
        let out = Explorer::new(&sys, ExploreConfig::default())
            .invariant(mutex_invariant())
            .run_guided(&path);
        assert_eq!(out.executed, 1);
        assert!(out.violations.is_empty());
        assert!(out.stuck_at.is_none());
        assert!(out.final_state[0]);
    }

    #[test]
    fn guided_run_reports_infeasible_step() {
        let sys = naive_mutex();
        let enter_a = sys
            .enabled(&[false; 4])
            .into_iter()
            .find(|l| l.name == "enter-a")
            .unwrap();
        // enter-a twice: second occurrence is not enabled.
        let out =
            Explorer::new(&sys, ExploreConfig::default()).run_guided(&[enter_a.clone(), enter_a]);
        assert_eq!(out.executed, 1);
        assert_eq!(out.stuck_at, Some(1));
    }

    #[test]
    fn guided_run_detects_violation_on_path() {
        let sys = naive_mutex();
        let at = |s: &[bool; 4], n: &str| sys.enabled(s).into_iter().find(|l| l.name == n).unwrap();
        let s0 = [false; 4];
        let a = at(&s0, "enter-a");
        let s1 = sys.apply(&s0, &a);
        let b = at(&s1, "enter-b");
        let out = Explorer::new(&sys, ExploreConfig::default())
            .invariant(mutex_invariant())
            .run_guided(&[a, b]);
        assert_eq!(out.violations, vec![(2, "mutual-exclusion".to_string())]);
    }

    #[test]
    fn reduction_explores_fewer_transitions_same_verdict() {
        let sys = GuardedSystemBuilder::new([0u8; 3])
            .action("x", |s: &[u8; 3]| s[0] < 3, |s| s[0] += 1)
            .action("y", |s: &[u8; 3]| s[1] < 3, |s| s[1] += 1)
            .action("z", |s: &[u8; 3]| s[2] < 3, |s| s[2] += 1)
            .independence(|a, b| a != b)
            .build();
        let inv = Invariant::new("sum-bound", |s: &[u8; 3]| {
            s.iter().map(|&v| v as u32).sum::<u32>() < 9
        });
        let full = Explorer::new(&sys, ExploreConfig::default())
            .invariant(inv.clone())
            .run();
        let reduced = Explorer::new(
            &sys,
            ExploreConfig {
                use_reduction: true,
                order: SearchOrder::Dfs,
                ..ExploreConfig::default()
            },
        )
        .invariant(inv)
        .run();
        assert!(!full.violations.is_empty());
        assert!(
            !reduced.violations.is_empty(),
            "reduction must keep the bug"
        );
        assert!(
            reduced.transitions < full.transitions,
            "reduction should prune: {} vs {}",
            reduced.transitions,
            full.transitions
        );
    }

    #[test]
    fn terminal_invariants_check_quiescent_states_only() {
        // Counter to 3; "eventually: reached 3" must hold at every
        // terminal state — and does. "eventually: is even" fails.
        let sys = GuardedSystemBuilder::new(0u8)
            .action("inc", |s: &u8| *s < 3, |s| *s += 1)
            .build();
        let ok = Explorer::new(&sys, ExploreConfig::default())
            .terminal_invariant(Invariant::new("reached-3", |s: &u8| *s == 3))
            .run();
        assert!(ok.clean(), "{}", ok.summary());

        let sys2 = GuardedSystemBuilder::new(0u8)
            .action("inc", |s: &u8| *s < 3, |s| *s += 1)
            .action("stop-early", |s: &u8| *s == 1, |s| *s = 103) // dead end
            .build();
        let bad = Explorer::new(&sys2, ExploreConfig::default())
            .terminal_invariant(Invariant::new("reached-3", |s: &u8| {
                *s == 3 || *s == 103 + 100
            }))
            .run();
        assert!(!bad.violations.is_empty());
        assert!(bad
            .violations
            .iter()
            .any(|t| t.violation == "eventually: reached-3"));
        // Non-terminal states (0,1,2) never trigger the terminal check:
        // the only violating trails end in terminal states (3 or 103).
        for t in &bad.violations {
            assert!(t.depth >= 2, "trail {t:?} must end terminal");
        }
    }

    #[test]
    fn report_summary_format() {
        let sys = naive_mutex();
        let report = Explorer::new(&sys, ExploreConfig::default()).run();
        let s = report.summary();
        assert!(s.contains("states=9"));
        assert!(s.contains("violations=0"));
    }
}
