//! Parallel exploration — the [`crate::frontier`] engine behind the
//! original layer-BFS entry point.
//!
//! The paper's motivating constraint is memory/time blow-up past 5–10
//! processes (§2.1). Earlier revisions split each BFS layer across
//! worker threads behind a global barrier; this wrapper now drives the
//! work-stealing frontier engine instead, so deep or skewed frontiers
//! keep every core busy with no per-layer synchronization.
//!
//! Everything the report contains is deterministic regardless of the
//! worker count: the reachable state set, the verdict, the transition
//! count, and — unlike the old first-writer-wins parent map — every
//! violation trail, which is resolved to the canonical minimum
//! `(depth, parent key, label index)` path by the engine's relaxation
//! rule.

use crate::explorer::{ExploreConfig, ExploreReport};
use crate::frontier::{explore_frontier, FingerprintStore, StealQueue};
use crate::invariant::Invariant;
use crate::system::TransitionSystem;

/// Explore `sys` with `threads` workers (BFS-equivalent). Limits from
/// `cfg` apply (`order` and `use_reduction` are ignored — parallel
/// exploration is unreduced and BFS-equivalent).
pub fn explore_parallel<T>(
    sys: &T,
    invariants: &[Invariant<T::State>],
    cfg: &ExploreConfig,
    threads: usize,
) -> ExploreReport<T::Label>
where
    T: TransitionSystem,
{
    let store = FingerprintStore::new(|s: &T::State| sys.fingerprint(s));
    let queue = StealQueue::new(threads);
    let (report, _metrics) = explore_frontier(sys, &store, &queue, invariants, cfg, threads);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::Explorer;
    use crate::guarded::GuardedSystemBuilder;

    fn grid(n: u8) -> crate::guarded::GuardedSystem<[u8; 3]> {
        GuardedSystemBuilder::new([0u8; 3])
            .action("x", move |s: &[u8; 3]| s[0] < n, |s| s[0] += 1)
            .action("y", move |s: &[u8; 3]| s[1] < n, |s| s[1] += 1)
            .action("z", move |s: &[u8; 3]| s[2] < n, |s| s[2] += 1)
            .build()
    }

    #[test]
    fn parallel_matches_sequential_state_count() {
        let sys = grid(4);
        let seq = Explorer::new(&sys, ExploreConfig::default()).run();
        let par = explore_parallel(&sys, &[], &ExploreConfig::default(), 4);
        assert_eq!(seq.states, par.states);
        assert_eq!(seq.states, 125); // 5^3
        assert_eq!(seq.transitions, par.transitions);
    }

    #[test]
    fn parallel_finds_violations() {
        let sys = grid(4);
        let inv = Invariant::new("corner", |s: &[u8; 3]| *s != [4, 4, 4]);
        let par = explore_parallel(&sys, &[inv], &ExploreConfig::default(), 4);
        assert_eq!(par.violations.len(), 1);
        assert_eq!(par.violations[0].depth, 12, "BFS trail to the corner");
    }

    #[test]
    fn single_thread_parallel_equals_sequential() {
        let sys = grid(3);
        let inv = Invariant::new("corner", |s: &[u8; 3]| *s != [3, 3, 3]);
        let seq = Explorer::new(&sys, ExploreConfig::default())
            .invariant(inv.clone())
            .run();
        let par = explore_parallel(&sys, &[inv], &ExploreConfig::default(), 1);
        assert_eq!(seq.violations.len(), par.violations.len());
        assert_eq!(seq.states, par.states);
    }

    #[test]
    fn max_states_respected() {
        let sys = grid(10);
        let cfg = ExploreConfig {
            max_states: 50,
            ..ExploreConfig::default()
        };
        let par = explore_parallel(&sys, &[], &cfg, 4);
        assert!(par.truncated);
        // Workers in flight may overshoot slightly, but not unboundedly.
        assert!(par.states < 500, "states={}", par.states);
    }

    /// Regression for the old first-writer-wins parent map: the grid
    /// corner has binom(12; 4,4,4) = 34650 shortest paths, so any
    /// schedule dependence in parent resolution shows up here. The trail
    /// must be byte-identical at every worker count and across repeated
    /// runs (the canonical minimum (depth, parent key, label index)
    /// chain), shortest (depth 12), and feasible.
    #[test]
    fn violation_trails_deterministic_across_worker_counts() {
        let sys = grid(4);
        let make_inv = || Invariant::new("corner", |s: &[u8; 3]| *s != [4, 4, 4]);
        let mut seen: Option<Vec<String>> = None;
        for threads in [1usize, 2, 4, 8] {
            for round in 0..3 {
                let par = explore_parallel(&sys, &[make_inv()], &ExploreConfig::default(), threads);
                assert_eq!(par.violations.len(), 1);
                assert_eq!(par.violations[0].depth, 12);
                let got: Vec<String> = par.violations[0]
                    .labels
                    .iter()
                    .map(|l| l.name.clone())
                    .collect();
                match &seen {
                    None => {
                        // The trail must actually reach the corner.
                        let guided = Explorer::new(&sys, ExploreConfig::default())
                            .invariant(make_inv())
                            .run_guided(&par.violations[0].labels);
                        assert!(guided.stuck_at.is_none(), "trail infeasible");
                        assert!(!guided.violations.is_empty());
                        seen = Some(got);
                    }
                    Some(prev) => assert_eq!(
                        prev, &got,
                        "canonical min trail (threads={threads}, round={round})"
                    ),
                }
            }
        }
    }

    /// Deadlock trails are canonical too.
    #[test]
    fn deadlock_reports_deterministic() {
        let sys = GuardedSystemBuilder::new((0u8, 0u8))
            .action("a-take-r1", |s: &(u8, u8)| s.0 == 0, |s| s.0 = 1)
            .action(
                "a-take-r2",
                |s: &(u8, u8)| s.0 == 1 && s.1 != 2,
                |s| s.0 = 3,
            )
            .action("b-take-r2", |s: &(u8, u8)| s.1 == 0, |s| s.1 = 2)
            .action(
                "b-take-r1",
                |s: &(u8, u8)| s.1 == 2 && s.0 != 1 && s.0 != 3,
                |s| s.1 = 3,
            )
            .expected_terminal(|s| s.0 == 3 || s.1 == 3)
            .build();
        let mut seen: Option<Vec<Vec<String>>> = None;
        for threads in [1usize, 2, 4, 8] {
            let par = explore_parallel(&sys, &[], &ExploreConfig::default(), threads);
            assert!(!par.deadlocks.is_empty());
            let got: Vec<Vec<String>> = par
                .deadlocks
                .iter()
                .map(|t| t.labels.iter().map(|l| l.name.clone()).collect())
                .collect();
            match &seen {
                None => seen = Some(got),
                Some(prev) => assert_eq!(prev, &got, "threads={threads}"),
            }
        }
    }
}
