//! Parallel breadth-first exploration.
//!
//! The paper's motivating constraint is memory/time blow-up past 5–10
//! processes (§2.1). Parallel frontier expansion does not change the
//! asymptotics but buys a near-linear constant factor on multicore hosts:
//! each BFS layer is split across worker threads; the visited set and
//! parent map are sharded by fingerprint to keep lock contention low
//! (idiom per the workspace's hpc-parallel guides: share-nothing chunks,
//! short critical sections, no allocation inside the lock).
//!
//! The reachable state *set* (and hence the verdict) is deterministic;
//! which specific trail is attached to a violation may vary run-to-run
//! because first-writer-wins on the parent map.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::explorer::{ExploreConfig, ExploreReport};
use crate::invariant::Invariant;
use crate::system::TransitionSystem;
use crate::trail::Trail;

const SHARDS: usize = 64;

struct Sharded<V> {
    shards: Vec<Mutex<HashMap<u64, V>>>,
}

impl<V> Sharded<V> {
    fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    #[inline]
    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, V>> {
        &self.shards[(key % SHARDS as u64) as usize]
    }

    /// Insert if absent; returns true if this call claimed the key.
    fn claim(&self, key: u64, value: V) -> bool {
        let mut m = self.shard(key).lock();
        if let std::collections::hash_map::Entry::Vacant(e) = m.entry(key) {
            e.insert(value);
            true
        } else {
            false
        }
    }

    fn get_cloned(&self, key: u64) -> Option<V>
    where
        V: Clone,
    {
        self.shard(key).lock().get(&key).cloned()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|m| m.lock().len()).sum()
    }
}

/// Explore `sys` with `threads` workers (BFS order only). Limits from
/// `cfg` apply (`order` and `use_reduction` are ignored — parallel
/// exploration is plain BFS).
pub fn explore_parallel<T>(
    sys: &T,
    invariants: &[Invariant<T::State>],
    cfg: &ExploreConfig,
    threads: usize,
) -> ExploreReport<T::Label>
where
    T: TransitionSystem,
    T::Label: Sync + Send,
    T::State: Sync,
{
    assert!(threads > 0, "need at least one worker");
    let init = sys.initial();
    let root_fp = sys.fingerprint(&init);
    let visited: Sharded<()> = Sharded::new();
    let parents: Sharded<(u64, T::Label)> = Sharded::new();
    visited.claim(root_fp, ());

    let mut report = ExploreReport {
        states: 1,
        transitions: 0,
        max_depth_reached: 0,
        violations: Vec::new(),
        deadlocks: Vec::new(),
        truncated: false,
    };

    let mut violation_ends: Vec<(u64, String)> = Vec::new();
    let mut deadlock_ends: Vec<u64> = Vec::new();
    if let Some(inv) = invariants.iter().find(|i| !i.holds(&init)) {
        violation_ends.push((root_fp, inv.name.clone()));
    }

    let mut layer: Vec<(T::State, u64)> = vec![(init, root_fp)];
    let mut depth = 0usize;

    while !layer.is_empty() {
        if depth >= cfg.max_depth {
            report.truncated = true;
            break;
        }
        if violation_ends.len() >= cfg.max_violations
            || (cfg.stop_at_first_violation && !violation_ends.is_empty())
        {
            report.truncated = true;
            break;
        }
        if visited.len() >= cfg.max_states {
            report.truncated = true;
            break;
        }
        let chunk_size = layer.len().div_ceil(threads);
        let results: Vec<WorkerOut<T>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in layer.chunks(chunk_size.max(1)) {
                let visited = &visited;
                let parents = &parents;
                handles.push(scope.spawn(move || {
                    let mut out = WorkerOut::<T> {
                        next: Vec::new(),
                        transitions: 0,
                        violations: Vec::new(),
                        deadlocks: Vec::new(),
                    };
                    for (state, fp) in chunk {
                        let enabled = sys.enabled(state);
                        if enabled.is_empty() {
                            if cfg.detect_deadlocks && !sys.is_expected_terminal(state) {
                                out.deadlocks.push(*fp);
                            }
                            continue;
                        }
                        for l in enabled {
                            let next = sys.apply(state, &l);
                            out.transitions += 1;
                            let nfp = sys.fingerprint(&next);
                            if !visited.claim(nfp, ()) {
                                continue;
                            }
                            parents.claim(nfp, (*fp, l));
                            let bad = invariants
                                .iter()
                                .find(|i| !i.holds(&next))
                                .map(|i| i.name.clone());
                            match bad {
                                Some(name) => out.violations.push((nfp, name)),
                                None => out.next.push((next, nfp)),
                            }
                        }
                    }
                    out
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let mut next_layer = Vec::new();
        for mut r in results {
            report.transitions += r.transitions;
            violation_ends.append(&mut r.violations);
            deadlock_ends.extend(r.deadlocks);
            next_layer.append(&mut r.next);
        }
        depth += 1;
        if !next_layer.is_empty() {
            report.max_depth_reached = depth;
        }
        layer = next_layer;
    }

    report.states = visited.len();
    let reconstruct = |end: u64, violation: &str| -> Trail<T::Label> {
        let mut labels = Vec::new();
        let mut at = end;
        while at != root_fp {
            match parents.get_cloned(at) {
                Some((prev, l)) => {
                    labels.push(l);
                    at = prev;
                }
                None => break,
            }
        }
        labels.reverse();
        Trail {
            depth: labels.len(),
            labels,
            violation: violation.to_string(),
            end_fingerprint: end,
        }
    };
    report.violations = violation_ends
        .into_iter()
        .take(cfg.max_violations)
        .map(|(fp, name)| reconstruct(fp, &name))
        .collect();
    report.deadlocks = deadlock_ends
        .into_iter()
        .map(|fp| reconstruct(fp, "deadlock"))
        .collect();
    report
}

struct WorkerOut<T: TransitionSystem> {
    next: Vec<(T::State, u64)>,
    transitions: u64,
    violations: Vec<(u64, String)>,
    deadlocks: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::Explorer;
    use crate::guarded::GuardedSystemBuilder;

    fn grid(n: u8) -> crate::guarded::GuardedSystem<[u8; 3]> {
        GuardedSystemBuilder::new([0u8; 3])
            .action("x", move |s: &[u8; 3]| s[0] < n, |s| s[0] += 1)
            .action("y", move |s: &[u8; 3]| s[1] < n, |s| s[1] += 1)
            .action("z", move |s: &[u8; 3]| s[2] < n, |s| s[2] += 1)
            .build()
    }

    #[test]
    fn parallel_matches_sequential_state_count() {
        let sys = grid(4);
        let seq = Explorer::new(&sys, ExploreConfig::default()).run();
        let par = explore_parallel(&sys, &[], &ExploreConfig::default(), 4);
        assert_eq!(seq.states, par.states);
        assert_eq!(seq.states, 125); // 5^3
        assert_eq!(seq.transitions, par.transitions);
    }

    #[test]
    fn parallel_finds_violations() {
        let sys = grid(4);
        let inv = Invariant::new("corner", |s: &[u8; 3]| *s != [4, 4, 4]);
        let par = explore_parallel(&sys, &[inv], &ExploreConfig::default(), 4);
        assert_eq!(par.violations.len(), 1);
        assert_eq!(par.violations[0].depth, 12, "BFS trail to the corner");
    }

    #[test]
    fn single_thread_parallel_equals_sequential() {
        let sys = grid(3);
        let inv = Invariant::new("corner", |s: &[u8; 3]| *s != [3, 3, 3]);
        let seq = Explorer::new(&sys, ExploreConfig::default())
            .invariant(inv.clone())
            .run();
        let par = explore_parallel(&sys, &[inv], &ExploreConfig::default(), 1);
        assert_eq!(seq.violations.len(), par.violations.len());
        assert_eq!(seq.states, par.states);
    }

    #[test]
    fn max_states_respected() {
        let sys = grid(10);
        let cfg = ExploreConfig {
            max_states: 50,
            ..ExploreConfig::default()
        };
        let par = explore_parallel(&sys, &[], &cfg, 4);
        assert!(par.truncated);
        // A layer may overshoot slightly, but not unboundedly.
        assert!(par.states < 500, "states={}", par.states);
    }
}
