//! The transition-system abstraction the back-end engine explores.
//!
//! Both the abstract guarded-command systems ([`crate::guarded`]) and the
//! real-program world model ([`crate::worldmodel`]) implement this trait,
//! so the same engine checks hand-written models and actual
//! implementations — the property §4.3 of the paper is after.

/// A (possibly infinite) labelled transition system.
pub trait TransitionSystem: Sync {
    /// Global state of the system.
    type State: Clone + Send;
    /// Transition label (an action identifier).
    type Label: Clone + Send + PartialEq + std::fmt::Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Stable 64-bit fingerprint used for visited-state deduplication.
    /// States with equal fingerprints are considered identical.
    fn fingerprint(&self, s: &Self::State) -> u64;

    /// Labels of all transitions enabled in `s` (guards that hold).
    fn enabled(&self, s: &Self::State) -> Vec<Self::Label>;

    /// Apply a transition. `l` must be enabled in `s`.
    fn apply(&self, s: &Self::State, l: &Self::Label) -> Self::State;

    /// Is a state with no enabled transitions an acceptable end state?
    /// Returning `false` marks it a *deadlock* (reported by the engine,
    /// as CMC does for "states in which the system can make no
    /// progress", §4.3).
    fn is_expected_terminal(&self, _s: &Self::State) -> bool {
        true
    }

    /// Human-readable name of a label (trail rendering).
    fn label_name(&self, l: &Self::Label) -> String {
        format!("{l:?}")
    }

    /// May two transitions be reordered without affecting each other
    /// (Mazurkiewicz independence)? Used by the optional partial-order
    /// reduction; the default (never independent) disables reduction.
    fn independent(&self, _a: &Self::Label, _b: &Self::Label) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter that can +1 or +2 up to a bound: tiny test system.
    struct Counter {
        bound: u64,
    }
    impl TransitionSystem for Counter {
        type State = u64;
        type Label = u64;
        fn initial(&self) -> u64 {
            0
        }
        fn fingerprint(&self, s: &u64) -> u64 {
            *s
        }
        fn enabled(&self, s: &u64) -> Vec<u64> {
            [1u64, 2]
                .into_iter()
                .filter(|d| s + d <= self.bound)
                .collect()
        }
        fn apply(&self, s: &u64, l: &u64) -> u64 {
            s + l
        }
    }

    #[test]
    fn defaults_are_sane() {
        let c = Counter { bound: 3 };
        assert!(c.is_expected_terminal(&3));
        assert!(!c.independent(&1, &2));
        assert_eq!(c.label_name(&1), "1");
        assert_eq!(c.enabled(&2), vec![1]);
        assert_eq!(c.apply(&2, &1), 3);
    }
}
