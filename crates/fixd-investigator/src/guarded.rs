//! Guarded-command systems and the builder DSL.
//!
//! The ModelD back-end "is based on a guarded command model, where the
//! behavior of the system is described by a set of guarded commands that
//! can be chosen for execution any time" (§4.3). The builder is the Rust
//! analogue of ModelD's Camlp4 front-end. Crucially for the paper's
//! design, the action set is **dynamic**: actions can be added, removed,
//! or replaced between (and during) explorations — the mechanism both the
//! Investigator (swapping real communication for models) and the Healer
//! (injecting updated actions, §4.4) rely on.

use std::sync::Arc;

use crate::system::TransitionSystem;

/// A guarded command: when `guard` holds, `effect` may fire.
#[derive(Clone)]
pub struct Action<S> {
    pub name: String,
    pub guard: Arc<dyn Fn(&S) -> bool + Send + Sync>,
    pub effect: Arc<dyn Fn(&mut S) + Send + Sync>,
}

impl<S> Action<S> {
    /// Build an action.
    pub fn new(
        name: &str,
        guard: impl Fn(&S) -> bool + Send + Sync + 'static,
        effect: impl Fn(&mut S) + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            guard: Arc::new(guard),
            effect: Arc::new(effect),
        }
    }
}

impl<S> std::fmt::Debug for Action<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Action({})", self.name)
    }
}

/// Shared predicate deciding whether two named actions commute.
type IndependenceFn = Arc<dyn Fn(&str, &str) -> bool + Send + Sync>;

/// A dynamic set of guarded commands over a state type `S`.
#[derive(Clone)]
pub struct GuardedSystem<S> {
    initial: S,
    actions: Vec<Action<S>>,
    fingerprint: Arc<dyn Fn(&S) -> u64 + Send + Sync>,
    expected_terminal: Arc<dyn Fn(&S) -> bool + Send + Sync>,
    independent: Option<IndependenceFn>,
}

impl<S: Clone + Send + Sync> GuardedSystem<S> {
    /// All current actions.
    pub fn actions(&self) -> &[Action<S>] {
        &self.actions
    }

    /// **Dynamic action-set change** (§4.3/§4.4): add an action. Returns
    /// its index.
    pub fn add_action(&mut self, a: Action<S>) -> usize {
        self.actions.push(a);
        self.actions.len() - 1
    }

    /// Remove all actions with this name. Returns how many were removed.
    pub fn remove_action(&mut self, name: &str) -> usize {
        let before = self.actions.len();
        self.actions.retain(|a| a.name != name);
        before - self.actions.len()
    }

    /// Replace the actions named `name` with `with` (the Healer's "inject
    /// actions that divert the execution of a program using an updated
    /// version of the actions"). Returns true if something was replaced.
    pub fn replace_action(&mut self, name: &str, with: Action<S>) -> bool {
        let removed = self.remove_action(name) > 0;
        self.add_action(with);
        removed
    }

    /// Change the initial state (e.g. resume exploration from a restored
    /// checkpoint state).
    pub fn set_initial(&mut self, s: S) {
        self.initial = s;
    }
}

impl<S: Clone + Send + Sync> TransitionSystem for GuardedSystem<S> {
    type State = S;
    type Label = GuardedLabel;

    fn initial(&self) -> S {
        self.initial.clone()
    }

    fn fingerprint(&self, s: &S) -> u64 {
        (self.fingerprint)(s)
    }

    fn enabled(&self, s: &S) -> Vec<GuardedLabel> {
        self.actions
            .iter()
            .enumerate()
            .filter(|(_, a)| (a.guard)(s))
            .map(|(i, a)| GuardedLabel {
                index: i,
                name: a.name.clone(),
            })
            .collect()
    }

    fn apply(&self, s: &S, l: &GuardedLabel) -> S {
        let mut next = s.clone();
        (self.actions[l.index].effect)(&mut next);
        next
    }

    fn is_expected_terminal(&self, s: &S) -> bool {
        (self.expected_terminal)(s)
    }

    fn label_name(&self, l: &GuardedLabel) -> String {
        l.name.clone()
    }

    fn independent(&self, a: &GuardedLabel, b: &GuardedLabel) -> bool {
        match &self.independent {
            Some(f) => f(&a.name, &b.name),
            None => false,
        }
    }
}

/// Label of a guarded transition: action index + name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuardedLabel {
    pub index: usize,
    pub name: String,
}

/// Fluent builder — the front-end "syntax extension" analogue (Fig. 7).
///
/// ```
/// use fixd_investigator::GuardedSystemBuilder;
///
/// // Two counters that may each increment to 3.
/// let sys = GuardedSystemBuilder::new([0u8, 0u8])
///     .fingerprint(|s| u64::from(s[0]) << 8 | u64::from(s[1]))
///     .action("inc-a", |s| s[0] < 3, |s| s[0] += 1)
///     .action("inc-b", |s| s[1] < 3, |s| s[1] += 1)
///     .build();
/// use fixd_investigator::system::TransitionSystem;
/// assert_eq!(sys.enabled(&[3, 0]).len(), 1);
/// ```
pub struct GuardedSystemBuilder<S> {
    sys: GuardedSystem<S>,
}

impl<S: Clone + Send + Sync + 'static> GuardedSystemBuilder<S> {
    /// Start from an initial state. The default fingerprint requires
    /// [`std::hash::Hash`]; override with [`Self::fingerprint`] otherwise.
    pub fn new(initial: S) -> Self
    where
        S: std::hash::Hash,
    {
        Self {
            sys: GuardedSystem {
                initial,
                actions: Vec::new(),
                fingerprint: Arc::new(|s: &S| {
                    // FNV over the std hash to decorrelate.
                    use std::hash::Hasher;
                    struct Fnv(u64);
                    impl Hasher for Fnv {
                        fn finish(&self) -> u64 {
                            self.0
                        }
                        fn write(&mut self, bytes: &[u8]) {
                            for &b in bytes {
                                self.0 ^= u64::from(b);
                                self.0 = self.0.wrapping_mul(0x100000001b3);
                            }
                        }
                    }
                    let mut h = Fnv(0xcbf29ce484222325);
                    s.hash(&mut h);
                    h.finish()
                }),
                expected_terminal: Arc::new(|_| true),
                independent: None,
            },
        }
    }

    /// Provide an explicit fingerprint function.
    pub fn fingerprint(mut self, f: impl Fn(&S) -> u64 + Send + Sync + 'static) -> Self {
        self.sys.fingerprint = Arc::new(f);
        self
    }

    /// Declare a guarded command.
    pub fn action(
        mut self,
        name: &str,
        guard: impl Fn(&S) -> bool + Send + Sync + 'static,
        effect: impl Fn(&mut S) + Send + Sync + 'static,
    ) -> Self {
        self.sys.actions.push(Action::new(name, guard, effect));
        self
    }

    /// Declare which terminal states are acceptable (others are reported
    /// as deadlocks).
    pub fn expected_terminal(mut self, f: impl Fn(&S) -> bool + Send + Sync + 'static) -> Self {
        self.sys.expected_terminal = Arc::new(f);
        self
    }

    /// Declare action independence by name (enables partial-order
    /// reduction when the explorer asks for it).
    pub fn independence(mut self, f: impl Fn(&str, &str) -> bool + Send + Sync + 'static) -> Self {
        self.sys.independent = Some(Arc::new(f));
        self
    }

    /// Finish.
    pub fn build(self) -> GuardedSystem<S> {
        self.sys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_counter() -> GuardedSystem<[u8; 2]> {
        GuardedSystemBuilder::new([0u8, 0u8])
            .action("inc-a", |s| s[0] < 2, |s| s[0] += 1)
            .action("inc-b", |s| s[1] < 2, |s| s[1] += 1)
            .build()
    }

    #[test]
    fn guards_filter_enabled() {
        let sys = two_counter();
        assert_eq!(sys.enabled(&[0, 0]).len(), 2);
        assert_eq!(sys.enabled(&[2, 0]).len(), 1);
        assert_eq!(sys.enabled(&[2, 2]).len(), 0);
    }

    #[test]
    fn apply_runs_effect_without_mutating_source() {
        let sys = two_counter();
        let s = [0u8, 0u8];
        let l = &sys.enabled(&s)[0];
        let next = sys.apply(&s, l);
        assert_eq!(s, [0, 0]);
        assert_eq!(next[0] + next[1], 1);
    }

    #[test]
    fn dynamic_action_set_changes() {
        let mut sys = two_counter();
        assert_eq!(sys.remove_action("inc-b"), 1);
        assert_eq!(sys.enabled(&[0, 0]).len(), 1);
        sys.add_action(Action::new("dec-a", |s: &[u8; 2]| s[0] > 0, |s| s[0] -= 1));
        assert_eq!(sys.enabled(&[1, 0]).len(), 2);
        // Replace inc-a with a doubled version.
        assert!(sys.replace_action(
            "inc-a",
            Action::new("inc-a", |s: &[u8; 2]| s[0] == 0, |s| s[0] += 2)
        ));
        let l = sys
            .enabled(&[0, 0])
            .into_iter()
            .find(|l| l.name == "inc-a")
            .unwrap();
        assert_eq!(sys.apply(&[0, 0], &l)[0], 2);
    }

    #[test]
    fn default_fingerprint_distinguishes_states() {
        let sys = two_counter();
        assert_ne!(sys.fingerprint(&[0, 1]), sys.fingerprint(&[1, 0]));
        assert_eq!(sys.fingerprint(&[1, 1]), sys.fingerprint(&[1, 1]));
    }

    #[test]
    fn set_initial_changes_root() {
        let mut sys = two_counter();
        sys.set_initial([2, 2]);
        assert_eq!(sys.initial(), [2, 2]);
    }

    #[test]
    fn independence_hook() {
        let sys = GuardedSystemBuilder::new([0u8, 0u8])
            .action("a", |_| true, |s| s[0] += 1)
            .action("b", |_| true, |s| s[1] += 1)
            .independence(|x, y| x != y)
            .build();
        let ls = sys.enabled(&[0, 0]);
        assert!(sys.independent(&ls[0], &ls[1]));
        assert!(!sys.independent(&ls[0], &ls[0]));
    }
}
