//! # fixd-timemachine — the Time Machine
//!
//! Reproduction of the **Time Machine** component of FixD (paper §3.2,
//! Fig. 2; implementation §4.2, Fig. 6): rollback of a distributed
//! application to a *consistent global state*, implemented with
//! **distributed speculations** \[Ţăpuş, PhD 2006\].
//!
//! The paper names two defining differences between speculations and
//! traditional checkpoint/rollback, both implemented here:
//!
//! 1. *"Speculations use a copy-on-write mechanism to build lightweight,
//!    incremental checkpoints of processes"* — [`page`] provides
//!    reference-counted paged state images; consecutive checkpoints share
//!    every unchanged page ([`checkpoint`]).
//! 2. *"Speculations allow applications to use a different execution path
//!    upon rollback"* — [`speculation`] exposes commit/abort with the
//!    abort outcome reported to the application, which can then steer
//!    (the Healer builds on this).
//!
//! Checkpointing is *communication induced* ([`cic`], Fig. 6): a process
//! saves a lightweight checkpoint before receiving a message, and message
//! metadata carries the sender's checkpoint interval so the
//! rollback-dependency graph ([`dependency`]) can compute a **safe
//! recovery line** ([`recovery`]) — the "Safe recovery line" of Fig. 6 —
//! instead of cascading unboundedly (the domino effect measured in
//! experiment **F6**).
//!
//! [`snapshot`] provides the stop-the-world coordinated global checkpoint
//! used both as the eager full-copy baseline (experiment **F2**) and as
//! the "piece together a consistent global checkpoint" substrate of the
//! FixD fault-response protocol (Fig. 4).

pub mod checkpoint;
pub mod cic;
pub mod dependency;
pub mod gc;
pub mod page;
pub mod recovery;
pub mod snapshot;
pub mod speculation;

pub use checkpoint::{CheckpointStore, TmCheckpoint};
pub use cic::{CheckpointPolicy, TimeMachine, TimeMachineConfig};
pub use dependency::{DepEdge, DependencyGraph};
pub use gc::GcReport;
pub use page::{PageStats, PageStore, PagedImage, StoreStats, DEFAULT_PAGE_SIZE};
pub use recovery::{RecoveryLine, RollbackReport, NO_ROLLBACK};
pub use snapshot::{
    coordinated_snapshot, coordinated_snapshot_in, restore_global, GlobalCheckpoint,
};
pub use speculation::{AbortReport, SpecStatus, Speculation};
