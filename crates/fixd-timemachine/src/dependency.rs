//! The rollback-dependency graph and recovery-line computation.
//!
//! Every message carries its sender's checkpoint *interval* (the index of
//! the sender's most recent checkpoint, stamped via
//! [`fixd_runtime::MsgMeta::ckpt_index`]). When the message is delivered,
//! the Time Machine records a dependency edge
//! `(sender, sender_interval) → (receiver, receiver_interval)`:
//! if the sender rolls back to a checkpoint ≤ `sender_interval` (undoing
//! that interval's sends), the message becomes an *orphan*, forcing the
//! receiver to roll back to a checkpoint ≤ `receiver_interval` (undoing
//! the receive). The fixed point of this propagation is the **recovery
//! line** — "Safe recovery line" in Fig. 6 of the paper.

use fixd_runtime::Pid;

/// Sentinel for "this process does not roll back".
pub const NO_ROLLBACK: u64 = u64::MAX;

/// One rollback dependency: a message sent in `src`'s interval
/// `src_interval` was received in `dst`'s interval `dst_interval`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepEdge {
    pub src: Pid,
    pub src_interval: u64,
    pub dst: Pid,
    pub dst_interval: u64,
}

/// The rollback-dependency graph of a run.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    edges: Vec<DepEdge>,
}

impl DependencyGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a dependency.
    pub fn add(&mut self, edge: DepEdge) {
        self.edges.push(edge);
    }

    /// All recorded edges.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Number of recorded dependencies.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no dependencies are recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Retain only edges matching `pred` (garbage collection).
    pub fn retain_edges(&mut self, pred: impl FnMut(&DepEdge) -> bool) {
        self.edges.retain(pred);
    }

    /// Drop edges made irrelevant by a rollback: any edge whose receive
    /// interval was undone (`dst_interval >= line[dst]`) no longer
    /// describes the (new) history.
    pub fn retract(&mut self, line: &[u64]) {
        self.edges.retain(|e| {
            let dl = line.get(e.dst.idx()).copied().unwrap_or(NO_ROLLBACK);
            let sl = line.get(e.src.idx()).copied().unwrap_or(NO_ROLLBACK);
            e.dst_interval < dl && e.src_interval < sl
        });
    }

    /// Compute the recovery line when `fail` must roll back to checkpoint
    /// `target`. Returns, per process, the checkpoint index to restore,
    /// or [`NO_ROLLBACK`] if the process keeps its current state.
    ///
    /// The propagation is monotone (indices only decrease), so the fixed
    /// point is the *maximal* consistent line — no process rolls back
    /// further than the dependencies force.
    pub fn recovery_line(&self, n: usize, fail: Pid, target: u64) -> Vec<u64> {
        let mut line = vec![NO_ROLLBACK; n];
        if fail.idx() < n {
            line[fail.idx()] = target;
        }
        loop {
            let mut changed = false;
            for e in &self.edges {
                let (si, di) = (e.src.idx(), e.dst.idx());
                if si >= n || di >= n {
                    continue;
                }
                // Sender interval undone => receive orphaned.
                if line[si] <= e.src_interval && line[di] > e.dst_interval {
                    line[di] = e.dst_interval;
                    changed = true;
                }
            }
            if !changed {
                return line;
            }
        }
    }

    /// Convenience: how many processes a line forces to roll back.
    pub fn rollback_breadth(line: &[u64]) -> usize {
        line.iter().filter(|&&l| l != NO_ROLLBACK).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(src: u32, si: u64, dst: u32, di: u64) -> DepEdge {
        DepEdge {
            src: Pid(src),
            src_interval: si,
            dst: Pid(dst),
            dst_interval: di,
        }
    }

    #[test]
    fn isolated_failure_rolls_back_only_itself() {
        let g = DependencyGraph::new();
        let line = g.recovery_line(3, Pid(1), 2);
        assert_eq!(line, vec![NO_ROLLBACK, 2, NO_ROLLBACK]);
        assert_eq!(DependencyGraph::rollback_breadth(&line), 1);
    }

    #[test]
    fn direct_dependency_propagates() {
        let mut g = DependencyGraph::new();
        // P0 sent in interval 3, P1 received in its interval 5.
        g.add(e(0, 3, 1, 5));
        // P0 rolls to checkpoint 2: interval 3 undone (3 >= 2)? Edge rule:
        // line[0]=2 <= src_interval=3 => orphan => P1 rolls to 5.
        let line = g.recovery_line(2, Pid(0), 2);
        assert_eq!(line, vec![2, 5]);
        // P0 rolls to checkpoint 4: interval 3 survives => no cascade.
        let line = g.recovery_line(2, Pid(0), 4);
        assert_eq!(line, vec![4, NO_ROLLBACK]);
    }

    #[test]
    fn transitive_cascade() {
        let mut g = DependencyGraph::new();
        g.add(e(0, 1, 1, 2)); // P0@1 -> P1@2
        g.add(e(1, 2, 2, 7)); // P1@2 -> P2@7 (sent in the undone interval)
        let line = g.recovery_line(3, Pid(0), 0);
        assert_eq!(line, vec![0, 2, 7]);
    }

    #[test]
    fn cascade_stops_at_earlier_intervals() {
        let mut g = DependencyGraph::new();
        g.add(e(0, 5, 1, 4)); // received before the undone region
        let line = g.recovery_line(2, Pid(0), 6);
        // line[0]=6 > 5 so interval 5 survives.
        assert_eq!(line, vec![6, NO_ROLLBACK]);
    }

    #[test]
    fn cyclic_dependencies_converge() {
        let mut g = DependencyGraph::new();
        g.add(e(0, 2, 1, 2));
        g.add(e(1, 1, 0, 3)); // back edge
        let line = g.recovery_line(2, Pid(0), 1);
        // P0 -> 1 undoes interval 2 edge => P1 -> 2; P1's interval 1
        // survives (1 < 2)... wait line[1]=2 > 1 so back edge inactive.
        assert_eq!(line, vec![1, 2]);
        // Tighter failure: P1 to 0 undoes its interval 1 send => P0 must
        // undo its interval-3 receive.
        let line = g.recovery_line(2, Pid(1), 0);
        assert_eq!(line, vec![3, 0]);
    }

    #[test]
    fn domino_effect_with_sparse_checkpoints() {
        // Classic domino: alternating messages, checkpoints far apart.
        let mut g = DependencyGraph::new();
        g.add(e(0, 0, 1, 0));
        g.add(e(1, 0, 0, 0));
        let line = g.recovery_line(2, Pid(0), 0);
        // Everyone cascades to 0 — the unbounded rollback the paper's
        // Fig. 6 guards against.
        assert_eq!(line, vec![0, 0]);
    }

    #[test]
    fn retract_removes_undone_edges() {
        let mut g = DependencyGraph::new();
        g.add(e(0, 1, 1, 2));
        g.add(e(0, 0, 1, 0));
        let line = vec![1, 2];
        g.retract(&line);
        // Edge (0@1 -> 1@2): src_interval 1 >= line[0]=1 => dropped.
        // Edge (0@0 -> 1@0): both below the line => kept.
        assert_eq!(g.len(), 1);
        assert_eq!(g.edges()[0], e(0, 0, 1, 0));
    }

    #[test]
    fn takes_minimum_over_multiple_edges() {
        let mut g = DependencyGraph::new();
        g.add(e(0, 0, 1, 5));
        g.add(e(0, 0, 1, 3)); // an earlier receive of an interval-0 send
        let line = g.recovery_line(2, Pid(0), 0);
        assert_eq!(line[1], 3, "must undo the earliest affected receive");
    }
}
