//! Distributed speculations (paper §4.2, after \[Ţăpuş, PhD 2006\]).
//!
//! > *"A speculation defines a computation that is based on an assumption
//! > whose verification may be performed in parallel with the
//! > computation. If the assumption is validated then the speculation is
//! > committed ... if the assumption is invalidated then the speculation
//! > is aborted and the process is rolled back to the state it had before
//! > entering the speculation."*
//!
//! Implementation notes mapping to the paper:
//!
//! * entering a speculation takes a *lightweight checkpoint* (a COW
//!   [`crate::checkpoint::TmCheckpoint`]);
//! * messages sent while speculative carry the speculation id
//!   ([`fixd_runtime::MsgMeta::spec_id`]); receivers are **absorbed**
//!   (their own entry checkpoint is taken before the receive executes);
//! * abort rolls back *all absorbed processes* to their entry
//!   checkpoints and purges speculative messages still in flight;
//! * after an abort the application may take *"a different execution
//!   path"* — the [`AbortReport`] names the rolled-back processes so the
//!   caller (ultimately the Healer) can steer them.
//!
//! A process participates in at most one speculation at a time; a
//! speculative message arriving at a process already inside a different
//! active speculation *links* the two (aborting either rolls back the
//! members of both), a conservative approximation of nested speculations.

use fixd_runtime::{Pid, World};

use crate::cic::TimeMachine;
use crate::dependency::NO_ROLLBACK;
use crate::recovery::RollbackReport;

/// Lifecycle of a speculation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecStatus {
    Active,
    Committed,
    Aborted,
}

/// One speculation: who is inside it, and where they entered.
#[derive(Clone, Debug)]
pub struct Speculation {
    /// Nonzero id (0 is reserved for "not speculative").
    pub id: u64,
    /// The process that initiated the speculation.
    pub initiator: Pid,
    /// Human-readable description of the assumption.
    pub assumption: String,
    /// Members and their entry checkpoint indices.
    pub members: Vec<(Pid, u64)>,
    /// Speculations linked to this one by cross-speculative messages.
    pub linked: Vec<u64>,
    pub status: SpecStatus,
}

impl Speculation {
    /// Is `pid` a member?
    pub fn contains(&self, pid: Pid) -> bool {
        self.members.iter().any(|(p, _)| *p == pid)
    }
}

/// Outcome of an abort — who lost state.
#[derive(Clone, Debug, Default)]
pub struct AbortReport {
    /// The aborted speculation (plus any linked ones).
    pub specs_aborted: Vec<u64>,
    /// Processes rolled back to their entry checkpoints.
    pub rolled_back: Vec<Pid>,
    /// Underlying rollback accounting.
    pub rollback: RollbackReport,
}

impl TimeMachine {
    /// Begin a speculation at `pid` based on `assumption`. Takes the
    /// entry checkpoint and starts stamping `pid`'s sends with the
    /// speculation id. Returns the speculation id.
    pub fn speculate(&mut self, world: &mut World, pid: Pid, assumption: &str) -> u64 {
        self.init(world);
        let id = self.specs.len() as u64 + 1;
        let entry = self.checkpoint_now(world, pid);
        self.specs.push(Speculation {
            id,
            initiator: pid,
            assumption: assumption.to_string(),
            members: vec![(pid, entry)],
            linked: Vec::new(),
            status: SpecStatus::Active,
        });
        self.spec_of[pid.idx()] = id;
        self.restamp(world, pid);
        id
    }

    fn restamp(&self, world: &mut World, pid: Pid) {
        let mut meta = world.meta_template(pid);
        meta.ckpt_index = self.intervals[pid.idx()];
        meta.spec_id = self.spec_of[pid.idx()];
        world.set_meta_template(pid, meta);
    }

    /// Absorb `pid` into active speculation `spec_id` (called by the
    /// driver when a speculative message is about to be delivered).
    pub(crate) fn absorb(&mut self, world: &mut World, pid: Pid, spec_id: u64) {
        let Some(spec) = self.specs.get(spec_id as usize - 1) else {
            return;
        };
        if spec.status != SpecStatus::Active {
            return;
        }
        let current = self.spec_of[pid.idx()];
        if current == spec_id {
            return; // already inside
        }
        if current != 0 {
            // Cross-speculation message: link the two speculations.
            let a = spec_id as usize - 1;
            let b = current as usize - 1;
            if !self.specs[a].linked.contains(&current) {
                self.specs[a].linked.push(current);
            }
            if !self.specs[b].linked.contains(&spec_id) {
                self.specs[b].linked.push(spec_id);
            }
            return;
        }
        // Entry checkpoint: under EveryReceive policy one was just taken
        // for this delivery; otherwise take one now.
        let entry = if self.cfg.policy == crate::cic::CheckpointPolicy::EveryReceive {
            self.intervals[pid.idx()]
        } else {
            self.checkpoint_now(world, pid)
        };
        self.specs[spec_id as usize - 1].members.push((pid, entry));
        self.spec_of[pid.idx()] = spec_id;
        self.restamp(world, pid);
    }

    /// Commit a speculation: the assumption held. Members simply stop
    /// being speculative; no state is touched.
    pub fn commit(&mut self, world: &mut World, id: u64) -> bool {
        let Some(spec) = self.specs.get_mut(id as usize - 1) else {
            return false;
        };
        if spec.status != SpecStatus::Active {
            return false;
        }
        spec.status = SpecStatus::Committed;
        let members: Vec<Pid> = spec.members.iter().map(|(p, _)| *p).collect();
        for pid in members {
            if self.spec_of[pid.idx()] == id {
                self.spec_of[pid.idx()] = 0;
                self.restamp(world, pid);
            }
        }
        true
    }

    /// Abort a speculation: the assumption failed. Every member (of this
    /// speculation and of any linked ones) rolls back to its entry
    /// checkpoint; speculative messages still in flight are purged.
    pub fn abort(&mut self, world: &mut World, id: u64) -> Option<AbortReport> {
        let spec = self.specs.get(id as usize - 1)?;
        if spec.status != SpecStatus::Active {
            return None;
        }
        // Gather the closure over linked speculations.
        let mut ids = vec![id];
        let mut i = 0;
        while i < ids.len() {
            let s = &self.specs[ids[i] as usize - 1];
            for &l in &s.linked {
                if !ids.contains(&l) && self.specs[l as usize - 1].status == SpecStatus::Active {
                    ids.push(l);
                }
            }
            i += 1;
        }
        // Build the rollback line: member → entry checkpoint.
        let n = self.stores.len();
        let mut line = vec![NO_ROLLBACK; n];
        let mut rolled = Vec::new();
        for &sid in &ids {
            for &(pid, entry) in &self.specs[sid as usize - 1].members {
                if line[pid.idx()] > entry {
                    line[pid.idx()] = entry;
                }
            }
        }
        for (i, &l) in line.iter().enumerate() {
            if l != NO_ROLLBACK {
                rolled.push(Pid(i as u32));
            }
        }
        // Purge speculative messages of the aborted closure first (they
        // must never be delivered even if their sender's line survives).
        let ids_for_purge = ids.clone();
        world.purge_events(move |kind| match kind {
            fixd_runtime::EventKind::Deliver { msg } => ids_for_purge.contains(&msg.meta.spec_id),
            _ => false,
        });
        let rollback = self.apply_line(world, &line).ok()?;
        for &sid in &ids {
            self.specs[sid as usize - 1].status = SpecStatus::Aborted;
        }
        // apply_line already cleared spec_of for rolled-back processes.
        Some(AbortReport {
            specs_aborted: ids,
            rolled_back: rolled,
            rollback,
        })
    }

    /// Resolve a speculation from the verification outcome: commit when
    /// the assumption validated, abort otherwise.
    pub fn resolve(&mut self, world: &mut World, id: u64, valid: bool) -> Option<AbortReport> {
        if valid {
            self.commit(world, id);
            None
        } else {
            self.abort(world, id)
        }
    }

    /// Look up a speculation.
    pub fn speculation(&self, id: u64) -> Option<&Speculation> {
        self.specs.get(id as usize - 1)
    }

    /// The active speculation `pid` is inside, if any.
    pub fn active_spec_of(&self, pid: Pid) -> Option<u64> {
        match self.spec_of[pid.idx()] {
            0 => None,
            s => Some(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cic::{CheckpointPolicy, TimeMachineConfig};
    use fixd_runtime::{Context, Message, Program, WorldConfig};

    /// A worker that applies increments it receives; P0 seeds the chain
    /// P0 → P1 → P2 with `depth` hops.
    struct Chain {
        value: u64,
    }
    impl Program for Chain {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                self.value += 1;
                ctx.send(Pid(1), 1, vec![2]);
            }
        }
        fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
            self.value += 10;
            if msg.payload[0] > 0 && ctx.world_size() > 2 {
                let next = Pid(((ctx.pid().0 as usize + 1) % ctx.world_size()) as u32);
                ctx.send(next, 1, vec![msg.payload[0] - 1]);
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            self.value.to_le_bytes().to_vec()
        }
        fn restore(&mut self, b: &[u8]) {
            self.value = u64::from_le_bytes(b.try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Chain { value: self.value })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn setup(n: usize) -> (World, TimeMachine) {
        let mut w = World::new(WorldConfig::seeded(21));
        for _ in 0..n {
            w.add_process(Box::new(Chain { value: 0 }));
        }
        let tm = TimeMachine::new(
            n,
            TimeMachineConfig {
                policy: CheckpointPolicy::EveryReceive,
                page_size: 64,
            },
        );
        (w, tm)
    }

    #[test]
    fn speculative_messages_absorb_receivers() {
        let (mut w, mut tm) = setup(3);
        tm.init(&mut w);
        let spec = tm.speculate(&mut w, Pid(0), "assume config flag F is on");
        // P0 starts, sends speculative message down the chain.
        tm.run(&mut w, 10_000);
        let s = tm.speculation(spec).unwrap();
        assert_eq!(s.status, SpecStatus::Active);
        assert!(s.contains(Pid(0)));
        assert!(s.contains(Pid(1)), "P1 absorbed via speculative message");
        assert!(s.contains(Pid(2)), "absorption is transitive");
        assert_eq!(tm.active_spec_of(Pid(1)), Some(spec));
    }

    #[test]
    fn commit_keeps_state_and_clears_speculative_status() {
        let (mut w, mut tm) = setup(3);
        tm.init(&mut w);
        let spec = tm.speculate(&mut w, Pid(0), "assumption");
        tm.run(&mut w, 10_000);
        let before: Vec<u64> = (0..3)
            .map(|i| w.program::<Chain>(Pid(i)).unwrap().value)
            .collect();
        assert!(tm.commit(&mut w, spec));
        let after: Vec<u64> = (0..3)
            .map(|i| w.program::<Chain>(Pid(i)).unwrap().value)
            .collect();
        assert_eq!(before, after);
        assert_eq!(tm.active_spec_of(Pid(0)), None);
        assert_eq!(tm.speculation(spec).unwrap().status, SpecStatus::Committed);
        assert!(!tm.commit(&mut w, spec), "double commit refused");
    }

    #[test]
    fn abort_restores_pre_speculation_state_everywhere() {
        let (mut w, mut tm) = setup(3);
        tm.init(&mut w);
        let pre: Vec<u64> = (0..3)
            .map(|i| w.program::<Chain>(Pid(i)).unwrap().value)
            .collect();
        let spec = tm.speculate(&mut w, Pid(0), "assumption");
        tm.run(&mut w, 10_000);
        // Speculative execution changed state.
        assert_ne!(
            pre,
            (0..3)
                .map(|i| w.program::<Chain>(Pid(i)).unwrap().value)
                .collect::<Vec<_>>()
        );
        let report = tm.abort(&mut w, spec).unwrap();
        let post: Vec<u64> = (0..3)
            .map(|i| w.program::<Chain>(Pid(i)).unwrap().value)
            .collect();
        assert_eq!(pre, post, "abort must fully undo speculative effects");
        assert_eq!(report.rolled_back.len(), 3);
        assert_eq!(tm.speculation(spec).unwrap().status, SpecStatus::Aborted);
        assert!(tm.abort(&mut w, spec).is_none(), "double abort refused");
    }

    #[test]
    fn abort_purges_inflight_speculative_messages() {
        let (mut w, mut tm) = setup(3);
        tm.init(&mut w);
        let spec = tm.speculate(&mut w, Pid(0), "assumption");
        // Execute only P0's start: its speculative send is now in flight.
        let ev = w.peek().unwrap();
        tm.before_step(&mut w, &ev);
        let rec = w.step().unwrap();
        tm.after_step(&mut w, &rec);
        while let Some(ev) = w.peek() {
            if matches!(ev.kind, fixd_runtime::EventKind::Deliver { .. }) {
                break;
            }
            tm.before_step(&mut w, &ev);
            let rec = w.step().unwrap();
            tm.after_step(&mut w, &rec);
        }
        assert!(!w.inflight_messages().is_empty());
        // Speculative stamping (spec_id in the meta) must not have
        // copied payload bytes: every in-flight speculative message
        // still aliases the allocation recorded in its sender's traced
        // effects.
        for m in &w.inflight_messages() {
            let sent = w
                .trace()
                .records()
                .iter()
                .flat_map(|r| &r.effects.sends)
                .find(|s| s.id == m.id)
                .expect("in-flight message has a recorded send");
            assert!(
                sent.payload.ptr_eq(&m.payload),
                "speculative in-flight payload must alias the sender's record"
            );
        }
        tm.abort(&mut w, spec).unwrap();
        assert!(w.inflight_messages().is_empty(), "speculative mail purged");
        // P0's entry checkpoint predates its on_start, so the abort
        // reboots it; the chain re-executes NON-speculatively (the
        // alternate path), and the purged speculative copy is never
        // delivered — P1 sees the value exactly once.
        tm.run(&mut w, 10_000);
        assert_eq!(w.program::<Chain>(Pid(1)).unwrap().value, 10);
        assert_eq!(tm.active_spec_of(Pid(1)), None);
    }

    #[test]
    fn resolve_dispatches_commit_or_abort() {
        let (mut w, mut tm) = setup(3);
        tm.init(&mut w);
        let s1 = tm.speculate(&mut w, Pid(0), "valid assumption");
        tm.run(&mut w, 10_000);
        assert!(tm.resolve(&mut w, s1, true).is_none());
        assert_eq!(tm.speculation(s1).unwrap().status, SpecStatus::Committed);

        let s2 = tm.speculate(&mut w, Pid(1), "invalid assumption");
        let report = tm.resolve(&mut w, s2, false).unwrap();
        assert!(report.specs_aborted.contains(&s2));
    }

    #[test]
    fn linked_speculations_abort_together() {
        let (mut w, mut tm) = setup(2);
        tm.init(&mut w);
        // Two concurrent speculations on different processes.
        let s0 = tm.speculate(&mut w, Pid(0), "A");
        let s1 = tm.speculate(&mut w, Pid(1), "B");
        // P0 sends (speculatively under s0) to P1 who is inside s1:
        // the speculations become linked.
        tm.run(&mut w, 10_000);
        let sp0 = tm.speculation(s0).unwrap();
        assert!(sp0.linked.contains(&s1) || tm.speculation(s1).unwrap().linked.contains(&s0));
        let report = tm.abort(&mut w, s0).unwrap();
        assert!(
            report.specs_aborted.contains(&s1),
            "linked spec aborted too"
        );
        assert_eq!(tm.speculation(s1).unwrap().status, SpecStatus::Aborted);
    }
}
