//! The [`TimeMachine`]: communication-induced checkpointing driver and
//! rollback executor.
//!
//! Figure 6 of the paper: *"Each process saves a checkpoint before
//! receiving a new message. If process B fails ... all other processes
//! that communicated with it need to restore their state to form a
//! globally consistent recovery line."* The Time Machine implements that
//! discipline as a driver around [`World::peek`]/[`World::step`]:
//!
//! * **before** a `Deliver` executes, the receiver takes a lightweight
//!   (COW) checkpoint and the dependency edge is recorded;
//! * message metadata stamps every send with the sender's current
//!   checkpoint interval;
//! * on failure, [`TimeMachine::rollback`] computes the maximal safe
//!   recovery line and restores it — purging orphan messages and
//!   re-injecting logged messages that the restored past has already
//!   sent but the rolled-back receivers have not yet received
//!   (sender-based message logging, as liblog provides in §4.1).

use fixd_runtime::{EventKind, MsgMeta, Pid, SharedMessage, StepRecord, VTime, World};

use crate::checkpoint::CheckpointStore;
use crate::dependency::{DepEdge, DependencyGraph, NO_ROLLBACK};
use crate::recovery::{RecoveryLine, RollbackError, RollbackReport};
use crate::speculation::Speculation;

/// When checkpoints are taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Communication-induced: checkpoint before every receive (Fig. 6).
    /// Guarantees bounded, safe recovery lines.
    EveryReceive,
    /// Independent periodic checkpoints every `every` virtual time units.
    /// The naive baseline: vulnerable to the domino effect (F6).
    Periodic { every: VTime },
    /// Only explicit [`TimeMachine::checkpoint_now`] calls (plus the
    /// initial checkpoint 0).
    OnDemand,
}

/// Time Machine construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct TimeMachineConfig {
    pub policy: CheckpointPolicy,
    /// Page size of the COW state images.
    pub page_size: usize,
}

impl Default for TimeMachineConfig {
    fn default() -> Self {
        Self {
            policy: CheckpointPolicy::EveryReceive,
            page_size: crate::page::DEFAULT_PAGE_SIZE,
        }
    }
}

/// A delivered message retained for replay after rollback. The retained
/// handle **is** the delivered message (shared `SharedMessage`): logging
/// a delivery adds one reference count — no payload copy, no vector
/// clock clone, no `Message` at all.
#[derive(Clone, Debug)]
pub(crate) struct DeliveryRecord {
    pub msg: SharedMessage,
    pub dst_interval: u64,
}

/// The Time Machine. One per [`World`]; drive it with
/// [`TimeMachine::run`] or manually via
/// [`TimeMachine::before_step`]/[`TimeMachine::after_step`].
#[derive(Clone, Debug)]
pub struct TimeMachine {
    pub(crate) cfg: TimeMachineConfig,
    /// The shared content-addressed page store every per-process
    /// [`CheckpointStore`] interns into. Cloning the Time Machine (a
    /// speculation branch) shares it, so branches pay page refcounts,
    /// not page copies, until they diverge.
    pub(crate) page_store: crate::page::PageStore,
    pub(crate) stores: Vec<CheckpointStore>,
    pub(crate) deps: DependencyGraph,
    pub(crate) intervals: Vec<u64>,
    pub(crate) events_handled: Vec<u64>,
    pub(crate) last_periodic: Vec<VTime>,
    pub(crate) delivery_log: Vec<DeliveryRecord>,
    pub(crate) specs: Vec<Speculation>,
    pub(crate) spec_of: Vec<u64>,
    initialized: bool,
}

impl TimeMachine {
    /// A Time Machine for a world of `n` processes, with its own page
    /// store shared across the world's processes.
    pub fn new(n: usize, cfg: TimeMachineConfig) -> Self {
        Self::with_store(n, cfg, crate::page::PageStore::new())
    }

    /// A Time Machine interning checkpoint pages into an externally
    /// provided store — pass one store to many Time Machines (campaign
    /// cells, OS processes) to deduplicate identical state across them.
    pub fn with_store(n: usize, cfg: TimeMachineConfig, pages: crate::page::PageStore) -> Self {
        Self {
            cfg,
            stores: (0..n)
                .map(|i| CheckpointStore::with_store(Pid(i as u32), cfg.page_size, pages.clone()))
                .collect(),
            page_store: pages,
            deps: DependencyGraph::new(),
            intervals: vec![0; n],
            events_handled: vec![0; n],
            last_periodic: vec![0; n],
            delivery_log: Vec::new(),
            specs: Vec::new(),
            spec_of: vec![0; n],
            initialized: false,
        }
    }

    /// Take the initial checkpoint (index 0) of every process. Called
    /// lazily by the driver entry points; call explicitly if you need
    /// checkpoint 0 to capture a specific pre-run state.
    pub fn init(&mut self, world: &mut World) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        world.ensure_started();
        for i in 0..self.stores.len() {
            let pid = Pid(i as u32);
            let idx = self.stores[i].take(world, self.events_handled[i]);
            debug_assert_eq!(idx, 0);
            self.intervals[i] = 0;
            self.stamp_meta(world, pid);
        }
    }

    fn stamp_meta(&self, world: &mut World, pid: Pid) {
        world.set_meta_template(
            pid,
            MsgMeta {
                ckpt_index: self.intervals[pid.idx()],
                spec_id: self.spec_of[pid.idx()],
                lamport: 0,
            },
        );
    }

    /// Take an on-demand checkpoint of `pid` now. Returns its index.
    pub fn checkpoint_now(&mut self, world: &mut World, pid: Pid) -> u64 {
        self.init(world);
        let i = pid.idx();
        let idx = self.stores[i].take(world, self.events_handled[i]);
        self.intervals[i] = idx;
        self.stamp_meta(world, pid);
        idx
    }

    /// Hook to call with the event [`World::peek`] returned, *before*
    /// [`World::step`] executes it.
    pub fn before_step(&mut self, world: &mut World, ev: &fixd_runtime::Event) {
        self.init(world);
        match &ev.kind {
            EventKind::Deliver { msg } => {
                let dst = msg.dst;
                if self.cfg.policy == CheckpointPolicy::EveryReceive {
                    self.checkpoint_now(world, dst);
                }
                self.deps.add(DepEdge {
                    src: msg.src,
                    src_interval: msg.meta.ckpt_index,
                    dst,
                    dst_interval: self.intervals[dst.idx()],
                });
                self.delivery_log.push(DeliveryRecord {
                    msg: msg.clone(),
                    dst_interval: self.intervals[dst.idx()],
                });
                // Speculative-message absorption (paper §4.2: "Processes
                // that receive speculative data are absorbed in the
                // speculation").
                if msg.meta.spec_id != 0 {
                    self.absorb(world, dst, msg.meta.spec_id);
                }
            }
            EventKind::Start { pid } | EventKind::TimerFire { pid, .. } => {
                if let CheckpointPolicy::Periodic { every } = self.cfg.policy {
                    let i = pid.idx();
                    if world.now().saturating_sub(self.last_periodic[i]) >= every {
                        self.last_periodic[i] = world.now();
                        self.checkpoint_now(world, *pid);
                    }
                }
            }
            _ => {}
        }
        // Periodic policy also checkpoints on receives, on the period.
        if let (CheckpointPolicy::Periodic { every }, EventKind::Deliver { msg }) =
            (self.cfg.policy, &ev.kind)
        {
            let i = msg.dst.idx();
            if world.now().saturating_sub(self.last_periodic[i]) >= every {
                self.last_periodic[i] = world.now();
                self.checkpoint_now(world, msg.dst);
            }
        }
    }

    /// Hook to call with the record [`World::step`] returned.
    pub fn after_step(&mut self, _world: &mut World, rec: &StepRecord) {
        if rec.event.kind.runs_handler() {
            if let Some(pid) = rec.event.kind.pid() {
                self.events_handled[pid.idx()] += 1;
            }
        }
    }

    /// Drive `world` for up to `max_steps` events under Time-Machine
    /// supervision. Returns the number of steps executed.
    pub fn run(&mut self, world: &mut World, max_steps: u64) -> u64 {
        let mut steps = 0;
        while steps < max_steps {
            let Some(ev) = world.peek() else { break };
            self.before_step(world, &ev);
            let Some(rec) = world.step() else { break };
            self.after_step(world, &rec);
            steps += 1;
        }
        steps
    }

    /// Compute (without applying) the recovery line for a failure of
    /// `fail` rolling to checkpoint `target`.
    pub fn plan_rollback(&self, fail: Pid, target: u64) -> RecoveryLine {
        RecoveryLine::new(self.deps.recovery_line(self.stores.len(), fail, target))
    }

    /// Roll the world back: `fail` restores checkpoint `target`, every
    /// dependent process restores its own checkpoint on the computed
    /// recovery line. Orphan in-flight messages are purged; logged
    /// messages that the surviving past sent but rolled-back receivers
    /// have not (re-)received are re-injected.
    pub fn rollback(
        &mut self,
        world: &mut World,
        fail: Pid,
        target: u64,
    ) -> Result<RollbackReport, RollbackError> {
        self.init(world);
        if self.stores[fail.idx()].get(target).is_none() {
            return Err(RollbackError::NoSuchCheckpoint {
                pid: fail,
                index: target,
            });
        }
        let line = self.deps.recovery_line(self.stores.len(), fail, target);
        self.apply_line(world, &line).map(|mut r| {
            r.line = line;
            r
        })
    }

    /// Restore an explicit recovery line. Used by [`Self::rollback`] and
    /// by speculation aborts.
    pub(crate) fn apply_line(
        &mut self,
        world: &mut World,
        line: &[u64],
    ) -> Result<RollbackReport, RollbackError> {
        // Validate first: every required checkpoint must be live.
        for (i, &l) in line.iter().enumerate() {
            if l == NO_ROLLBACK {
                continue;
            }
            let pid = Pid(i as u32);
            if self.stores[i].get(l).is_none() {
                return Err(RollbackError::NoSuchCheckpoint { pid, index: l });
            }
            if !self.stores[i].is_live(l) {
                return Err(RollbackError::CheckpointCollected { pid, index: l });
            }
        }
        let mut report = RollbackReport::default();
        for (i, &l) in line.iter().enumerate() {
            if l == NO_ROLLBACK {
                continue;
            }
            let pid = Pid(i as u32);
            let events_at = self.stores[i].restore(world, l).expect("validated above");
            report.procs_rolled += 1;
            report.events_undone += self.events_handled[i] - events_at;
            // Rolling back to the initial checkpoint undoes the process's
            // `on_start` itself — re-schedule it so the process reboots.
            if events_at == 0 && self.events_handled[i] > 0 {
                world.schedule_start(pid);
            }
            self.events_handled[i] = events_at;
            self.intervals[i] = l;
            // Exit any speculation whose state was undone.
            self.spec_of[i] = 0;
            self.stamp_meta(world, pid);
        }
        // Purge orphan in-flight messages: sent in an undone interval.
        let line_vec = line.to_vec();
        report.msgs_purged = world.purge_events(|kind| match kind {
            EventKind::Deliver { msg } => {
                let sl = line_vec.get(msg.src.idx()).copied().unwrap_or(NO_ROLLBACK);
                sl != NO_ROLLBACK && msg.meta.ckpt_index >= sl
            }
            _ => false,
        });
        // Re-inject logged messages whose receive was undone but whose
        // send survives.
        let now = world.now();
        let mut kept = Vec::with_capacity(self.delivery_log.len());
        for rec in self.delivery_log.drain(..) {
            let dl = line_vec
                .get(rec.msg.dst.idx())
                .copied()
                .unwrap_or(NO_ROLLBACK);
            let sl = line_vec
                .get(rec.msg.src.idx())
                .copied()
                .unwrap_or(NO_ROLLBACK);
            let send_undone = sl != NO_ROLLBACK && rec.msg.meta.ckpt_index >= sl;
            let recv_undone = dl != NO_ROLLBACK && rec.dst_interval >= dl;
            if send_undone {
                // Orphan: forget it entirely. If this log entry held the
                // last reference, the box returns to the world's arena.
                world.reclaim_message(rec.msg);
                continue;
            }
            if recv_undone {
                world.inject_message(rec.msg.clone(), now);
                report.msgs_replayed += 1;
                continue; // will be re-logged on re-delivery
            }
            kept.push(rec);
        }
        self.delivery_log = kept;
        self.deps.retract(&line_vec);
        Ok(report)
    }

    /// The messages retained for post-rollback replay, in delivery
    /// order. Each handle aliases the message the runtime delivered
    /// (and the trace/Scroll recorded) — the aliasing regression tests
    /// pin that property.
    pub fn logged_deliveries(&self) -> impl Iterator<Item = &SharedMessage> {
        self.delivery_log.iter().map(|r| &r.msg)
    }

    /// Per-process checkpoint stores (read access).
    pub fn store(&self, pid: Pid) -> &CheckpointStore {
        &self.stores[pid.idx()]
    }

    /// Number of processes this Time Machine supervises.
    pub fn width(&self) -> usize {
        self.stores.len()
    }

    /// The dependency graph accumulated so far.
    pub fn dependencies(&self) -> &DependencyGraph {
        &self.deps
    }

    /// Current checkpoint interval of `pid`.
    pub fn interval(&self, pid: Pid) -> u64 {
        self.intervals[pid.idx()]
    }

    /// Handler events executed by `pid` (net of rollbacks).
    pub fn events_handled(&self, pid: Pid) -> u64 {
        self.events_handled[pid.idx()]
    }

    /// Total distinct checkpoint bytes held across **all** processes of
    /// this Time Machine: each content-addressed page counted once even
    /// when referenced from several processes' histories.
    pub fn total_checkpoint_bytes(&self) -> usize {
        crate::page::PagedImage::unique_bytes(self.stores.iter().flat_map(CheckpointStore::images))
    }

    /// The shared page store backing this Time Machine's checkpoints.
    pub fn page_store(&self) -> &crate::page::PageStore {
        &self.page_store
    }

    /// Total checkpoints retained across processes.
    pub fn total_checkpoints(&self) -> usize {
        self.stores.iter().map(CheckpointStore::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::{Context, Program, WorldConfig};

    /// Each process counts tokens; P0 circulates `hops` tokens around the
    /// ring. State carries a buffer so checkpoints are non-trivial.
    struct Worker {
        counter: u64,
        buf: Vec<u8>,
    }
    impl Worker {
        fn new() -> Self {
            Self {
                counter: 0,
                buf: vec![0; 2048],
            }
        }
    }
    impl Program for Worker {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                ctx.send(Pid(1), 1, vec![16]);
            }
        }
        fn on_message(&mut self, ctx: &mut Context, msg: &fixd_runtime::Message) {
            self.counter += 1;
            let i = (self.counter as usize * 131) % self.buf.len();
            self.buf[i] = self.buf[i].wrapping_add(1);
            if msg.payload[0] > 0 {
                let next = Pid(((ctx.pid().0 as usize + 1) % ctx.world_size()) as u32);
                ctx.send(next, 1, vec![msg.payload[0] - 1]);
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            let mut b = self.counter.to_le_bytes().to_vec();
            b.extend_from_slice(&self.buf);
            b
        }
        fn restore(&mut self, b: &[u8]) {
            self.counter = u64::from_le_bytes(b[0..8].try_into().unwrap());
            self.buf = b[8..].to_vec();
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Worker {
                counter: self.counter,
                buf: self.buf.clone(),
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn setup(n: usize, policy: CheckpointPolicy) -> (World, TimeMachine) {
        let mut w = World::new(WorldConfig::seeded(11));
        for _ in 0..n {
            w.add_process(Box::new(Worker::new()));
        }
        let tm = TimeMachine::new(
            n,
            TimeMachineConfig {
                policy,
                page_size: 256,
            },
        );
        (w, tm)
    }

    #[test]
    fn cic_checkpoints_before_every_receive() {
        let (mut w, mut tm) = setup(3, CheckpointPolicy::EveryReceive);
        tm.run(&mut w, 10_000);
        // Every delivery to a process bumped its interval by one.
        for i in 0..3u32 {
            let pid = Pid(i);
            assert_eq!(
                tm.interval(pid),
                w.delivered_count(pid),
                "interval = receives for {pid}"
            );
        }
        assert!(!tm.dependencies().is_empty());
    }

    #[test]
    fn delivery_log_aliases_delivered_payloads() {
        // The Time Machine's replay log is the second recorder of every
        // message (the Scroll is the first); it must share the delivered
        // buffer, not copy it.
        let (mut w, mut tm) = setup(3, CheckpointPolicy::EveryReceive);
        let mut checked = 0;
        while let Some(ev) = w.peek() {
            tm.before_step(&mut w, &ev);
            let rec = w.step().unwrap();
            tm.after_step(&mut w, &rec);
            if let EventKind::Deliver { msg } = &rec.event.kind {
                let logged = tm
                    .delivery_log
                    .last()
                    .expect("before_step logged the delivery");
                assert_eq!(logged.msg.id, msg.id);
                assert!(
                    logged.msg.payload.ptr_eq(&msg.payload),
                    "delivery log must alias the delivered payload"
                );
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn rollback_restores_consistent_line() {
        let (mut w, mut tm) = setup(3, CheckpointPolicy::EveryReceive);
        tm.run(&mut w, 12); // partway through the token run
        let fail = Pid(1);
        let target = tm.interval(fail).saturating_sub(1);
        let before_events = tm.events_handled(fail);
        let report = tm.rollback(&mut w, fail, target).unwrap();
        assert!(report.procs_rolled >= 1);
        assert!(report.events_undone >= 1);
        assert!(tm.events_handled(fail) < before_events);
        // World continues to run correctly after rollback.
        tm.run(&mut w, 10_000);
        let total: u64 = (0..3)
            .map(|i| w.program::<Worker>(Pid(i)).unwrap().counter)
            .sum();
        assert_eq!(total, 17, "all 17 deliveries eventually (re)processed");
    }

    #[test]
    fn rollback_replays_lost_messages() {
        let (mut w, mut tm) = setup(3, CheckpointPolicy::EveryReceive);
        tm.run(&mut w, 10_000); // run to quiescence
        let fail = Pid(2);
        let target = tm.interval(fail).saturating_sub(2);
        let report = tm.rollback(&mut w, fail, target).unwrap();
        // Quiescent world: the undone receives must come back from the log.
        assert!(report.msgs_replayed >= 1);
        tm.run(&mut w, 10_000);
        let total: u64 = (0..3)
            .map(|i| w.program::<Worker>(Pid(i)).unwrap().counter)
            .sum();
        assert_eq!(total, 17);
    }

    #[test]
    fn rollback_unknown_checkpoint_errors() {
        let (mut w, mut tm) = setup(2, CheckpointPolicy::EveryReceive);
        tm.run(&mut w, 5);
        let err = tm.rollback(&mut w, Pid(0), 999).unwrap_err();
        assert!(matches!(err, RollbackError::NoSuchCheckpoint { .. }));
    }

    #[test]
    fn periodic_policy_checkpoints_sparsely() {
        let (mut w, mut tm) = setup(3, CheckpointPolicy::Periodic { every: 1_000 });
        tm.run(&mut w, 10_000);
        let cic_like: usize = tm.total_checkpoints();
        // Only initial checkpoints (t spans < 1000 per proc here) or few.
        assert!(
            cic_like <= 6,
            "periodic should take few checkpoints, got {cic_like}"
        );
    }

    #[test]
    fn plan_rollback_matches_applied_line() {
        let (mut w, mut tm) = setup(3, CheckpointPolicy::EveryReceive);
        tm.run(&mut w, 10);
        let fail = Pid(1);
        let target = tm.interval(fail).saturating_sub(1);
        let planned = tm.plan_rollback(fail, target);
        let report = tm.rollback(&mut w, fail, target).unwrap();
        assert_eq!(planned.targets(), report.line.as_slice());
    }

    #[test]
    fn on_demand_policy_only_initial_until_asked() {
        let (mut w, mut tm) = setup(2, CheckpointPolicy::OnDemand);
        tm.run(&mut w, 8);
        assert_eq!(tm.total_checkpoints(), 2, "just the initial pair");
        let idx = tm.checkpoint_now(&mut w, Pid(0));
        assert_eq!(idx, 1);
        assert_eq!(tm.total_checkpoints(), 3);
    }

    #[test]
    fn deterministic_rerun_after_rollback_matches_original() {
        // Roll back to a checkpoint, re-run with no perturbation: final
        // state must equal the original final state (determinism).
        let (mut w1, mut tm1) = setup(3, CheckpointPolicy::EveryReceive);
        tm1.run(&mut w1, 10_000);
        let want = w1.global_snapshot().fingerprint();

        let (mut w2, mut tm2) = setup(3, CheckpointPolicy::EveryReceive);
        tm2.run(&mut w2, 9);
        let fail = Pid(1);
        let t = tm2.interval(fail).saturating_sub(1);
        tm2.rollback(&mut w2, fail, t).unwrap();
        tm2.run(&mut w2, 10_000);
        assert_eq!(w2.global_snapshot().fingerprint(), want);
    }
}
