//! Per-process checkpoint stores with copy-on-write state images.

use fixd_runtime::{DetRng, MsgMeta, Pid, ProcCheckpoint, VTime, VectorClock, World};

use crate::page::{PageStats, PagedImage};

/// A Time-Machine checkpoint: the runtime context of
/// [`fixd_runtime::ProcCheckpoint`] with the state bytes held as a
/// [`PagedImage`] so consecutive checkpoints share unchanged pages.
#[derive(Clone, Debug)]
pub struct TmCheckpoint {
    pub pid: Pid,
    /// Checkpoint index = the interval this checkpoint *starts*.
    pub index: u64,
    pub image: PagedImage,
    pub vc: VectorClock,
    pub lamport: u64,
    pub rng: DetRng,
    pub delivered: u64,
    pub meta: MsgMeta,
    pub taken_at: VTime,
    pub next_msg_id: u64,
    pub next_timer_id: u64,
    /// Handler events this process had executed when the checkpoint was
    /// taken (rollback-depth accounting for F6).
    pub events_at: u64,
    /// Page-sharing stats of this checkpoint relative to its predecessor.
    pub stats: PageStats,
}

impl TmCheckpoint {
    /// Convert back to a runtime checkpoint for [`World::restore_checkpoint`].
    pub fn to_proc_checkpoint(&self) -> ProcCheckpoint {
        ProcCheckpoint {
            pid: self.pid,
            state: self.image.to_bytes(),
            vc: self.vc.clone(),
            lamport: self.lamport,
            rng: self.rng.clone(),
            delivered: self.delivered,
            meta: self.meta,
            taken_at: self.taken_at,
            next_msg_id: self.next_msg_id,
            next_timer_id: self.next_timer_id,
        }
    }
}

/// The checkpoint history of one process.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    pid: Pid,
    checkpoints: Vec<TmCheckpoint>,
    page_size: usize,
}

impl CheckpointStore {
    /// An empty store for `pid`.
    pub fn new(pid: Pid, page_size: usize) -> Self {
        Self {
            pid,
            checkpoints: Vec::new(),
            page_size,
        }
    }

    /// Take a checkpoint of `pid`'s current state in `world`, sharing
    /// pages with the previous checkpoint. Returns the new index.
    pub fn take(&mut self, world: &World, events_at: u64) -> u64 {
        let pc = world.checkpoint_process(self.pid);
        let (image, stats) = match self.checkpoints.last() {
            Some(prev) => prev.image.update_from(&pc.state),
            None => (
                PagedImage::from_bytes_with(&pc.state, self.page_size),
                PageStats {
                    reused: 0,
                    fresh: pc.state.len().div_ceil(self.page_size),
                },
            ),
        };
        let index = self.checkpoints.len() as u64;
        self.checkpoints.push(TmCheckpoint {
            pid: self.pid,
            index,
            image,
            vc: pc.vc,
            lamport: pc.lamport,
            rng: pc.rng,
            delivered: pc.delivered,
            meta: pc.meta,
            taken_at: pc.taken_at,
            next_msg_id: pc.next_msg_id,
            next_timer_id: pc.next_timer_id,
            events_at,
            stats,
        });
        index
    }

    /// The checkpoint at `index` (indices are dense from 0).
    pub fn get(&self, index: u64) -> Option<&TmCheckpoint> {
        self.checkpoints.get(index as usize)
    }

    /// Latest checkpoint, if any.
    pub fn latest(&self) -> Option<&TmCheckpoint> {
        self.checkpoints.last()
    }

    /// Latest index, if any.
    pub fn latest_index(&self) -> Option<u64> {
        self.checkpoints.last().map(|c| c.index)
    }

    /// Number of checkpoints retained.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// True when no checkpoints exist.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Restore the process in `world` to checkpoint `index`. Later
    /// checkpoints are discarded (they describe an undone future).
    /// Returns the restored checkpoint's `events_at`.
    pub fn restore(&mut self, world: &mut World, index: u64) -> Option<u64> {
        let ck = self.checkpoints.get(index as usize)?;
        world.restore_checkpoint(&ck.to_proc_checkpoint());
        let events_at = ck.events_at;
        self.checkpoints.truncate(index as usize + 1);
        Some(events_at)
    }

    /// Drop checkpoints with `index < keep_from` (garbage collection).
    /// Indices of retained checkpoints are preserved by keeping a sparse
    /// offset — implemented simply by replacing dropped entries' storage.
    /// Returns the number of checkpoints dropped.
    pub fn gc_before(&mut self, keep_from: u64) -> usize {
        // Keep indices stable: we can't renumber (message metadata
        // references indices), so we drop page data by replacing the image
        // with an empty one and marking the slot unusable via a tombstone
        // approach: cheapest correct approach is to keep the entries but
        // shrink their images. We instead retain entries >= keep_from and
        // remember the offset.
        let drop_n = (keep_from as usize).min(self.checkpoints.len());
        if drop_n == 0 {
            return 0;
        }
        // Replace dropped checkpoints' images with empty ones; restore of
        // a GC'd index returns None via the emptied marker.
        let mut dropped = 0;
        for ck in &mut self.checkpoints[..drop_n] {
            if !ck.image.is_empty() || ck.next_msg_id != u64::MAX {
                ck.image = PagedImage::from_bytes(&[]);
                ck.next_msg_id = u64::MAX; // tombstone marker
                dropped += 1;
            }
        }
        dropped
    }

    /// Is checkpoint `index` still restorable (not GC'd)?
    pub fn is_live(&self, index: u64) -> bool {
        self.get(index).is_some_and(|c| c.next_msg_id != u64::MAX)
    }

    /// Distinct bytes held by the whole history (COW-aware).
    pub fn unique_bytes(&self) -> usize {
        PagedImage::unique_bytes(self.checkpoints.iter().map(|c| &c.image))
    }

    /// Sum of page-sharing stats across the history.
    pub fn total_stats(&self) -> PageStats {
        let mut s = PageStats::default();
        for c in &self.checkpoints {
            s.reused += c.stats.reused;
            s.fresh += c.stats.fresh;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::{Context, Message, Program, World, WorldConfig};

    /// State: a sizable buffer where each message mutates one cell —
    /// ideal for observing COW sharing.
    struct BigState {
        buf: Vec<u8>,
        writes: u64,
    }
    impl Program for BigState {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                for i in 0..5u8 {
                    ctx.send(Pid(1), 1, vec![i]);
                }
            }
        }
        fn on_message(&mut self, _ctx: &mut Context, msg: &Message) {
            let i = usize::from(msg.payload[0]) * 97 % self.buf.len();
            self.buf[i] = self.buf[i].wrapping_add(1);
            self.writes += 1;
        }
        fn snapshot(&self) -> Vec<u8> {
            let mut b = self.writes.to_le_bytes().to_vec();
            b.extend_from_slice(&self.buf);
            b
        }
        fn restore(&mut self, b: &[u8]) {
            self.writes = u64::from_le_bytes(b[0..8].try_into().unwrap());
            self.buf = b[8..].to_vec();
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(BigState {
                buf: self.buf.clone(),
                writes: self.writes,
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn world() -> World {
        let mut w = World::new(WorldConfig::seeded(5));
        w.add_process(Box::new(BigState {
            buf: vec![0; 4096],
            writes: 0,
        }));
        w.add_process(Box::new(BigState {
            buf: vec![0; 4096],
            writes: 0,
        }));
        w
    }

    #[test]
    fn incremental_checkpoints_share_pages() {
        let mut w = world();
        let mut store = CheckpointStore::new(Pid(1), 256);
        store.take(&w, 0);
        w.run_to_quiescence(1_000);
        store.take(&w, 5);
        let last = store.latest().unwrap();
        assert!(last.stats.reused > 0, "most pages unchanged");
        assert!(last.stats.fresh >= 1, "mutated pages copied");
        assert!(last.stats.reused > last.stats.fresh);
        // COW history is much smaller than eager copies.
        let eager = 2 * (4096 + 8);
        assert!(store.unique_bytes() < eager);
    }

    #[test]
    fn restore_returns_exact_state() {
        let mut w = world();
        let mut store = CheckpointStore::new(Pid(1), 256);
        w.run_steps(3);
        let fp_then = w.checkpoint_process(Pid(1)).fingerprint();
        let idx = store.take(&w, 3);
        w.run_to_quiescence(1_000);
        assert_ne!(w.checkpoint_process(Pid(1)).fingerprint(), fp_then);
        let events_at = store.restore(&mut w, idx).unwrap();
        assert_eq!(events_at, 3);
        assert_eq!(w.checkpoint_process(Pid(1)).fingerprint(), fp_then);
    }

    #[test]
    fn restore_truncates_future_checkpoints() {
        let mut w = world();
        let mut store = CheckpointStore::new(Pid(1), 256);
        store.take(&w, 0);
        w.run_steps(4);
        store.take(&w, 4);
        w.run_to_quiescence(1_000);
        store.take(&w, 9);
        assert_eq!(store.len(), 3);
        store.restore(&mut w, 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.latest_index(), Some(1));
    }

    #[test]
    fn gc_tombstones_old_checkpoints() {
        let mut w = world();
        let mut store = CheckpointStore::new(Pid(1), 256);
        for i in 0..4 {
            store.take(&w, i);
            w.run_steps(2);
        }
        let dropped = store.gc_before(2);
        assert_eq!(dropped, 2);
        assert!(!store.is_live(0));
        assert!(!store.is_live(1));
        assert!(store.is_live(2));
        assert!(store.is_live(3));
        // Indices unchanged for live checkpoints.
        assert_eq!(store.get(3).unwrap().index, 3);
        // Second gc is a no-op.
        assert_eq!(store.gc_before(2), 0);
    }

    #[test]
    fn first_checkpoint_all_fresh() {
        let w = world();
        let mut store = CheckpointStore::new(Pid(0), 256);
        store.take(&w, 0);
        let c = store.latest().unwrap();
        assert_eq!(c.stats.reused, 0);
        assert!(c.stats.fresh > 0);
    }
}
