//! Per-process checkpoint stores over the shared content-addressed
//! page store.

use fixd_runtime::{
    DetRng, MsgMeta, Pid, ProcCheckpoint, SnapshotImage, VTime, VectorClock, World,
};

use crate::page::{PageStats, PageStore, PagedImage};

/// A Time-Machine checkpoint: the runtime context of
/// [`fixd_runtime::ProcCheckpoint`] with the state bytes held as a
/// [`PagedImage`] whose pages are interned in the Time Machine's shared
/// [`PageStore`] — so equal pages dedup across checkpoint generations,
/// across processes, and across speculation branches.
#[derive(Clone, Debug)]
pub struct TmCheckpoint {
    pub pid: Pid,
    /// Checkpoint index = the interval this checkpoint *starts*.
    pub index: u64,
    pub image: PagedImage,
    pub vc: VectorClock,
    pub lamport: u64,
    pub rng: DetRng,
    pub delivered: u64,
    pub meta: MsgMeta,
    pub taken_at: VTime,
    pub next_msg_id: u64,
    pub next_timer_id: u64,
    /// Handler events this process had executed when the checkpoint was
    /// taken (rollback-depth accounting for F6).
    pub events_at: u64,
    /// Page-sharing stats of this checkpoint relative to its predecessor.
    pub stats: PageStats,
}

impl TmCheckpoint {
    /// Convert back to a runtime checkpoint for [`World::restore_checkpoint`].
    /// The state travels as a paged snapshot (refcount bumps, no copy);
    /// the restore path materializes bytes exactly once.
    pub fn to_proc_checkpoint(&self) -> ProcCheckpoint {
        ProcCheckpoint {
            pid: self.pid,
            state: SnapshotImage::Paged(self.image.clone()),
            vc: self.vc.clone(),
            lamport: self.lamport,
            rng: self.rng.clone(),
            delivered: self.delivered,
            meta: self.meta,
            taken_at: self.taken_at,
            next_msg_id: self.next_msg_id,
            next_timer_id: self.next_timer_id,
        }
    }
}

/// The checkpoint history of one process. All page data lives in the
/// [`PageStore`] handed in at construction; `CheckpointStore`s of
/// different processes (and of different worlds, when the caller shares
/// one store) deduplicate equal pages against each other.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    pid: Pid,
    checkpoints: Vec<TmCheckpoint>,
    page_size: usize,
    pages: PageStore,
}

impl CheckpointStore {
    /// An empty store for `pid` backed by a private page store. Prefer
    /// [`CheckpointStore::with_store`] so processes share pages.
    pub fn new(pid: Pid, page_size: usize) -> Self {
        Self::with_store(pid, page_size, PageStore::new())
    }

    /// An empty store for `pid` interning pages into `pages`.
    pub fn with_store(pid: Pid, page_size: usize, pages: PageStore) -> Self {
        Self {
            pid,
            checkpoints: Vec::new(),
            page_size,
            pages,
        }
    }

    /// The backing page store handle.
    pub fn page_store(&self) -> &PageStore {
        &self.pages
    }

    /// Take a checkpoint of `pid`'s current state in `world`, interning
    /// pages into the shared store (any page already present — from this
    /// history, another process, or another branch — is reused without a
    /// copy). Returns the new index.
    pub fn take(&mut self, world: &World, events_at: u64) -> u64 {
        let pc = world.checkpoint_process_in(self.pid, &self.pages, self.page_size);
        let image = match pc.state {
            SnapshotImage::Paged(img) => img,
            // Unreachable with checkpoint_process_in, but harmless: page
            // inline bytes now.
            SnapshotImage::Inline(bytes) => {
                PagedImage::from_bytes_with(&self.pages, &bytes, self.page_size)
            }
        };
        let stats = image.build_stats();
        let index = self.checkpoints.len() as u64;
        self.checkpoints.push(TmCheckpoint {
            pid: self.pid,
            index,
            image,
            vc: pc.vc,
            lamport: pc.lamport,
            rng: pc.rng,
            delivered: pc.delivered,
            meta: pc.meta,
            taken_at: pc.taken_at,
            next_msg_id: pc.next_msg_id,
            next_timer_id: pc.next_timer_id,
            events_at,
            stats,
        });
        index
    }

    /// The checkpoint at `index` (indices are dense from 0).
    pub fn get(&self, index: u64) -> Option<&TmCheckpoint> {
        self.checkpoints.get(index as usize)
    }

    /// Latest checkpoint, if any.
    pub fn latest(&self) -> Option<&TmCheckpoint> {
        self.checkpoints.last()
    }

    /// Latest index, if any.
    pub fn latest_index(&self) -> Option<u64> {
        self.checkpoints.last().map(|c| c.index)
    }

    /// Number of checkpoints retained.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// True when no checkpoints exist.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Restore the process in `world` to checkpoint `index`. Later
    /// checkpoints are discarded (they describe an undone future).
    /// Returns the restored checkpoint's `events_at`.
    pub fn restore(&mut self, world: &mut World, index: u64) -> Option<u64> {
        let ck = self.checkpoints.get(index as usize)?;
        world.restore_checkpoint(&ck.to_proc_checkpoint());
        let events_at = ck.events_at;
        self.checkpoints.truncate(index as usize + 1);
        Some(events_at)
    }

    /// Drop checkpoints with `index < keep_from` (garbage collection).
    /// Indices of retained checkpoints are preserved by keeping a sparse
    /// offset — implemented simply by replacing dropped entries' storage.
    /// Returns the number of checkpoints dropped.
    pub fn gc_before(&mut self, keep_from: u64) -> usize {
        // Keep indices stable: we can't renumber (message metadata
        // references indices), so we drop page data by replacing the image
        // with an empty one and marking the slot unusable via a tombstone
        // approach: cheapest correct approach is to keep the entries but
        // shrink their images. We instead retain entries >= keep_from and
        // remember the offset.
        let drop_n = (keep_from as usize).min(self.checkpoints.len());
        if drop_n == 0 {
            return 0;
        }
        // Replace dropped checkpoints' images with empty ones; restore of
        // a GC'd index returns None via the emptied marker.
        let mut dropped = 0;
        for ck in &mut self.checkpoints[..drop_n] {
            if !ck.image.is_empty() || ck.next_msg_id != u64::MAX {
                // Dropping the image releases its page refcounts; pages
                // no longer referenced anywhere are freed by the store
                // (and counted in `StoreStats::freed_bytes`).
                ck.image = PagedImage::empty();
                ck.next_msg_id = u64::MAX; // tombstone marker
                dropped += 1;
            }
        }
        dropped
    }

    /// Is checkpoint `index` still restorable (not GC'd)?
    pub fn is_live(&self, index: u64) -> bool {
        self.get(index).is_some_and(|c| c.next_msg_id != u64::MAX)
    }

    /// Distinct bytes held by the whole history (content-dedup-aware,
    /// within this process only — the per-process baseline figure).
    pub fn unique_bytes(&self) -> usize {
        PagedImage::unique_bytes(self.checkpoints.iter().map(|c| &c.image))
    }

    /// The images of the retained checkpoints (for cross-store dedup
    /// accounting).
    pub fn images(&self) -> impl Iterator<Item = &PagedImage> {
        self.checkpoints.iter().map(|c| &c.image)
    }

    /// Sum of page-sharing stats across the history.
    pub fn total_stats(&self) -> PageStats {
        let mut s = PageStats::default();
        for c in &self.checkpoints {
            s.reused += c.stats.reused;
            s.fresh += c.stats.fresh;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::{Context, Message, Program, World, WorldConfig};

    /// State: a sizable buffer where each message mutates one cell —
    /// ideal for observing COW sharing.
    struct BigState {
        buf: Vec<u8>,
        writes: u64,
    }
    impl Program for BigState {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                for i in 0..5u8 {
                    ctx.send(Pid(1), 1, vec![i]);
                }
            }
        }
        fn on_message(&mut self, _ctx: &mut Context, msg: &Message) {
            let i = usize::from(msg.payload[0]) * 97 % self.buf.len();
            self.buf[i] = self.buf[i].wrapping_add(1);
            self.writes += 1;
        }
        fn snapshot(&self) -> Vec<u8> {
            let mut b = self.writes.to_le_bytes().to_vec();
            b.extend_from_slice(&self.buf);
            b
        }
        fn restore(&mut self, b: &[u8]) {
            self.writes = u64::from_le_bytes(b[0..8].try_into().unwrap());
            self.buf = b[8..].to_vec();
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(BigState {
                buf: self.buf.clone(),
                writes: self.writes,
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn world() -> World {
        let mut w = World::new(WorldConfig::seeded(5));
        w.add_process(Box::new(BigState {
            buf: vec![0; 4096],
            writes: 0,
        }));
        w.add_process(Box::new(BigState {
            buf: vec![0; 4096],
            writes: 0,
        }));
        w
    }

    #[test]
    fn incremental_checkpoints_share_pages() {
        let mut w = world();
        let mut store = CheckpointStore::new(Pid(1), 256);
        store.take(&w, 0);
        w.run_to_quiescence(1_000);
        store.take(&w, 5);
        let last = store.latest().unwrap();
        assert!(last.stats.reused > 0, "most pages unchanged");
        assert!(last.stats.fresh >= 1, "mutated pages copied");
        assert!(last.stats.reused > last.stats.fresh);
        // COW history is much smaller than eager copies.
        let eager = 2 * (4096 + 8);
        assert!(store.unique_bytes() < eager);
    }

    #[test]
    fn restore_returns_exact_state() {
        let mut w = world();
        let mut store = CheckpointStore::new(Pid(1), 256);
        w.run_steps(3);
        let fp_then = w.checkpoint_process(Pid(1)).fingerprint();
        let idx = store.take(&w, 3);
        w.run_to_quiescence(1_000);
        assert_ne!(w.checkpoint_process(Pid(1)).fingerprint(), fp_then);
        let events_at = store.restore(&mut w, idx).unwrap();
        assert_eq!(events_at, 3);
        assert_eq!(w.checkpoint_process(Pid(1)).fingerprint(), fp_then);
    }

    #[test]
    fn restore_truncates_future_checkpoints() {
        let mut w = world();
        let mut store = CheckpointStore::new(Pid(1), 256);
        store.take(&w, 0);
        w.run_steps(4);
        store.take(&w, 4);
        w.run_to_quiescence(1_000);
        store.take(&w, 9);
        assert_eq!(store.len(), 3);
        store.restore(&mut w, 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.latest_index(), Some(1));
    }

    #[test]
    fn gc_tombstones_old_checkpoints() {
        let mut w = world();
        let mut store = CheckpointStore::new(Pid(1), 256);
        for i in 0..4 {
            store.take(&w, i);
            w.run_steps(2);
        }
        let dropped = store.gc_before(2);
        assert_eq!(dropped, 2);
        assert!(!store.is_live(0));
        assert!(!store.is_live(1));
        assert!(store.is_live(2));
        assert!(store.is_live(3));
        // Indices unchanged for live checkpoints.
        assert_eq!(store.get(3).unwrap().index, 3);
        // Second gc is a no-op.
        assert_eq!(store.gc_before(2), 0);
    }

    #[test]
    fn first_checkpoint_interns_constant_pages_once() {
        // The 4 KiB zero buffer is 16 identical pages: content
        // addressing stores one and reuses it 15 times even on the very
        // first checkpoint.
        let w = world();
        let mut store = CheckpointStore::new(Pid(0), 256);
        store.take(&w, 0);
        let c = store.latest().unwrap();
        assert!(c.stats.fresh >= 1, "first distinct page is fresh");
        assert!(c.stats.reused >= 15, "constant region collapses");
        assert!(store.unique_bytes() < 4096 + 8);
    }

    #[test]
    fn two_processes_share_one_store() {
        // Identical initial states across pids: the shared store holds
        // one set of pages, the per-process sum counts them twice.
        let w = world();
        let pages = PageStore::new();
        let mut s0 = CheckpointStore::with_store(Pid(0), 256, pages.clone());
        let mut s1 = CheckpointStore::with_store(Pid(1), 256, pages.clone());
        s0.take(&w, 0);
        s1.take(&w, 0);
        let per_process = s0.unique_bytes() + s1.unique_bytes();
        assert_eq!(pages.unique_bytes() * 2, per_process);
        assert!(pages.unique_bytes() < per_process);
    }
}
