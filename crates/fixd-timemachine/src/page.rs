//! Copy-on-write paged state images.
//!
//! A process state snapshot (an opaque byte image) is chunked into
//! fixed-size pages held behind `Arc`. Building checkpoint *k+1* from
//! checkpoint *k* reuses the `Arc` of every page whose content is
//! unchanged, so the marginal cost of a checkpoint is proportional to the
//! *mutated* portion of the state — the user-level analogue of the
//! kernel-level copy-on-write "shadow process" mechanism of Flashback and
//! of the speculation checkpoints of \[6\]. Experiment **F2** measures
//! this against eager full copies.

use std::sync::Arc;

/// Default page size in bytes. Small enough that localized mutations
/// dirty few pages, large enough that page overhead stays negligible.
pub const DEFAULT_PAGE_SIZE: usize = 256;

/// Sharing statistics from building one image relative to a base.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageStats {
    /// Pages reused from the base image (no copy).
    pub reused: usize,
    /// Pages freshly allocated (content changed or grew).
    pub fresh: usize,
}

impl PageStats {
    /// Fraction of pages that were shared (0 when empty).
    pub fn share_ratio(&self) -> f64 {
        let total = self.reused + self.fresh;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }
}

/// An immutable, paged byte image with structural sharing.
#[derive(Clone, Debug)]
pub struct PagedImage {
    pages: Vec<Arc<Vec<u8>>>,
    len: usize,
    page_size: usize,
}

impl PagedImage {
    /// Page a byte image with the default page size.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Self::from_bytes_with(bytes, DEFAULT_PAGE_SIZE)
    }

    /// Page a byte image with an explicit page size.
    pub fn from_bytes_with(bytes: &[u8], page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        let pages = bytes
            .chunks(page_size)
            .map(|c| Arc::new(c.to_vec()))
            .collect();
        Self {
            pages,
            len: bytes.len(),
            page_size,
        }
    }

    /// Build a new image from `bytes`, sharing unchanged pages with
    /// `self`. Returns the image and sharing statistics.
    pub fn update_from(&self, bytes: &[u8]) -> (PagedImage, PageStats) {
        let mut stats = PageStats::default();
        let mut pages = Vec::with_capacity(bytes.len().div_ceil(self.page_size));
        for (i, chunk) in bytes.chunks(self.page_size).enumerate() {
            match self.pages.get(i) {
                Some(p) if p.as_slice() == chunk => {
                    pages.push(Arc::clone(p));
                    stats.reused += 1;
                }
                _ => {
                    pages.push(Arc::new(chunk.to_vec()));
                    stats.fresh += 1;
                }
            }
        }
        (
            PagedImage {
                pages,
                len: bytes.len(),
                page_size: self.page_size,
            },
            stats,
        )
    }

    /// Reassemble the full byte image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for p in &self.pages {
            out.extend_from_slice(p);
        }
        debug_assert_eq!(out.len(), self.len);
        out
    }

    /// Image length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length image.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Configured page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Raw pointers of the pages (identity-based memory accounting).
    pub fn page_ptrs(&self) -> impl Iterator<Item = usize> + '_ {
        self.pages.iter().map(|p| Arc::as_ptr(p) as usize)
    }

    /// Bytes held by pages, counting each distinct page once across all
    /// the given images — the real memory footprint of a checkpoint
    /// history under COW sharing.
    pub fn unique_bytes<'a>(images: impl Iterator<Item = &'a PagedImage>) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for img in images {
            for p in &img.pages {
                if seen.insert(Arc::as_ptr(p) as usize) {
                    total += p.len();
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_identity() {
        for len in [0usize, 1, 255, 256, 257, 1000, 4096] {
            let bytes: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let img = PagedImage::from_bytes(&bytes);
            assert_eq!(img.to_bytes(), bytes);
            assert_eq!(img.len(), len);
        }
    }

    #[test]
    fn unchanged_update_shares_everything() {
        let bytes = vec![7u8; 1024];
        let a = PagedImage::from_bytes(&bytes);
        let (b, stats) = a.update_from(&bytes);
        assert_eq!(stats.fresh, 0);
        assert_eq!(stats.reused, 4);
        assert_eq!(stats.share_ratio(), 1.0);
        assert_eq!(b.to_bytes(), bytes);
    }

    #[test]
    fn localized_mutation_dirties_one_page() {
        let bytes = vec![0u8; 1024];
        let a = PagedImage::from_bytes(&bytes);
        let mut mutated = bytes.clone();
        mutated[300] = 1; // inside page 1
        let (b, stats) = a.update_from(&mutated);
        assert_eq!(stats.fresh, 1);
        assert_eq!(stats.reused, 3);
        assert_eq!(b.to_bytes(), mutated);
    }

    #[test]
    fn growth_allocates_tail_pages() {
        let a = PagedImage::from_bytes(&vec![1u8; 256]);
        let (b, stats) = a.update_from(&vec![1u8; 512]);
        assert_eq!(stats.reused, 1);
        assert_eq!(stats.fresh, 1);
        assert_eq!(b.len(), 512);
    }

    #[test]
    fn shrink_drops_pages() {
        let a = PagedImage::from_bytes(&vec![1u8; 512]);
        let (b, stats) = a.update_from(&[1u8; 100]);
        assert_eq!(b.page_count(), 1);
        // The first chunk is now 100 bytes, not equal to the old 256-byte
        // page, so it is fresh.
        assert_eq!(stats.fresh, 1);
        assert_eq!(b.to_bytes(), vec![1u8; 100]);
    }

    #[test]
    fn unique_bytes_counts_shared_pages_once() {
        let bytes = vec![0u8; 1024];
        let a = PagedImage::from_bytes(&bytes);
        let mut mutated = bytes.clone();
        mutated[0] = 9;
        let (b, _) = a.update_from(&mutated);
        // a: 4 pages, b shares 3 of them + 1 fresh => 5 distinct pages.
        let total = PagedImage::unique_bytes([&a, &b].into_iter());
        assert_eq!(total, 5 * 256);
        // Eager copies would be 8 pages.
        let eager = PagedImage::from_bytes(&mutated);
        let total_eager = PagedImage::unique_bytes([&a, &eager].into_iter());
        assert_eq!(total_eager, 8 * 256);
    }

    #[test]
    fn custom_page_size() {
        let img = PagedImage::from_bytes_with(&[1, 2, 3, 4, 5], 2);
        assert_eq!(img.page_count(), 3);
        assert_eq!(img.page_size(), 2);
        assert_eq!(img.to_bytes(), vec![1, 2, 3, 4, 5]);
    }
}
