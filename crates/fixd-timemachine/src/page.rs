//! Content-addressed paged state images.
//!
//! A process state snapshot (an opaque byte image) is chunked into
//! fixed-size pages interned in a shared [`PageStore`] keyed by a 64-bit
//! content hash. Building checkpoint *k+1* from checkpoint *k* reuses
//! every page whose content is unchanged — the user-level analogue of
//! the kernel-level copy-on-write "shadow process" mechanism of
//! Flashback and of the speculation checkpoints of \[6\], which
//! experiment **F2** measures against eager full copies. Content
//! addressing strengthens that beyond classic COW: identical pages
//! deduplicate **across processes, across speculation branches, and
//! across checkpoint generations**, not just between consecutive
//! snapshots of one pid.
//!
//! The implementation lives in the bottom-layer `fixd-store` crate (the
//! same store backs `Program::snapshot` images and spilled scroll
//! segments); this module re-exports it under the Time Machine's
//! historical names and keeps the Time-Machine-facing laws tested here.

pub use fixd_store::{PageHandle, PageStats, PageStore, PagedImage, StoreStats, DEFAULT_PAGE_SIZE};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_identity() {
        let store = PageStore::new();
        for len in [0usize, 1, 255, 256, 257, 1000, 4096] {
            let bytes: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let img = PagedImage::from_bytes(&store, &bytes);
            assert_eq!(img.to_bytes(), bytes);
            assert_eq!(img.len(), len);
        }
    }

    #[test]
    fn unchanged_rebuild_shares_everything() {
        let store = PageStore::new();
        let bytes: Vec<u8> = (0..256u32).flat_map(|i| i.to_le_bytes()).collect();
        let a = PagedImage::from_bytes(&store, &bytes);
        let b = PagedImage::from_bytes(&store, &bytes);
        assert_eq!(b.build_stats().fresh, 0);
        assert_eq!(b.build_stats().reused, 4);
        assert_eq!(b.build_stats().share_ratio(), 1.0);
        assert_eq!(b.to_bytes(), bytes);
        assert_eq!(
            PagedImage::unique_bytes([&a, &b].into_iter()),
            bytes.len(),
            "rebuilding an identical image allocates nothing"
        );
    }

    #[test]
    fn localized_mutation_dirties_one_page() {
        let store = PageStore::new();
        let bytes: Vec<u8> = (0..256u32).flat_map(|i| i.to_le_bytes()).collect();
        let a = PagedImage::from_bytes(&store, &bytes);
        let mut mutated = bytes.clone();
        mutated[300] ^= 1; // inside page 1
        let b = PagedImage::from_bytes(&store, &mutated);
        assert_eq!(b.build_stats().fresh, 1);
        assert_eq!(b.build_stats().reused, 3);
        assert_eq!(b.to_bytes(), mutated);
        let _ = a;
    }

    #[test]
    fn unique_bytes_counts_shared_pages_once() {
        let store = PageStore::new();
        let bytes: Vec<u8> = (0..256u32).flat_map(|i| i.to_le_bytes()).collect();
        let a = PagedImage::from_bytes(&store, &bytes);
        let mut mutated = bytes.clone();
        mutated[0] ^= 9;
        let b = PagedImage::from_bytes(&store, &mutated);
        // a: 4 pages, b shares 3 of them + 1 fresh => 5 distinct pages.
        let total = PagedImage::unique_bytes([&a, &b].into_iter());
        assert_eq!(total, 5 * 256);
        assert_eq!(store.unique_bytes(), 5 * 256);
    }

    #[test]
    fn cross_process_and_cross_branch_pages_dedup() {
        // The tentpole property: a second process with equal state, and a
        // cloned (speculation-branch) image, cost no new page bytes.
        let store = PageStore::new();
        let state: Vec<u8> = (0..512u32).flat_map(|i| i.to_le_bytes()).collect();
        let p0 = PagedImage::from_bytes(&store, &state);
        let p1 = PagedImage::from_bytes(&store, &state); // other process
        let branch = p0.clone(); // speculation branch
        assert_eq!(store.unique_bytes(), state.len());
        assert_eq!(
            PagedImage::unique_bytes([&p0, &p1, &branch].into_iter()),
            state.len()
        );
    }

    #[test]
    fn custom_page_size() {
        let store = PageStore::new();
        let img = PagedImage::from_bytes_with(&store, &[1, 2, 3, 4, 5], 2);
        assert_eq!(img.page_count(), 3);
        assert_eq!(img.page_size(), 2);
        assert_eq!(img.to_bytes(), vec![1, 2, 3, 4, 5]);
    }
}
