//! Coordinated global checkpoints (stop-the-world).
//!
//! Two roles in the reproduction:
//!
//! 1. the **eager full-copy baseline** that speculation COW checkpoints
//!    are measured against (experiment F2; the paper claims speculative
//!    checkpoints "introduce less overhead than certain types of
//!    traditional checkpointing");
//! 2. the substrate for FixD's fault-response protocol (Fig. 4), where
//!    the detecting process "collects these responses to piece together a
//!    consistent global checkpoint of the system".
//!
//! In a real deployment this is a Chandy–Lamport-style marker protocol;
//! in the deterministic simulator, the world is quiescent between events,
//! so a cut taken between events with the channel state (in-flight
//! messages and pending timers) captured explicitly is exactly the
//! consistent snapshot the marker protocol would deliver.

use fixd_runtime::{EventKind, Pid, ProcCheckpoint, SharedMessage, TimerId, VTime, World};

/// A consistent global checkpoint: every process state plus channel
/// contents (in-flight messages) plus pending timers.
///
/// Captured in-flight messages **alias** the queued messages themselves
/// (shared `SharedMessage` handles) rather than copying them, so
/// checkpointing a world with heavy mail in flight costs reference-count
/// bumps, not memcpys — see `snapshot_aliases_inflight_payloads`.
#[derive(Clone, Debug)]
pub struct GlobalCheckpoint {
    pub at: VTime,
    pub ckpts: Vec<ProcCheckpoint>,
    pub inflight: Vec<SharedMessage>,
    pub timers: Vec<(Pid, TimerId, VTime)>,
}

impl GlobalCheckpoint {
    /// Total state bytes captured (eager copy cost metric).
    pub fn state_bytes(&self) -> usize {
        self.ckpts.iter().map(|c| c.state.len()).sum::<usize>()
            + self.inflight.iter().map(|m| m.payload.len()).sum::<usize>()
    }

    /// Order-dependent fingerprint of the captured states.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0x6107_u64;
        for c in &self.ckpts {
            h = fixd_runtime::wire::fnv_mix(h, c.fingerprint());
        }
        for m in &self.inflight {
            h = fixd_runtime::wire::fnv_mix(h, m.content_fingerprint());
        }
        h
    }
}

/// Capture a coordinated snapshot of the whole world, state bytes held
/// inline (the eager full-copy baseline of experiment F2).
pub fn coordinated_snapshot(world: &World) -> GlobalCheckpoint {
    GlobalCheckpoint {
        at: world.now(),
        ckpts: (0..world.num_procs())
            .map(|i| world.checkpoint_process(Pid(i as u32)))
            .collect(),
        inflight: world.inflight_messages(),
        timers: world.pending_timers(),
    }
}

/// Capture a coordinated snapshot whose process states page into the
/// shared content-addressed `store`: a global checkpoint of a world
/// whose state mostly matches already-interned pages (previous global
/// checkpoints, the Time Machine's incremental history, replicas with
/// equal state) costs refcounts, not copies.
pub fn coordinated_snapshot_in(
    world: &World,
    store: &fixd_runtime::PageStore,
    page_size: usize,
) -> GlobalCheckpoint {
    GlobalCheckpoint {
        at: world.now(),
        ckpts: (0..world.num_procs())
            .map(|i| world.checkpoint_process_in(Pid(i as u32), store, page_size))
            .collect(),
        inflight: world.inflight_messages(),
        timers: world.pending_timers(),
    }
}

/// Restore the world to a previously captured global checkpoint: every
/// process state is restored, the network is cleared and re-seeded with
/// the captured in-flight messages, pending timers are re-armed.
pub fn restore_global(world: &mut World, g: &GlobalCheckpoint) {
    for c in &g.ckpts {
        world.restore_checkpoint(c);
    }
    world.purge_events(|k| matches!(k, EventKind::Deliver { .. } | EventKind::TimerFire { .. }));
    let now = world.now();
    for m in &g.inflight {
        world.inject_message(m.clone(), now);
    }
    for (pid, timer, fire_at) in &g.timers {
        world.inject_timer(*pid, *timer, (*fire_at).max(now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::{Context, PageStore, Program, TimerId as RtTimerId, World, WorldConfig};

    struct Beat {
        beats: u64,
        acks: u64,
    }
    impl Program for Beat {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                ctx.set_timer(5);
            }
        }
        fn on_timer(&mut self, ctx: &mut Context, _t: RtTimerId) {
            self.beats += 1;
            ctx.send(Pid(1), 1, vec![self.beats as u8]);
            if self.beats < 6 {
                ctx.set_timer(5);
            }
        }
        fn on_message(&mut self, ctx: &mut Context, msg: &fixd_runtime::Message) {
            if ctx.pid() == Pid(1) {
                ctx.send(Pid(0), 2, msg.payload.clone());
            } else {
                self.acks += 1;
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            let mut b = self.beats.to_le_bytes().to_vec();
            b.extend_from_slice(&self.acks.to_le_bytes());
            b
        }
        fn restore(&mut self, b: &[u8]) {
            self.beats = u64::from_le_bytes(b[0..8].try_into().unwrap());
            self.acks = u64::from_le_bytes(b[8..16].try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Beat {
                beats: self.beats,
                acks: self.acks,
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn beat_world() -> World {
        let mut w = World::new(WorldConfig::seeded(9));
        w.add_process(Box::new(Beat { beats: 0, acks: 0 }));
        w.add_process(Box::new(Beat { beats: 0, acks: 0 }));
        w
    }

    #[test]
    fn snapshot_captures_channels_and_timers() {
        let mut w = beat_world();
        w.run_steps(6); // mid-protocol: mail and timers in flight
        let g = coordinated_snapshot(&w);
        assert_eq!(g.ckpts.len(), 2);
        assert!(
            !g.inflight.is_empty() || !g.timers.is_empty(),
            "mid-run snapshot must capture channel/timer state"
        );
        assert!(g.state_bytes() >= 32);
    }

    #[test]
    fn snapshot_aliases_inflight_payloads() {
        // Checkpointing in-flight mail must share the queued messages
        // themselves (clocks, metadata, and payload in one shared
        // allocation), not copy them.
        let mut w = beat_world();
        for _ in 0..40 {
            w.step();
            let g = coordinated_snapshot(&w);
            if g.inflight.is_empty() {
                continue;
            }
            let queued = w.inflight_messages();
            assert_eq!(queued.len(), g.inflight.len());
            for (captured, live) in g.inflight.iter().zip(&queued) {
                assert_eq!(captured.id, live.id);
                assert!(
                    captured.ptr_eq(live),
                    "checkpointed message must alias the queued one"
                );
                assert!(
                    captured.payload.ptr_eq(&live.payload),
                    "and with it the payload bytes"
                );
                // At least: world queue + snapshot + our fresh clone all
                // share one message allocation.
                assert!(
                    captured.strong_count() >= 3,
                    "expected ≥3 handles on one message, got {}",
                    captured.strong_count()
                );
            }
            return; // found and verified a mid-flight snapshot
        }
        panic!("no snapshot with in-flight messages found");
    }

    #[test]
    fn restore_resumes_to_same_final_state() {
        let mut w = beat_world();
        w.run_steps(6);
        let g = coordinated_snapshot(&w);
        // Continue to completion, note the outcome.
        let mut w_ref = w.clone();
        w_ref.run_to_quiescence(10_000);
        let want = (
            w_ref.program::<Beat>(Pid(0)).unwrap().beats,
            w_ref.program::<Beat>(Pid(0)).unwrap().acks,
        );
        // Keep running the original further, then restore and re-run.
        w.run_to_quiescence(10_000);
        restore_global(&mut w, &g);
        w.run_to_quiescence(10_000);
        let got = (
            w.program::<Beat>(Pid(0)).unwrap().beats,
            w.program::<Beat>(Pid(0)).unwrap().acks,
        );
        assert_eq!(got, want, "restore must resume to the same outcome");
    }

    #[test]
    fn paged_snapshot_dedups_repeated_captures() {
        let mut w = beat_world();
        w.run_steps(4);
        let store = PageStore::new();
        let a = coordinated_snapshot_in(&w, &store, 64);
        let bytes_one = store.unique_bytes();
        // Capture again without state change: nothing new interned.
        let b = coordinated_snapshot_in(&w, &store, 64);
        assert_eq!(store.unique_bytes(), bytes_one);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Paged and inline forms agree byte-for-byte and hash-for-hash.
        let inline = coordinated_snapshot(&w);
        assert_eq!(inline.fingerprint(), a.fingerprint());
        assert_eq!(inline.state_bytes(), a.state_bytes());
        // Restore from the paged form works like the inline one.
        w.run_to_quiescence(10_000);
        restore_global(&mut w, &a);
        let restored = coordinated_snapshot(&w);
        assert_eq!(restored.fingerprint(), inline.fingerprint());
    }

    #[test]
    fn snapshot_fingerprint_distinguishes_states() {
        let mut w = beat_world();
        w.run_steps(4);
        let a = coordinated_snapshot(&w);
        w.run_steps(3);
        let b = coordinated_snapshot(&w);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn quiescent_snapshot_has_empty_channels() {
        let mut w = beat_world();
        w.run_to_quiescence(10_000);
        let g = coordinated_snapshot(&w);
        assert!(g.inflight.is_empty());
        assert!(g.timers.is_empty());
    }
}
