//! Garbage collection of Time-Machine history.
//!
//! Once a line of checkpoints is *stable* (e.g. every speculation that
//! could roll past it has committed), older checkpoints, delivery-log
//! entries, and dependency edges can never be needed again and are
//! reclaimed. Checkpoint indices are stable identifiers (messages in the
//! log refer to them), so collected checkpoints are tombstoned rather
//! than renumbered.

use fixd_runtime::Pid;

use crate::cic::TimeMachine;
use crate::dependency::NO_ROLLBACK;

/// What one GC pass reclaimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    pub checkpoints_dropped: usize,
    pub log_entries_dropped: usize,
    pub dep_edges_dropped: usize,
    /// Checkpoint bytes held after the pass (content-dedup-aware).
    pub bytes_after: usize,
    /// Page bytes the shared store **actually freed** during this pass —
    /// only pages whose refcount dropped to zero count. A page still
    /// referenced by any live checkpoint, another process's history, or
    /// a speculation branch is not freed and not reported.
    pub page_bytes_freed: u64,
}

impl TimeMachine {
    /// Collect history strictly below the `stable` line
    /// (`stable[p]` = lowest checkpoint index of `p` that must stay
    /// restorable; [`NO_ROLLBACK`] = collect everything but the latest).
    pub fn gc(&mut self, stable: &[u64]) -> GcReport {
        let freed_before = self.page_store.stats().freed_bytes;
        let mut report = GcReport::default();
        for (i, store) in self.stores.iter_mut().enumerate() {
            let keep_from = match stable.get(i).copied() {
                Some(NO_ROLLBACK) | None => store.latest_index().unwrap_or(0),
                Some(s) => s,
            };
            report.checkpoints_dropped += store.gc_before(keep_from);
        }
        let before_log = self.delivery_log.len();
        let stores_ref = &self.stores;
        self.delivery_log.retain(|rec| {
            // Keep entries that a rollback to the stable line could still
            // need to replay: receive interval at/above the receiver's
            // stable point.
            let dl = threshold(stable, rec.msg.dst, stores_ref);
            rec.dst_interval >= dl
        });
        report.log_entries_dropped = before_log - self.delivery_log.len();

        let before_edges = self.deps.len();
        let stores = &self.stores;
        let stable_vec: Vec<u64> = (0..stores.len())
            .map(|i| threshold(stable, Pid(i as u32), stores))
            .collect();
        self.deps.retain_edges(|e| {
            e.dst_interval >= stable_vec[e.dst.idx()] || e.src_interval >= stable_vec[e.src.idx()]
        });
        report.dep_edges_dropped = before_edges - self.deps.len();
        report.bytes_after = self.total_checkpoint_bytes();
        report.page_bytes_freed = self.page_store.stats().freed_bytes - freed_before;
        report
    }
}

fn threshold(stable: &[u64], pid: Pid, stores: &[crate::checkpoint::CheckpointStore]) -> u64 {
    match stable.get(pid.idx()).copied() {
        Some(NO_ROLLBACK) | None => stores[pid.idx()].latest_index().unwrap_or(0),
        Some(s) => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cic::{CheckpointPolicy, TimeMachineConfig};
    use fixd_runtime::{Context, Program, World, WorldConfig};

    struct Pump;
    impl Program for Pump {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                ctx.send(Pid(1), 1, vec![20]);
            }
        }
        fn on_message(&mut self, ctx: &mut Context, msg: &fixd_runtime::Message) {
            if msg.payload[0] > 0 {
                let next = Pid(((ctx.pid().0 as usize + 1) % ctx.world_size()) as u32);
                ctx.send(next, 1, vec![msg.payload[0] - 1]);
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            vec![1, 2, 3, 4]
        }
        fn restore(&mut self, _b: &[u8]) {}
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Pump)
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn setup() -> (World, TimeMachine) {
        let mut w = World::new(WorldConfig::seeded(31));
        w.add_process(Box::new(Pump));
        w.add_process(Box::new(Pump));
        let tm = TimeMachine::new(
            2,
            TimeMachineConfig {
                policy: CheckpointPolicy::EveryReceive,
                page_size: 64,
            },
        );
        (w, tm)
    }

    #[test]
    fn gc_reclaims_old_history() {
        let (mut w, mut tm) = setup();
        tm.run(&mut w, 10_000);
        let ckpts_before = tm.total_checkpoints();
        assert!(ckpts_before > 10);
        let deps_before = tm.dependencies().len();
        // Everything is stable: keep only the latest per process.
        let stable = vec![NO_ROLLBACK, NO_ROLLBACK];
        let report = tm.gc(&stable);
        assert!(report.checkpoints_dropped > 0);
        assert!(report.dep_edges_dropped > 0 || deps_before == 0);
        assert!(report.log_entries_dropped > 0);
    }

    #[test]
    fn gc_preserves_rollback_to_stable_point() {
        let (mut w, mut tm) = setup();
        tm.run(&mut w, 10_000);
        let fail = Pid(1);
        let keep = tm.interval(fail).saturating_sub(1);
        let mut stable = vec![0u64, 0u64];
        stable[fail.idx()] = keep;
        stable[0] = 0; // keep all of P0
        tm.gc(&stable);
        // Rollback to the kept checkpoint must still work.
        let report = tm.rollback(&mut w, fail, keep).unwrap();
        assert!(report.procs_rolled >= 1);
    }

    #[test]
    fn gc_below_stable_blocks_deep_rollback() {
        let (mut w, mut tm) = setup();
        tm.run(&mut w, 10_000);
        let fail = Pid(1);
        let keep = tm.interval(fail);
        let stable = vec![keep, keep];
        tm.gc(&stable);
        if keep >= 2 {
            let err = tm.rollback(&mut w, fail, 0).unwrap_err();
            assert!(matches!(
                err,
                crate::recovery::RollbackError::CheckpointCollected { .. }
                    | crate::recovery::RollbackError::NoSuchCheckpoint { .. }
            ));
        }
    }

    /// Pump variant whose state actually mutates, so GC'd checkpoints
    /// hold pages nothing else references.
    struct MutPump {
        buf: Vec<u8>,
        n: u64,
    }
    impl Program for MutPump {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                ctx.send(Pid(1), 1, vec![20]);
            }
        }
        fn on_message(&mut self, ctx: &mut Context, msg: &fixd_runtime::Message) {
            self.n += 1;
            let i = (self.n as usize * 131) % self.buf.len();
            self.buf[i] = self.buf[i].wrapping_add(1);
            if msg.payload[0] > 0 {
                let next = Pid(((ctx.pid().0 as usize + 1) % ctx.world_size()) as u32);
                ctx.send(next, 1, vec![msg.payload[0] - 1]);
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            let mut b = self.n.to_le_bytes().to_vec();
            b.extend_from_slice(&self.buf);
            b
        }
        fn restore(&mut self, b: &[u8]) {
            self.n = u64::from_le_bytes(b[0..8].try_into().unwrap());
            self.buf = b[8..].to_vec();
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(MutPump {
                buf: self.buf.clone(),
                n: self.n,
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn gc_reports_bytes_actually_freed() {
        let mut w = World::new(WorldConfig::seeded(31));
        for _ in 0..2 {
            w.add_process(Box::new(MutPump {
                buf: vec![0; 1024],
                n: 0,
            }));
        }
        let mut tm = TimeMachine::new(
            2,
            TimeMachineConfig {
                policy: CheckpointPolicy::EveryReceive,
                page_size: 64,
            },
        );
        tm.run(&mut w, 10_000);
        let before = tm.total_checkpoint_bytes();
        let report = tm.gc(&[NO_ROLLBACK, NO_ROLLBACK]);
        assert!(report.checkpoints_dropped > 0);
        assert!(
            report.page_bytes_freed > 0,
            "mutated pages of dropped checkpoints must be returned"
        );
        assert!(report.bytes_after < before);
        // Store accounting agrees with the live-image view: no leaks,
        // nothing freed that a live checkpoint still references.
        assert_eq!(tm.page_store().unique_bytes(), tm.total_checkpoint_bytes());
    }

    #[test]
    fn gc_keeps_pages_shared_with_surviving_branch() {
        // A cloned Time Machine (speculation branch) keeps its own
        // handles on every page; collecting the trunk's history must not
        // free pages the branch still references.
        let mut w = World::new(WorldConfig::seeded(31));
        for _ in 0..2 {
            w.add_process(Box::new(MutPump {
                buf: vec![0; 1024],
                n: 0,
            }));
        }
        let mut tm = TimeMachine::new(
            2,
            TimeMachineConfig {
                policy: CheckpointPolicy::EveryReceive,
                page_size: 64,
            },
        );
        tm.run(&mut w, 10_000);
        let branch = tm.clone();
        let held_by_branch = branch.total_checkpoint_bytes();
        let report = tm.gc(&[NO_ROLLBACK, NO_ROLLBACK]);
        assert!(report.checkpoints_dropped > 0);
        assert_eq!(
            report.page_bytes_freed, 0,
            "every trunk page is still referenced by the branch"
        );
        assert_eq!(branch.total_checkpoint_bytes(), held_by_branch);
        // Dropping the branch releases the now-unreferenced history.
        let live_after = tm.total_checkpoint_bytes();
        drop(branch);
        assert_eq!(tm.page_store().unique_bytes(), live_after);
    }

    #[test]
    fn gc_is_idempotent() {
        let (mut w, mut tm) = setup();
        tm.run(&mut w, 10_000);
        let stable = vec![NO_ROLLBACK, NO_ROLLBACK];
        tm.gc(&stable);
        let second = tm.gc(&stable);
        assert_eq!(second.checkpoints_dropped, 0);
        assert_eq!(second.log_entries_dropped, 0);
    }
}
