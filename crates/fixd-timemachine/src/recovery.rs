//! Recovery lines and rollback reports.

pub use crate::dependency::NO_ROLLBACK;

/// A computed recovery line: per process, the checkpoint index to restore
/// ([`NO_ROLLBACK`] = keep current state).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryLine {
    line: Vec<u64>,
}

impl RecoveryLine {
    /// Wrap a raw line vector.
    pub fn new(line: Vec<u64>) -> Self {
        Self { line }
    }

    /// The raw per-process targets.
    pub fn targets(&self) -> &[u64] {
        &self.line
    }

    /// Target for one process.
    pub fn target(&self, pid: fixd_runtime::Pid) -> u64 {
        self.line.get(pid.idx()).copied().unwrap_or(NO_ROLLBACK)
    }

    /// Does `pid` roll back under this line?
    pub fn rolls_back(&self, pid: fixd_runtime::Pid) -> bool {
        self.target(pid) != NO_ROLLBACK
    }

    /// Number of processes forced to roll back.
    pub fn breadth(&self) -> usize {
        self.line.iter().filter(|&&l| l != NO_ROLLBACK).count()
    }
}

impl std::fmt::Display for RecoveryLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line[")?;
        for (i, l) in self.line.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            if *l == NO_ROLLBACK {
                write!(f, "-")?;
            } else {
                write!(f, "{l}")?;
            }
        }
        write!(f, "]")
    }
}

/// What a rollback did — the F6 measurements.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RollbackReport {
    /// The applied recovery line.
    pub line: Vec<u64>,
    /// Processes restored.
    pub procs_rolled: usize,
    /// Handler events whose work was discarded (rollback depth).
    pub events_undone: u64,
    /// In-flight messages purged as orphans.
    pub msgs_purged: usize,
    /// Logged messages re-injected (sent before the line, received after).
    pub msgs_replayed: usize,
}

/// Rollback failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RollbackError {
    /// The requested checkpoint does not exist for the failed process.
    NoSuchCheckpoint { pid: fixd_runtime::Pid, index: u64 },
    /// A checkpoint required by the recovery line was garbage-collected.
    CheckpointCollected { pid: fixd_runtime::Pid, index: u64 },
}

impl std::fmt::Display for RollbackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RollbackError::NoSuchCheckpoint { pid, index } => {
                write!(f, "{pid} has no checkpoint {index}")
            }
            RollbackError::CheckpointCollected { pid, index } => {
                write!(f, "{pid} checkpoint {index} was garbage-collected")
            }
        }
    }
}

impl std::error::Error for RollbackError {}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::Pid;

    #[test]
    fn line_accessors() {
        let l = RecoveryLine::new(vec![2, NO_ROLLBACK, 0]);
        assert_eq!(l.breadth(), 2);
        assert!(l.rolls_back(Pid(0)));
        assert!(!l.rolls_back(Pid(1)));
        assert_eq!(l.target(Pid(2)), 0);
        assert_eq!(l.target(Pid(9)), NO_ROLLBACK);
        assert_eq!(l.to_string(), "line[2 - 0]");
    }

    #[test]
    fn error_display() {
        let e = RollbackError::NoSuchCheckpoint {
            pid: Pid(1),
            index: 4,
        };
        assert!(e.to_string().contains("P1"));
        let e = RollbackError::CheckpointCollected {
            pid: Pid(0),
            index: 2,
        };
        assert!(e.to_string().contains("garbage-collected"));
    }
}
