//! Arena-recycling laws under faults: every hot-path box returns to the
//! world's step arena **exactly once**, and only at a point where the
//! world holds the last reference. The suite pins pool sizes before and
//! after the fault paths that complicate ownership — duplicate delivery
//! (two Deliver records alias one box), corruption copy-on-write (two
//! boxes per logical message), and Time-Machine rollback (orphaned
//! sends dropped from the delivery log).

use fixd_runtime::{
    Context, FaultPlan, Message, NetworkConfig, Pid, Program, TimerId, World, WorldConfig,
};
use fixd_timemachine::{CheckpointPolicy, TimeMachine, TimeMachineConfig};

/// Forwards every received message to the other process until its
/// budget runs out. Two of these produce a long steady-state step loop.
struct Forward {
    left: u64,
}

impl Program for Forward {
    fn on_start(&mut self, ctx: &mut Context) {
        if ctx.pid() == Pid(0) {
            ctx.send(Pid(1), 1, vec![7u8; 64]);
        }
    }
    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        if self.left > 0 {
            self.left -= 1;
            let other = Pid(1 - ctx.pid().0);
            ctx.send(other, 1, msg.payload.clone());
        }
    }
    fn on_timer(&mut self, _ctx: &mut Context, _t: TimerId) {}
    fn snapshot(&self) -> Vec<u8> {
        self.left.to_le_bytes().to_vec()
    }
    fn restore(&mut self, b: &[u8]) {
        self.left = u64::from_le_bytes(b.try_into().unwrap());
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Forward { left: self.left })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// P0 sends `k` distinct messages to P1 at start; everyone else sinks.
struct SendK {
    k: u64,
}

impl Program for SendK {
    fn on_start(&mut self, ctx: &mut Context) {
        if ctx.pid() == Pid(0) {
            for i in 0..self.k {
                ctx.send(Pid(1), 1, vec![i as u8; 16]);
            }
        }
    }
    fn on_message(&mut self, _ctx: &mut Context, _msg: &Message) {}
    fn on_timer(&mut self, _ctx: &mut Context, _t: TimerId) {}
    fn snapshot(&self) -> Vec<u8> {
        self.k.to_le_bytes().to_vec()
    }
    fn restore(&mut self, b: &[u8]) {
        self.k = u64::from_le_bytes(b.try_into().unwrap());
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(SendK { k: self.k })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn world_with(seed: u64, trace_cap: usize, net: NetworkConfig) -> World {
    let mut cfg = WorldConfig::seeded(seed);
    cfg.trace_cap = Some(trace_cap);
    cfg.net = net;
    World::new(cfg)
}

/// Push status-only side records until every earlier record has been
/// evicted from the bounded trace (each push displaces the oldest).
fn flush_trace(w: &mut World, trace_cap: usize, dormant: Pid) {
    for _ in 0..trace_cap {
        w.crash_now(dormant);
    }
}

#[test]
fn steady_state_draws_every_box_from_the_pool() {
    let mut w = world_with(11, 8, NetworkConfig::default());
    w.add_process(Box::new(Forward { left: 2_000 }));
    w.add_process(Box::new(Forward { left: 2_000 }));

    // Warm phase: pools fill as the bounded trace starts evicting.
    for _ in 0..500 {
        assert!(w.step().is_some());
    }
    let warm = w.arena_stats();
    assert!(warm.msgs_recycled > 0, "message pool is cycling: {warm:?}");
    assert!(
        warm.records_recycled > 0,
        "record pool is cycling: {warm:?}"
    );

    // Steady phase: every box comes from the pool — the fresh-allocation
    // counters must not move at all.
    for _ in 0..1_000 {
        assert!(w.step().is_some());
    }
    let steady = w.arena_stats();
    assert_eq!(
        steady.msgs_allocated, warm.msgs_allocated,
        "steady-state step loop allocated a fresh message box"
    );
    assert_eq!(
        steady.records_allocated, warm.records_allocated,
        "steady-state step loop allocated a fresh record shell"
    );
}

#[test]
fn duplicated_delivery_pools_the_shared_box_exactly_once() {
    const K: u64 = 5;
    const CAP: usize = 2;
    let mut w = world_with(7, CAP, NetworkConfig::duplicating(1.0));
    w.add_process(Box::new(SendK { k: K }));
    w.add_process(Box::new(SendK { k: 0 }));
    w.add_process(Box::new(SendK { k: 0 }));
    let report = w.run_to_quiescence(1_000);
    assert_eq!(report.delivered, 2 * K, "every message delivered twice");

    flush_trace(&mut w, CAP, Pid(2));
    let stats = w.arena_stats();
    assert_eq!(
        stats.msgs_pooled, K as usize,
        "one pooled box per message, despite two Deliver records each: {stats:?}"
    );
}

#[test]
fn corruption_cow_pools_original_and_private_copy_once_each() {
    const K: u64 = 3;
    const CAP: usize = 2;
    let mut w = world_with(13, CAP, NetworkConfig::default());
    w.add_process(Box::new(SendK { k: K }));
    w.add_process(Box::new(SendK { k: 0 }));
    w.add_process(Box::new(SendK { k: 0 }));
    w.set_fault_plan(FaultPlan::none().corrupt_link(Pid(0), Pid(1), 0, u64::MAX));
    let report = w.run_to_quiescence(1_000);
    assert_eq!(report.delivered, K);

    flush_trace(&mut w, CAP, Pid(2));
    let stats = w.arena_stats();
    // The corruption path copy-on-writes the routed clone (`to_mut`), so
    // each logical message ends as two boxes: the sender's original in
    // its record's effects, and the corrupted private copy in the
    // Deliver record. Both return to the pool, each exactly once.
    assert_eq!(
        stats.msgs_pooled,
        2 * K as usize,
        "original and CoW copy each pooled once: {stats:?}"
    );
}

#[test]
fn tm_rollback_returns_orphan_boxes_to_the_pool() {
    const CAP: usize = 1;
    let mut w = world_with(5, CAP, NetworkConfig::default());
    w.add_process(Box::new(Forward { left: 100 }));
    w.add_process(Box::new(Forward { left: 100 }));
    let mut tm = TimeMachine::new(
        2,
        TimeMachineConfig {
            policy: CheckpointPolicy::EveryReceive,
            ..TimeMachineConfig::default()
        },
    );
    tm.run(&mut w, 40);

    let before = w.arena_stats();
    let report = tm.rollback(&mut w, Pid(0), 1).expect("checkpoint 1 exists");
    assert!(report.procs_rolled >= 1);
    let after = w.arena_stats();
    // Dropping the rolled-back branch released the delivery log's (and
    // queue's) orphaned sends; the world was their last holder, so the
    // boxes land in the pool instead of the allocator.
    assert!(
        after.msgs_pooled > before.msgs_pooled,
        "rollback reclaimed no orphan boxes: before {before:?}, after {after:?}"
    );
    // Exactly-once conservation: the pool can never hold more boxes
    // than were ever allocated.
    assert!(after.msgs_pooled as u64 <= after.msgs_allocated + after.msgs_recycled);
}
