//! Property-based tests for the Time Machine: paged-image laws,
//! recovery-line safety, rollback determinism, speculation atomicity.

use proptest::prelude::*;

use fixd_runtime::{Context, Message, Pid, Program, World, WorldConfig};
use fixd_timemachine::{
    CheckpointPolicy, DepEdge, DependencyGraph, PageStore, PagedImage, TimeMachine,
    TimeMachineConfig, NO_ROLLBACK,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Paging is lossless for arbitrary byte images and page sizes.
    #[test]
    fn paged_image_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..2000),
                             page in 1usize..512) {
        let store = PageStore::new();
        let img = PagedImage::from_bytes_with(&store, &bytes, page);
        prop_assert_eq!(img.to_bytes(), bytes);
    }

    /// Interning a second image is lossless, its stats add up, and the
    /// store's footprint never exceeds the two images' combined size.
    #[test]
    fn reintern_lossless(a in proptest::collection::vec(any::<u8>(), 0..1500),
                         b in proptest::collection::vec(any::<u8>(), 0..1500)) {
        let store = PageStore::new();
        let ia = PagedImage::from_bytes(&store, &a);
        let ib = PagedImage::from_bytes(&store, &b);
        let stats = ib.build_stats();
        prop_assert_eq!(ia.to_bytes(), a.clone());
        prop_assert_eq!(ib.to_bytes(), b.clone());
        prop_assert_eq!(stats.reused + stats.fresh, ib.page_count());
        prop_assert!(store.unique_bytes() <= a.len() + b.len());
        prop_assert_eq!(
            store.unique_bytes(),
            PagedImage::unique_bytes([&ia, &ib].into_iter())
        );
    }

    /// Mutating one byte of an already-interned image interns exactly
    /// one fresh page (constant images collapse to very few pages, and
    /// the dirtied page is the only new content).
    #[test]
    fn sparse_mutation_sparse_pages(len in 256usize..2048, at in 0usize..2048) {
        let at = at % len;
        let store = PageStore::new();
        let base = vec![0xAAu8; len];
        let mut mutated = base.clone();
        mutated[at] ^= 1;
        let _ia = PagedImage::from_bytes(&store, &base);
        let ib = PagedImage::from_bytes(&store, &mutated);
        prop_assert_eq!(ib.build_stats().fresh, 1);
    }
}

// Random dependency graphs: the recovery line must be *consistent*
// (no orphan edge survives) — the F6 safety property.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recovery_line_is_consistent(
        edges in proptest::collection::vec((0u32..5, 0u64..8, 0u32..5, 0u64..8), 0..30),
        fail in 0u32..5,
        target in 0u64..8,
    ) {
        let mut g = DependencyGraph::new();
        for (s, si, d, di) in edges {
            if s != d {
                g.add(DepEdge { src: Pid(s), src_interval: si, dst: Pid(d), dst_interval: di });
            }
        }
        let line = g.recovery_line(5, Pid(fail), target);
        // Consistency: no edge whose send was undone has a surviving
        // receive.
        for e in g.edges() {
            let sl = line[e.src.idx()];
            let dl = line[e.dst.idx()];
            if sl != NO_ROLLBACK && sl <= e.src_interval {
                prop_assert!(
                    dl != NO_ROLLBACK && dl <= e.dst_interval,
                    "orphan edge {:?} under line {:?}", e, line
                );
            }
        }
        // The failed process honors its target.
        prop_assert!(line[fail as usize] <= target);
    }
}

/// Worker app with a sizable mutating buffer, so checkpoints hold real
/// page data and GC passes have something to reclaim.
struct BufFlow {
    buf: Vec<u8>,
    n: u64,
}
impl Program for BufFlow {
    fn on_start(&mut self, ctx: &mut Context) {
        if ctx.pid() == Pid(0) {
            ctx.send(Pid(1), 1, vec![40]);
        }
    }
    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        self.n += 1;
        let i = (self.n as usize * 151) % self.buf.len();
        self.buf[i] = self.buf[i].wrapping_add(1);
        if msg.payload[0] > 0 {
            let next = Pid(((ctx.pid().0 as usize + 1) % ctx.world_size()) as u32);
            ctx.send(next, 1, vec![msg.payload[0] - 1]);
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        let mut b = self.n.to_le_bytes().to_vec();
        b.extend_from_slice(&self.buf);
        b
    }
    fn restore(&mut self, b: &[u8]) {
        self.n = u64::from_le_bytes(b[0..8].try_into().unwrap());
        self.buf = b[8..].to_vec();
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(BufFlow {
            buf: self.buf.clone(),
            n: self.n,
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn buf_setup(n: usize, seed: u64) -> (World, TimeMachine) {
    let mut w = World::new(WorldConfig::seeded(seed));
    for _ in 0..n {
        w.add_process(Box::new(BufFlow {
            buf: vec![0; 2048],
            n: 0,
        }));
    }
    let tm = TimeMachine::new(
        n,
        TimeMachineConfig {
            policy: CheckpointPolicy::EveryReceive,
            page_size: 64,
        },
    );
    (w, tm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GC accounting safety (the content-addressed-store law): under any
    /// interleaving of checkpoint takes, `gc_before` passes, and
    /// speculation-branch clones/drops,
    ///
    /// 1. no page referenced by a live checkpoint (of the trunk OR a
    ///    live branch) is ever reclaimed — every such page keeps a
    ///    positive store refcount and its checkpoint's content hash is
    ///    unchanged;
    /// 2. no page leaks — the store's `unique_bytes` equals the dedup'd
    ///    footprint of exactly the live images.
    #[test]
    fn gc_never_reclaims_referenced_pages(
        seed in 0u64..500,
        ops in proptest::collection::vec((0u8..5, 0u64..6), 1..12),
    ) {
        const N: usize = 3;
        let (mut w, mut tm) = buf_setup(N, seed);
        tm.init(&mut w);
        let mut branch: Option<TimeMachine> = None;
        for (op, arg) in ops {
            match op {
                0 => {
                    tm.run(&mut w, 1 + arg * 3);
                }
                1 => {
                    let pid = Pid((arg % N as u64) as u32);
                    tm.checkpoint_now(&mut w, pid);
                }
                2 => {
                    // Content hashes of the checkpoints that must survive.
                    let stable: Vec<u64> = (0..N)
                        .map(|i| tm.interval(Pid(i as u32)).saturating_sub(arg))
                        .collect();
                    let mut keep_hashes = Vec::new();
                    for (i, &s) in stable.iter().enumerate() {
                        let store = tm.store(Pid(i as u32));
                        for idx in s..=tm.interval(Pid(i as u32)) {
                            if let Some(ck) = store.get(idx) {
                                if store.is_live(idx) {
                                    keep_hashes.push((i, idx, ck.image.content_fnv1a()));
                                }
                            }
                        }
                    }
                    tm.gc(&stable);
                    for (i, idx, hash) in keep_hashes {
                        let store = tm.store(Pid(i as u32));
                        prop_assert!(store.is_live(idx), "P{i} ckpt {idx} wrongly collected");
                        let ck = store.get(idx).expect("live checkpoint present");
                        prop_assert_eq!(
                            ck.image.content_fnv1a(), hash,
                            "P{} ckpt {} content changed under gc", i, idx
                        );
                    }
                }
                3 => {
                    branch = Some(tm.clone());
                }
                _ => {
                    branch = None;
                }
            }
            // Accounting invariant: the store holds exactly the pages of
            // the live images — trunk plus any live branch — and every
            // live page has a positive refcount.
            let mut imgs: Vec<&PagedImage> = Vec::new();
            for i in 0..N {
                imgs.extend(tm.store(Pid(i as u32)).images());
            }
            if let Some(b) = &branch {
                for i in 0..N {
                    imgs.extend(b.store(Pid(i as u32)).images());
                }
            }
            for img in &imgs {
                for key in img.page_keys() {
                    prop_assert!(
                        tm.page_store().refs_of(key) > 0,
                        "page {key:#x} of a live checkpoint has no store refcount"
                    );
                }
            }
            prop_assert_eq!(
                tm.page_store().unique_bytes(),
                PagedImage::unique_bytes(imgs.into_iter()),
                "store bytes must equal the live images' dedup'd footprint"
            );
        }
    }
}

/// Worker app for end-to-end rollback properties.
struct Flow {
    sum: u64,
}
impl Program for Flow {
    fn on_start(&mut self, ctx: &mut Context) {
        if ctx.pid() == Pid(0) {
            ctx.send(Pid(1), 1, vec![10]);
        }
    }
    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        self.sum += u64::from(msg.payload[0]);
        if msg.payload[0] > 0 {
            let next = Pid(((ctx.pid().0 as usize + 1) % ctx.world_size()) as u32);
            ctx.send(next, 1, vec![msg.payload[0] - 1]);
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        self.sum.to_le_bytes().to_vec()
    }
    fn restore(&mut self, b: &[u8]) {
        self.sum = u64::from_le_bytes(b.try_into().unwrap());
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Flow { sum: self.sum })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn flow_setup(n: usize, seed: u64) -> (World, TimeMachine) {
    let mut w = World::new(WorldConfig::seeded(seed));
    for _ in 0..n {
        w.add_process(Box::new(Flow { sum: 0 }));
    }
    let tm = TimeMachine::new(
        n,
        TimeMachineConfig {
            policy: CheckpointPolicy::EveryReceive,
            page_size: 64,
        },
    );
    (w, tm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Roll back anywhere, resume, and the final global state equals the
    /// never-rolled-back run (rollback transparency).
    #[test]
    fn rollback_transparency(seed in 0u64..200, n in 2usize..5,
                             pause in 1u64..20, back in 1u64..4) {
        let reference = {
            let (mut w, mut tm) = flow_setup(n, seed);
            tm.run(&mut w, 10_000);
            w.global_snapshot().fingerprint()
        };
        let (mut w, mut tm) = flow_setup(n, seed);
        tm.run(&mut w, pause);
        let fail = Pid(((seed as usize) % n) as u32);
        let cur = tm.interval(fail);
        let target = cur.saturating_sub(back);
        if tm.store(fail).get(target).is_some() {
            tm.rollback(&mut w, fail, target).unwrap();
        }
        tm.run(&mut w, 10_000);
        prop_assert_eq!(w.global_snapshot().fingerprint(), reference);
    }

    /// Speculation commit/abort atomicity: commit preserves all state,
    /// abort restores all entry states, under arbitrary timing.
    #[test]
    fn speculation_atomicity(seed in 0u64..200, pre in 0u64..10, valid in any::<bool>()) {
        let (mut w, mut tm) = flow_setup(3, seed);
        tm.init(&mut w);
        tm.run(&mut w, pre);
        let entry_fp = w.global_snapshot().fingerprint();
        let spec = tm.speculate(&mut w, Pid(1), "assumption");
        tm.run(&mut w, 10_000);
        let done_fp = w.global_snapshot().fingerprint();
        tm.resolve(&mut w, spec, valid);
        let now_fp = w.global_snapshot().fingerprint();
        if valid {
            prop_assert_eq!(now_fp, done_fp, "commit must not alter state");
        } else {
            // Abort restores members' entry states. Non-members may have
            // progressed (in this chain app everyone gets absorbed, so
            // global state returns to the entry snapshot unless the run
            // had already quiesced before the speculation).
            if done_fp != entry_fp {
                prop_assert_ne!(now_fp, done_fp, "abort must roll back");
            }
        }
    }

    /// CIC invariant: a process's interval index always equals its
    /// delivered-message count under EveryReceive.
    #[test]
    fn cic_interval_tracks_receives(seed in 0u64..200, n in 2usize..5, steps in 1u64..40) {
        let (mut w, mut tm) = flow_setup(n, seed);
        tm.run(&mut w, steps);
        for i in 0..n {
            let pid = Pid(i as u32);
            prop_assert_eq!(tm.interval(pid), w.delivered_count(pid));
        }
    }
}
