//! Scroll entries: the recorded nondeterministic actions and their
//! outcomes (paper §3.1).

use fixd_runtime::{Payload, Pid, Randoms, SharedMessage, TimerId, VTime, VectorClock};

/// What kind of nondeterministic action an entry records.
#[derive(Clone, Debug, PartialEq)]
pub enum EntryKind {
    /// The process's `on_start` ran.
    Start,
    /// A message arrived and `on_message` ran. The full message (including
    /// sender clock and metadata) is the recorded *outcome* needed for
    /// black-box replay. The entry holds the *same* shared handle the
    /// runtime delivered — recording is a reference-count bump.
    Deliver { msg: SharedMessage },
    /// A timer fired and `on_timer` ran.
    TimerFire { timer: TimerId },
    /// The process crashed.
    Crash,
    /// The process was rolled back / restarted by a driver.
    Restart,
    /// A message destined to this process was dropped (recorded only when
    /// [`crate::RecordConfig::record_drops`] is set; diagnostic, not
    /// needed for replay).
    DroppedMail { msg: SharedMessage },
}

impl EntryKind {
    /// Entries that drive a handler during replay.
    pub fn is_replayable(&self) -> bool {
        matches!(
            self,
            EntryKind::Start | EntryKind::Deliver { .. } | EntryKind::TimerFire { .. }
        )
    }

    /// The recorded message's payload, if this entry carries one. The
    /// returned handle aliases the buffer the runtime delivered — the
    /// Scroll records messages without copying their bytes.
    pub fn payload(&self) -> Option<&Payload> {
        match self {
            EntryKind::Deliver { msg } | EntryKind::DroppedMail { msg } => Some(&msg.payload),
            _ => None,
        }
    }

    /// Numeric tag for the codec.
    pub(crate) fn tag(&self) -> u8 {
        match self {
            EntryKind::Start => 0,
            EntryKind::Deliver { .. } => 1,
            EntryKind::TimerFire { .. } => 2,
            EntryKind::Crash => 3,
            EntryKind::Restart => 4,
            EntryKind::DroppedMail { .. } => 5,
        }
    }
}

/// One recorded nondeterministic action of one process.
#[derive(Clone, Debug, PartialEq)]
pub struct ScrollEntry {
    /// Which process this entry belongs to.
    pub pid: Pid,
    /// Position in that process's scroll (0-based, dense).
    pub local_seq: u64,
    /// Virtual time of the action.
    pub at: VTime,
    /// The process's Lamport clock *after* the action — the total-order
    /// key the paper's logging overview calls for (§2.2).
    pub lamport: u64,
    /// The process's vector clock *after* the action — the causality key
    /// used for merge validation and consistent cuts.
    pub vc: VectorClock,
    /// The action itself.
    pub kind: EntryKind,
    /// Random draws the handler made, in order (recorded outcomes of the
    /// process's internal nondeterminism). Shared with the runtime's
    /// step record — recording them is a reference-count bump.
    pub randoms: Randoms,
    /// Fingerprint of the handler's full [`fixd_runtime::Effects`];
    /// replay must reproduce it exactly.
    pub effects_fp: u64,
    /// Number of messages the handler sent (cheap stat used by F1).
    pub sends: u64,
}

impl ScrollEntry {
    /// Is this entry's action causally no later than `other`'s?
    pub fn causally_leq(&self, other: &ScrollEntry) -> bool {
        self.vc.leq(&other.vc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(kind: EntryKind) -> ScrollEntry {
        ScrollEntry {
            pid: Pid(0),
            local_seq: 0,
            at: 0,
            lamport: 1,
            vc: VectorClock::new(2),
            kind,
            randoms: Randoms::EMPTY,
            effects_fp: 0,
            sends: 0,
        }
    }

    #[test]
    fn replayable_classification() {
        assert!(entry(EntryKind::Start).kind.is_replayable());
        assert!(entry(EntryKind::TimerFire { timer: TimerId(1) })
            .kind
            .is_replayable());
        assert!(!entry(EntryKind::Crash).kind.is_replayable());
        assert!(!entry(EntryKind::Restart).kind.is_replayable());
    }

    #[test]
    fn tags_are_distinct() {
        let kinds = [
            EntryKind::Start,
            EntryKind::Crash,
            EntryKind::Restart,
            EntryKind::TimerFire { timer: TimerId(0) },
        ];
        let mut tags: Vec<u8> = kinds.iter().map(|k| k.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), kinds.len());
    }

    #[test]
    fn causal_ordering_via_vc() {
        let mut a = entry(EntryKind::Start);
        let mut b = entry(EntryKind::Start);
        a.vc = VectorClock::from_vec(vec![1, 0]);
        b.vc = VectorClock::from_vec(vec![1, 1]);
        assert!(a.causally_leq(&b));
        assert!(!b.causally_leq(&a));
    }
}
