//! Deterministic local playback of one process from its scroll.
//!
//! This is the paper's §2.2 alternative to global replay: *"record the
//! interaction between the local component and a remote one and treat the
//! remote entity as a black box defined only by the interaction with the
//! local component."* The replayed process receives exactly the recorded
//! messages and timer firings; its RNG stream is re-derived from the same
//! seed; and every handler's effects are checked against the recorded
//! fingerprint, so divergence (a non-reproducible bug, or a changed
//! program) is detected at the first differing step.

use fixd_runtime::{Pid, Program, SoloHarness};

use crate::entry::{EntryKind, ScrollEntry};

/// Did the replay reproduce the recorded run?
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fidelity {
    /// Every replayed handler produced byte-identical effects.
    Exact,
    /// The replay diverged at this local sequence number.
    Divergent {
        at_local_seq: u64,
        expected_fp: u64,
        actual_fp: u64,
    },
}

/// Result of a local replay.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Handler invocations replayed.
    pub steps: u64,
    /// Fidelity verdict (first divergence wins).
    pub fidelity: Fidelity,
    /// Final program state after replay.
    pub final_state: Vec<u8>,
    /// States after each replayed step (local_seq → snapshot), captured
    /// when `capture_states` is set — the "step through the execution"
    /// debugger facility of §2.2.
    pub states: Vec<Vec<u8>>,
}

/// Replay options.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayConfig {
    /// Capture a state snapshot after every step (costly; for stepping).
    pub capture_states: bool,
    /// Stop at the first divergence instead of continuing.
    pub stop_on_divergence: bool,
}

/// Replay `pid`'s scroll against a fresh program instance.
///
/// * `width` and `seed` must match the recorded world (they determine the
///   clock width and the RNG stream).
/// * `program` must be in its initial state (as at the recorded `Start`).
pub fn replay_process(
    pid: Pid,
    width: usize,
    seed: u64,
    program: &mut dyn Program,
    entries: &[ScrollEntry],
) -> ReplayOutcome {
    replay_process_with(pid, width, seed, program, entries, ReplayConfig::default())
}

/// [`replay_process`] with explicit options.
pub fn replay_process_with(
    pid: Pid,
    width: usize,
    seed: u64,
    program: &mut dyn Program,
    entries: &[ScrollEntry],
    cfg: ReplayConfig,
) -> ReplayOutcome {
    let mut harness = SoloHarness::new(pid, width, seed);
    let mut steps = 0u64;
    let mut fidelity = Fidelity::Exact;
    let mut states = Vec::new();

    for e in entries {
        debug_assert_eq!(e.pid, pid, "entry from wrong scroll");
        harness.set_now(e.at);
        let effects = match &e.kind {
            EntryKind::Start => harness.start(program),
            EntryKind::Deliver { msg } => harness.deliver(program, msg),
            EntryKind::TimerFire { timer } => harness.timer(program, *timer),
            // Crash/Restart/DroppedMail don't run handlers.
            _ => continue,
        };
        steps += 1;
        if cfg.capture_states {
            states.push(program.snapshot());
        }
        let actual_fp = effects.fingerprint();
        if actual_fp != e.effects_fp && fidelity == Fidelity::Exact {
            fidelity = Fidelity::Divergent {
                at_local_seq: e.local_seq,
                expected_fp: e.effects_fp,
                actual_fp,
            };
            if cfg.stop_on_divergence {
                break;
            }
        }
    }

    ReplayOutcome {
        steps,
        fidelity,
        final_state: program.snapshot(),
        states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{record_run, RecordConfig};
    use fixd_runtime::{Context, Message, World, WorldConfig};

    struct Acc {
        sum: u64,
        noise: u64,
    }
    impl Program for Acc {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                for i in 0..3u8 {
                    ctx.send(Pid(1), 1, vec![i]);
                }
            }
        }
        fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
            self.sum += u64::from(msg.payload[0]);
            self.noise ^= ctx.random();
        }
        fn snapshot(&self) -> Vec<u8> {
            let mut b = self.sum.to_le_bytes().to_vec();
            b.extend_from_slice(&self.noise.to_le_bytes());
            b
        }
        fn restore(&mut self, b: &[u8]) {
            self.sum = u64::from_le_bytes(b[0..8].try_into().unwrap());
            self.noise = u64::from_le_bytes(b[8..16].try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Acc {
                sum: self.sum,
                noise: self.noise,
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn record(seed: u64) -> (crate::ScrollStore, Vec<u8>) {
        let mut w = World::new(WorldConfig::seeded(seed));
        w.add_process(Box::new(Acc { sum: 0, noise: 0 }));
        w.add_process(Box::new(Acc { sum: 0, noise: 0 }));
        let (store, _) = record_run(&mut w, RecordConfig::default(), 1_000);
        let final_state = w.checkpoint_process(Pid(1)).state.to_bytes();
        (store, final_state)
    }

    #[test]
    fn replay_reproduces_final_state_exactly() {
        let (store, want) = record(42);
        let mut fresh = Acc { sum: 0, noise: 0 };
        let out = replay_process(Pid(1), 2, 42, &mut fresh, &store.scroll(Pid(1)));
        assert_eq!(out.fidelity, Fidelity::Exact);
        assert_eq!(out.final_state, want);
        assert_eq!(out.steps, 4); // start + 3 deliveries
    }

    #[test]
    fn replay_detects_changed_program() {
        let (store, _) = record(42);
        // A "buggy fix": doubles the payload — divergence must be caught.
        struct Acc2(Acc);
        impl Program for Acc2 {
            fn on_start(&mut self, ctx: &mut Context) {
                self.0.on_start(ctx)
            }
            fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
                self.0.sum += 2 * u64::from(msg.payload[0]);
                self.0.noise ^= ctx.random();
                ctx.output(b"extra".to_vec()); // extra effect => fp differs
            }
            fn snapshot(&self) -> Vec<u8> {
                self.0.snapshot()
            }
            fn restore(&mut self, b: &[u8]) {
                self.0.restore(b)
            }
            fn clone_program(&self) -> Box<dyn Program> {
                Box::new(Acc2(Acc {
                    sum: self.0.sum,
                    noise: self.0.noise,
                }))
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut changed = Acc2(Acc { sum: 0, noise: 0 });
        let out = replay_process(Pid(1), 2, 42, &mut changed, &store.scroll(Pid(1)));
        match out.fidelity {
            Fidelity::Divergent { at_local_seq, .. } => {
                assert_eq!(at_local_seq, 1, "first delivery diverges (start matches)");
            }
            Fidelity::Exact => panic!("divergence not detected"),
        }
    }

    #[test]
    fn wrong_seed_diverges_via_rng() {
        let (store, want) = record(42);
        let mut fresh = Acc { sum: 0, noise: 0 };
        let out = replay_process(Pid(1), 2, 43, &mut fresh, &store.scroll(Pid(1)));
        // Different RNG stream => different noise => different state,
        // and effect fingerprints (recorded draws) differ.
        assert_ne!(out.fidelity, Fidelity::Exact);
        assert_ne!(out.final_state, want);
    }

    #[test]
    fn capture_states_steps_through_execution() {
        let (store, _) = record(7);
        let mut fresh = Acc { sum: 0, noise: 0 };
        let out = replay_process_with(
            Pid(1),
            2,
            7,
            &mut fresh,
            &store.scroll(Pid(1)),
            ReplayConfig {
                capture_states: true,
                stop_on_divergence: false,
            },
        );
        assert_eq!(out.states.len() as u64, out.steps);
        // Sum strictly increases over the deliveries with payload > 0.
        let sums: Vec<u64> = out
            .states
            .iter()
            .map(|s| u64::from_le_bytes(s[0..8].try_into().unwrap()))
            .collect();
        assert!(sums.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn stop_on_divergence_halts_early() {
        let (store, _) = record(42);
        let mut fresh = Acc { sum: 0, noise: 0 };
        let out = replay_process_with(
            Pid(1),
            2,
            999, // wrong seed: diverges immediately on rng draw
            &mut fresh,
            &store.scroll(Pid(1)),
            ReplayConfig {
                capture_states: false,
                stop_on_divergence: true,
            },
        );
        assert!(out.steps < 4);
    }
}
