//! Consistent cuts over recorded scrolls.
//!
//! A *cut* takes the first `c_p` entries of each process `p`. The cut is
//! *consistent* when no process has observed an event of another process
//! that lies outside the cut — exactly the global-state consistency the
//! Time Machine needs when it pieces together "a consistent global
//! checkpoint of the system" from per-process replies (paper §3.3,
//! Fig. 4).

use fixd_runtime::{Pid, VectorClock};

use crate::storage::ScrollStore;

/// A cut: how many entries of each process's scroll are included.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cut {
    counts: Vec<usize>,
}

impl Cut {
    /// A cut including `counts[p]` entries of process `p`.
    pub fn new(counts: Vec<usize>) -> Self {
        Self { counts }
    }

    /// The empty cut over `n` processes (always consistent).
    pub fn empty(n: usize) -> Self {
        Self { counts: vec![0; n] }
    }

    /// The full cut over a store.
    pub fn full(store: &ScrollStore) -> Self {
        Self {
            counts: (0..store.width())
                .map(|i| store.scroll(Pid(i as u32)).len())
                .collect(),
        }
    }

    /// Entries of process `p` included.
    pub fn count(&self, p: Pid) -> usize {
        self.counts.get(p.idx()).copied().unwrap_or(0)
    }

    /// Raw counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// The frontier clock of process `p` under this cut: the vector clock
    /// of its last included entry (zero clock if none).
    pub fn frontier(&self, store: &ScrollStore, p: Pid) -> VectorClock {
        let c = self.count(p);
        if c == 0 {
            VectorClock::new(store.width())
        } else {
            store.scroll(p)[c - 1].vc.clone()
        }
    }

    /// Is the cut consistent? For all p, q: process p must not have
    /// observed more of q's history than the cut includes of q:
    /// `frontier(p)[q] <= frontier(q)[q]`.
    pub fn is_consistent(&self, store: &ScrollStore) -> bool {
        let n = store.width();
        let frontiers: Vec<VectorClock> = (0..n)
            .map(|i| self.frontier(store, Pid(i as u32)))
            .collect();
        for p in 0..n {
            for (q, frontier_q) in frontiers.iter().enumerate() {
                if p == q {
                    continue;
                }
                let qq = Pid(q as u32);
                if frontiers[p].get(qq) > frontier_q.get(qq) {
                    return false;
                }
            }
        }
        true
    }

    /// Total entries included.
    pub fn size(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// The latest consistent cut in which process `fault_pid` includes at most
/// its first `limit` entries. Computed by fixed-point shrinking: start
/// from the full store (clamped for `fault_pid`) and repeatedly retract
/// any process that has observed beyond another's frontier. This is the
/// same monotone retraction that drives rollback-dependency resolution in
/// the Time Machine (the "domino" computation of Fig. 6, performed here on
/// logs instead of checkpoints).
pub fn latest_consistent_cut(store: &ScrollStore, fault_pid: Pid, limit: usize) -> Cut {
    let n = store.width();
    let mut counts: Vec<usize> = (0..n).map(|i| store.scroll(Pid(i as u32)).len()).collect();
    if fault_pid.idx() < n {
        counts[fault_pid.idx()] = counts[fault_pid.idx()].min(limit);
    }
    loop {
        let cut = Cut::new(counts.clone());
        let frontiers: Vec<VectorClock> =
            (0..n).map(|i| cut.frontier(store, Pid(i as u32))).collect();
        let mut changed = false;
        for p in 0..n {
            for (q, frontier_q) in frontiers.iter().enumerate() {
                if p == q {
                    continue;
                }
                let qq = Pid(q as u32);
                // p saw more of q than the cut includes: retract p until
                // its frontier no longer exceeds q's self-component.
                while counts[p] > 0 {
                    let fp = Cut::new(counts.clone()).frontier(store, Pid(p as u32));
                    if fp.get(qq) <= frontier_q.get(qq) {
                        break;
                    }
                    counts[p] -= 1;
                    changed = true;
                }
            }
        }
        if !changed {
            return Cut::new(counts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{record_run, RecordConfig};
    use fixd_runtime::{Context, Message, Program, World, WorldConfig};

    struct PingPong {
        rounds: u8,
    }
    impl Program for PingPong {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                ctx.send(Pid(1), 1, vec![self.rounds]);
            }
        }
        fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
            if msg.payload[0] > 0 {
                ctx.send(msg.src, 1, vec![msg.payload[0] - 1]);
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            vec![self.rounds]
        }
        fn restore(&mut self, b: &[u8]) {
            self.rounds = b[0];
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(PingPong {
                rounds: self.rounds,
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn pingpong_store(rounds: u8) -> ScrollStore {
        let mut w = World::new(WorldConfig::seeded(4));
        w.add_process(Box::new(PingPong { rounds }));
        w.add_process(Box::new(PingPong { rounds }));
        let (store, _) = record_run(&mut w, RecordConfig::default(), 10_000);
        store
    }

    #[test]
    fn empty_and_full_cuts_consistent() {
        let store = pingpong_store(6);
        assert!(Cut::empty(2).is_consistent(&store));
        assert!(Cut::full(&store).is_consistent(&store));
    }

    #[test]
    fn cutting_mid_conversation_can_be_inconsistent() {
        let store = pingpong_store(6);
        // Include everything of P1 but nothing of P0: P1 has observed P0's
        // sends => inconsistent.
        let full1 = store.scroll(Pid(1)).len();
        let cut = Cut::new(vec![0, full1]);
        assert!(!cut.is_consistent(&store));
    }

    #[test]
    fn latest_consistent_cut_is_consistent_and_respects_limit() {
        let store = pingpong_store(8);
        let limit = 2;
        let cut = latest_consistent_cut(&store, Pid(0), limit);
        assert!(cut.is_consistent(&store));
        assert!(cut.count(Pid(0)) <= limit);
        // Maximality: adding one entry to any process breaks consistency
        // or exceeds the store/limit.
        for p in 0..2u32 {
            let pid = Pid(p);
            let mut counts = cut.counts().to_vec();
            if pid == Pid(0) && counts[0] == limit {
                continue;
            }
            if counts[p as usize] < store.scroll(pid).len() {
                counts[p as usize] += 1;
                let bigger = Cut::new(counts);
                assert!(!bigger.is_consistent(&store), "cut not maximal at P{p}");
            }
        }
    }

    #[test]
    fn frontier_of_empty_prefix_is_zero() {
        let store = pingpong_store(2);
        let cut = Cut::empty(2);
        assert_eq!(cut.frontier(&store, Pid(0)).total(), 0);
    }

    #[test]
    fn cut_size_counts_entries() {
        let store = pingpong_store(4);
        let full = Cut::full(&store);
        assert_eq!(full.size(), store.total_entries());
    }
}
