//! Binary codec for scroll entries.
//!
//! Compact, self-contained, versioned. Varint-based so small ids and
//! clocks cost one byte; payloads are length-prefixed. The format is the
//! reproduction's analogue of liblog's on-disk log (§4.1).

use fixd_runtime::wire::{get_payload, get_u64s, get_varint, put_bytes, put_u64s, put_varint};
use fixd_runtime::{Message, MsgMeta, Payload, Pid, TimerId, VectorClock};

use crate::entry::{EntryKind, ScrollEntry};

/// Format version byte written at the head of every segment.
///
/// * v1 — dense vector clocks: a length-prefixed `u64` list with one
///   component per process, zeros included. Still decoded for old
///   segments.
/// * v2 — sparse vector clocks: a length-prefixed list of
///   `(pid, count)` varint pairs, nonzero components only. An entry's
///   clock costs bytes proportional to its causal footprint instead of
///   the world width, which is what keeps segments of a 10^5-process
///   world readable.
pub const FORMAT_VERSION: u8 = 2;

/// Encode a sparse clock as `nnz` followed by `(pid, count)` varint
/// pairs (the v2 wire form).
fn put_clock(buf: &mut Vec<u8>, vc: &VectorClock) {
    put_varint(buf, vc.nnz() as u64);
    for (p, c) in vc.entries() {
        put_varint(buf, u64::from(p.0));
        put_varint(buf, c);
    }
}

/// Decode a clock in the given format version: v1 reads the dense
/// component list, v2 the sparse pair list. Both land in the same
/// in-memory [`VectorClock`] (dense zeros are dropped on the way in).
fn get_clock(buf: &[u8], pos: &mut usize, version: u8) -> Option<VectorClock> {
    if version == 1 {
        return Some(VectorClock::from_vec(get_u64s(buf, pos)?));
    }
    let n = get_varint(buf, pos)? as usize;
    let mut pairs = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let p = get_varint(buf, pos)? as u32;
        let c = get_varint(buf, pos)?;
        pairs.push((p, c));
    }
    Some(VectorClock::from_pairs(pairs))
}

/// Encoding error (only produced on decode).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended early or a length field overran the buffer.
    Truncated,
    /// Unknown entry-kind tag.
    BadTag(u8),
    /// Unsupported format version.
    BadVersion(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated scroll data"),
            CodecError::BadTag(t) => write!(f, "unknown entry tag {t}"),
            CodecError::BadVersion(v) => write!(f, "unsupported scroll format version {v}"),
        }
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

fn need<T>(v: Option<T>) -> Result<T> {
    v.ok_or(CodecError::Truncated)
}

/// Where decoded payload bytes come from.
///
/// * [`PayloadSource::Copy`] materializes each payload into its own
///   fresh allocation (the pre-refactor behaviour, kept for decoding
///   from a plain byte slice);
/// * [`PayloadSource::View`] carves zero-copy [`Payload`] views out of
///   one shared segment buffer — decoding a segment of N messages costs
///   N reference-count bumps instead of N allocations.
enum PayloadSource<'a> {
    Copy,
    View(&'a Payload),
}

impl PayloadSource<'_> {
    /// Read one length-prefixed payload (the `put_bytes` framing).
    fn take(&self, buf: &[u8], pos: &mut usize) -> Option<Payload> {
        match self {
            // One implementation owns the wire framing.
            PayloadSource::Copy => get_payload(buf, pos),
            PayloadSource::View(seg) => {
                let len = get_varint(buf, pos)? as usize;
                let end = pos.checked_add(len)?;
                if end > buf.len() {
                    return None;
                }
                let p = Payload::slice_of(seg, *pos..end);
                *pos = end;
                Some(p)
            }
        }
    }
}

/// Encode a message (full fidelity: clocks and metadata included).
pub fn encode_message(buf: &mut Vec<u8>, m: &Message) {
    put_varint(buf, m.id);
    put_varint(buf, u64::from(m.src.0));
    put_varint(buf, u64::from(m.dst.0));
    put_varint(buf, u64::from(m.tag));
    put_bytes(buf, &m.payload);
    put_varint(buf, m.sent_at);
    put_clock(buf, &m.vc);
    put_varint(buf, m.meta.ckpt_index);
    put_varint(buf, m.meta.spec_id);
    put_varint(buf, m.meta.lamport);
}

/// Decode a message written by [`encode_message`], copying its payload
/// into a fresh allocation. Prefer [`decode_segment_shared`] (or decode
/// from a [`Payload`]) on whole segments: there every entry's payload
/// aliases the one segment buffer instead.
pub fn decode_message(buf: &[u8], pos: &mut usize) -> Result<Message> {
    decode_message_from(buf, pos, &PayloadSource::Copy, FORMAT_VERSION)
}

fn decode_message_from(
    buf: &[u8],
    pos: &mut usize,
    source: &PayloadSource<'_>,
    version: u8,
) -> Result<Message> {
    let id = need(get_varint(buf, pos))?;
    let src = Pid(need(get_varint(buf, pos))? as u32);
    let dst = Pid(need(get_varint(buf, pos))? as u32);
    let tag = need(get_varint(buf, pos))? as u16;
    let payload = need(source.take(buf, pos))?;
    let sent_at = need(get_varint(buf, pos))?;
    let vc = need(get_clock(buf, pos, version))?;
    let ckpt_index = need(get_varint(buf, pos))?;
    let spec_id = need(get_varint(buf, pos))?;
    let lamport = need(get_varint(buf, pos))?;
    Ok(Message {
        id,
        src,
        dst,
        tag,
        payload,
        sent_at,
        vc,
        meta: MsgMeta {
            ckpt_index,
            spec_id,
            lamport,
        },
    })
}

/// Encode one scroll entry.
pub fn encode_entry(buf: &mut Vec<u8>, e: &ScrollEntry) {
    buf.push(e.kind.tag());
    put_varint(buf, u64::from(e.pid.0));
    put_varint(buf, e.local_seq);
    put_varint(buf, e.at);
    put_varint(buf, e.lamport);
    put_clock(buf, &e.vc);
    put_u64s(buf, e.randoms.as_slice());
    put_varint(buf, e.effects_fp);
    put_varint(buf, e.sends);
    match &e.kind {
        EntryKind::Deliver { msg } | EntryKind::DroppedMail { msg } => encode_message(buf, msg),
        EntryKind::TimerFire { timer } => put_varint(buf, timer.0),
        EntryKind::Start | EntryKind::Crash | EntryKind::Restart => {}
    }
}

/// Decode one scroll entry (payloads copied; see [`decode_segment_shared`]).
pub fn decode_entry(buf: &[u8], pos: &mut usize) -> Result<ScrollEntry> {
    decode_entry_from(buf, pos, &PayloadSource::Copy, FORMAT_VERSION)
}

fn decode_entry_from(
    buf: &[u8],
    pos: &mut usize,
    source: &PayloadSource<'_>,
    version: u8,
) -> Result<ScrollEntry> {
    let tag = *buf.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    let pid = Pid(need(get_varint(buf, pos))? as u32);
    let local_seq = need(get_varint(buf, pos))?;
    let at = need(get_varint(buf, pos))?;
    let lamport = need(get_varint(buf, pos))?;
    let vc = need(get_clock(buf, pos, version))?;
    let randoms = need(get_u64s(buf, pos))?.into();
    let effects_fp = need(get_varint(buf, pos))?;
    let sends = need(get_varint(buf, pos))?;
    let kind = match tag {
        0 => EntryKind::Start,
        1 => EntryKind::Deliver {
            msg: decode_message_from(buf, pos, source, version)?.into(),
        },
        2 => EntryKind::TimerFire {
            timer: TimerId(need(get_varint(buf, pos))?),
        },
        3 => EntryKind::Crash,
        4 => EntryKind::Restart,
        5 => EntryKind::DroppedMail {
            msg: decode_message_from(buf, pos, source, version)?.into(),
        },
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(ScrollEntry {
        pid,
        local_seq,
        at,
        lamport,
        vc,
        kind,
        randoms,
        effects_fp,
        sends,
    })
}

/// Encode a whole segment (version byte + count + entries).
pub fn encode_segment(entries: &[ScrollEntry]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + entries.len() * 32);
    buf.push(FORMAT_VERSION);
    put_varint(&mut buf, entries.len() as u64);
    for e in entries {
        encode_entry(&mut buf, e);
    }
    buf
}

/// Decode a whole segment written by [`encode_segment`], copying each
/// payload into its own allocation.
pub fn decode_segment(buf: &[u8]) -> Result<Vec<ScrollEntry>> {
    decode_segment_from(buf, &PayloadSource::Copy)
}

/// Decode a whole segment held in a shared [`Payload`] buffer: every
/// decoded message payload is a zero-copy view aliasing `seg`'s
/// allocation ([`Payload::slice_of`]) — no per-entry payload
/// materialization at all. This is the spill re-read path: one buffer
/// per segment re-read, reference-count bumps per entry.
///
/// The views pin the whole segment buffer: retaining even one decoded
/// payload keeps `seg`'s allocation alive. Callers holding a payload
/// long past the segment should copy it out
/// ([`Payload::copy_from_slice`]) to release the buffer.
pub fn decode_segment_shared(seg: &Payload) -> Result<Vec<ScrollEntry>> {
    decode_segment_from(seg.as_slice(), &PayloadSource::View(seg))
}

fn decode_segment_from(buf: &[u8], source: &PayloadSource<'_>) -> Result<Vec<ScrollEntry>> {
    let mut pos = 0usize;
    let version = *buf.first().ok_or(CodecError::Truncated)?;
    pos += 1;
    // v1 (dense clocks) stays decodable: old segments on disk outlive
    // the in-memory representation that wrote them.
    if version == 0 || version > FORMAT_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let n = need(get_varint(buf, &mut pos))? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(decode_entry_from(buf, &mut pos, source, version)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msg() -> Message {
        Message {
            id: 42,
            src: Pid(1),
            dst: Pid(2),
            tag: 300,
            payload: b"payload".into(),
            sent_at: 1234,
            vc: VectorClock::from_vec(vec![3, 1, 0]),
            meta: MsgMeta {
                ckpt_index: 2,
                spec_id: 0,
                lamport: 9,
            },
        }
    }

    fn sample_entry(kind: EntryKind) -> ScrollEntry {
        ScrollEntry {
            pid: Pid(2),
            local_seq: 17,
            at: 888,
            lamport: 10,
            vc: VectorClock::from_vec(vec![3, 2, 5]),
            kind,
            randoms: vec![7, 0, u64::MAX].into(),
            effects_fp: 0xdeadbeef,
            sends: 3,
        }
    }

    #[test]
    fn message_roundtrip() {
        let m = sample_msg();
        let mut buf = Vec::new();
        encode_message(&mut buf, &m);
        let mut pos = 0;
        assert_eq!(decode_message(&buf, &mut pos).unwrap(), m);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn entry_roundtrip_all_kinds() {
        let kinds = vec![
            EntryKind::Start,
            EntryKind::Deliver {
                msg: sample_msg().into(),
            },
            EntryKind::TimerFire { timer: TimerId(77) },
            EntryKind::Crash,
            EntryKind::Restart,
            EntryKind::DroppedMail {
                msg: sample_msg().into(),
            },
        ];
        for kind in kinds {
            let e = sample_entry(kind);
            let mut buf = Vec::new();
            encode_entry(&mut buf, &e);
            let mut pos = 0;
            assert_eq!(decode_entry(&buf, &mut pos).unwrap(), e);
        }
    }

    #[test]
    fn segment_roundtrip() {
        let entries = vec![
            sample_entry(EntryKind::Start),
            sample_entry(EntryKind::Deliver {
                msg: sample_msg().into(),
            }),
        ];
        let buf = encode_segment(&entries);
        assert_eq!(decode_segment(&buf).unwrap(), entries);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = encode_segment(&[]);
        buf[0] = 99;
        assert_eq!(decode_segment(&buf), Err(CodecError::BadVersion(99)));
    }

    #[test]
    fn truncation_rejected() {
        let entries = vec![sample_entry(EntryKind::Deliver {
            msg: sample_msg().into(),
        })];
        let buf = encode_segment(&entries);
        for cutoff in [1usize, buf.len() / 2, buf.len() - 1] {
            assert!(decode_segment(&buf[..cutoff]).is_err(), "cutoff {cutoff}");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let e = sample_entry(EntryKind::Start);
        let mut buf = Vec::new();
        encode_entry(&mut buf, &e);
        buf[0] = 200;
        let mut pos = 0;
        assert_eq!(decode_entry(&buf, &mut pos), Err(CodecError::BadTag(200)));
    }
}
