//! # fixd-scroll — the Scroll
//!
//! Reproduction of the **Scroll** component of FixD (paper §3.1, Fig. 1;
//! implementation proposal §4.1):
//!
//! > *"we need a common Scroll where all or most of the components of our
//! > distributed application can record their actions and that may be used
//! > for playback or execution path investigation. It is important to
//! > notice that only nondeterministic actions (involving other
//! > components) and their outcome need to be recorded by the Scroll."*
//!
//! Concretely this crate provides:
//!
//! * [`entry`] / [`codec`] — the log entry vocabulary and a compact,
//!   self-contained binary format (the role liblog's interception log and
//!   Flashback's kernel log play in §4.1);
//! * [`record`] — a [`ScrollRecorder`] driver that observes a running
//!   [`fixd_runtime::World`] and records *only* the nondeterministic
//!   actions: deliveries, timer firings, random draws, crashes;
//! * [`replay`] — deterministic local playback of one process from its
//!   scroll, remote entities treated as black boxes (§2.2), with fidelity
//!   validation against recorded effect fingerprints;
//! * [`merge`] — reconstruction of a *globally consistent* total order
//!   from the per-process logs (§2.2 "record and reconstruct a globally
//!   consistent run of the system");
//! * [`cut`] — consistent-cut computation over the merged log, the
//!   building block the Time Machine uses to agree on global checkpoints;
//! * [`storage`], [`query`], [`stats`] — persistence, trace queries, and
//!   the measurements behind experiment **F1**.

pub mod codec;
pub mod cut;
pub mod entry;
pub mod merge;
pub mod query;
pub mod record;
pub mod replay;
pub mod stats;
pub mod storage;

pub use cut::{latest_consistent_cut, Cut};
pub use entry::{EntryKind, ScrollEntry};
pub use merge::{check_causal_consistency, merge_total_order, CausalViolation};
pub use query::ScrollQuery;
pub use record::{record_run, record_run_sharded, RecordConfig, ScrollRecorder};
pub use replay::{replay_process, Fidelity, ReplayOutcome};
pub use stats::ScrollStats;
pub use storage::{ScrollStore, SpillConfig, StorageError};
