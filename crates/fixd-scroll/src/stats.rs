//! Scroll statistics — the measurements behind experiment **F1**
//! (Scroll overhead and log size).

use fixd_runtime::Pid;

use crate::entry::EntryKind;
use crate::storage::ScrollStore;

/// Aggregate statistics over a scroll store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrollStats {
    pub total_entries: usize,
    pub starts: usize,
    pub deliveries: usize,
    pub timer_fires: usize,
    pub crashes: usize,
    pub restarts: usize,
    pub dropped_mail: usize,
    /// Total random draws recorded.
    pub random_draws: usize,
    /// Total sends performed by recorded handlers (not entries themselves
    /// — evidence for the "only nondeterministic actions" claim: sends are
    /// deterministic consequences and need no entry).
    pub handler_sends: u64,
    /// Encoded size of the whole store, bytes.
    pub encoded_bytes: usize,
    /// Per-process entry counts.
    pub per_process: Vec<usize>,
}

impl ScrollStats {
    /// Compute statistics for `store`.
    pub fn compute(store: &ScrollStore) -> Self {
        let mut s = ScrollStats {
            per_process: vec![0; store.width()],
            ..Default::default()
        };
        for i in 0..store.width() {
            let pid = Pid(i as u32);
            for e in store.scroll(pid).iter() {
                s.total_entries += 1;
                s.per_process[i] += 1;
                s.random_draws += e.randoms.len();
                s.handler_sends += e.sends;
                match &e.kind {
                    EntryKind::Start => s.starts += 1,
                    EntryKind::Deliver { .. } => s.deliveries += 1,
                    EntryKind::TimerFire { .. } => s.timer_fires += 1,
                    EntryKind::Crash => s.crashes += 1,
                    EntryKind::Restart => s.restarts += 1,
                    EntryKind::DroppedMail { .. } => s.dropped_mail += 1,
                }
            }
        }
        s.encoded_bytes = store.encoded_size();
        s
    }

    /// Mean encoded bytes per entry (0 if empty).
    pub fn bytes_per_entry(&self) -> f64 {
        if self.total_entries == 0 {
            0.0
        } else {
            self.encoded_bytes as f64 / self.total_entries as f64
        }
    }

    /// One-line summary for experiment output.
    pub fn summary(&self) -> String {
        format!(
            "entries={} (deliver={} timer={} start={} crash={}) draws={} bytes={} ({:.1} B/entry)",
            self.total_entries,
            self.deliveries,
            self.timer_fires,
            self.starts,
            self.crashes,
            self.random_draws,
            self.encoded_bytes,
            self.bytes_per_entry()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::ScrollEntry;
    use fixd_runtime::{TimerId, VectorClock};

    fn push(store: &mut ScrollStore, pid: u32, seq: u64, kind: EntryKind, randoms: Vec<u64>) {
        store.append(ScrollEntry {
            pid: Pid(pid),
            local_seq: seq,
            at: 0,
            lamport: seq,
            vc: VectorClock::new(2),
            kind,
            randoms: randoms.into(),
            effects_fp: 0,
            sends: 2,
        });
    }

    #[test]
    fn counts_by_kind() {
        let mut store = ScrollStore::new(2);
        push(&mut store, 0, 0, EntryKind::Start, vec![]);
        push(
            &mut store,
            0,
            1,
            EntryKind::TimerFire { timer: TimerId(1) },
            vec![1, 2],
        );
        push(&mut store, 1, 0, EntryKind::Start, vec![]);
        push(&mut store, 1, 1, EntryKind::Crash, vec![]);
        let s = ScrollStats::compute(&store);
        assert_eq!(s.total_entries, 4);
        assert_eq!(s.starts, 2);
        assert_eq!(s.timer_fires, 1);
        assert_eq!(s.crashes, 1);
        assert_eq!(s.random_draws, 2);
        assert_eq!(s.handler_sends, 8);
        assert_eq!(s.per_process, vec![2, 2]);
        assert!(s.encoded_bytes > 0);
        assert!(s.bytes_per_entry() > 0.0);
    }

    #[test]
    fn empty_store_stats() {
        let s = ScrollStats::compute(&ScrollStore::new(3));
        assert_eq!(s.total_entries, 0);
        assert_eq!(s.bytes_per_entry(), 0.0);
        assert!(s.summary().contains("entries=0"));
    }
}
