//! Merging per-process scrolls into a globally consistent total order.
//!
//! Paper §2.2: *"The collective local logs for all the entities in the
//! system can be combined and analyzed to provide insight on the behavior
//! of the system"*, and both playback schemes "generally make use of
//! logging to impose a total order on all the messages sent in the
//! system". We impose that total order with Lamport timestamps (ties
//! broken by pid, then local sequence), which is guaranteed to be a linear
//! extension of the happens-before partial order; vector clocks are then
//! used to *verify* the merge is causally consistent.

use crate::entry::{EntryKind, ScrollEntry};
use crate::storage::ScrollStore;

/// A detected violation of causal order in a merged log.
#[derive(Clone, Debug, PartialEq)]
pub struct CausalViolation {
    /// Index (in the merged order) of the earlier-placed entry.
    pub earlier_index: usize,
    /// Index of the later-placed entry that causally precedes it.
    pub later_index: usize,
}

/// Merge all per-process scrolls into one total order consistent with
/// causality: sorted by `(lamport, pid, local_seq)`.
pub fn merge_total_order(store: &ScrollStore) -> Vec<ScrollEntry> {
    let mut all: Vec<ScrollEntry> = (0..store.width())
        .flat_map(|i| store.scroll(fixd_runtime::Pid(i as u32)).into_owned())
        .collect();
    all.sort_by_key(|a| (a.lamport, a.pid, a.local_seq));
    all
}

/// Verify a merged order is a linear extension of happens-before: no entry
/// is placed before another entry that causally precedes it. `O(n²)` in
/// the worst case; intended for validation and tests, not hot paths.
pub fn check_causal_consistency(merged: &[ScrollEntry]) -> Result<(), CausalViolation> {
    for i in 0..merged.len() {
        for j in (i + 1)..merged.len() {
            // If merged[j] strictly happens-before merged[i], order is bad.
            if merged[j].vc.leq(&merged[i].vc) && merged[j].vc != merged[i].vc {
                return Err(CausalViolation {
                    earlier_index: i,
                    later_index: j,
                });
            }
        }
    }
    Ok(())
}

/// Check the *message discipline*: every delivery in the merged log must
/// appear after some entry of the sender whose vector clock dominates the
/// message's send clock (i.e. the send is within the recorded history).
/// Deliveries from unrecorded senders (black boxes) are skipped.
pub fn check_send_before_receive(merged: &[ScrollEntry]) -> Result<(), CausalViolation> {
    for (i, e) in merged.iter().enumerate() {
        let EntryKind::Deliver { msg } = &e.kind else {
            continue;
        };
        let sender_recorded = merged.iter().any(|f| f.pid == msg.src);
        if !sender_recorded {
            continue;
        }
        let send_seen_earlier = merged[..i]
            .iter()
            .any(|f| f.pid == msg.src && msg.vc.get(msg.src) <= f.vc.get(msg.src));
        // The send itself isn't an entry; it is subsumed by the sender's
        // handler entry that performed it. If the sender performed the
        // send, some earlier entry of the sender has vc[src] >= msg.vc[src].
        if !send_seen_earlier && msg.vc.get(msg.src) > 0 {
            return Err(CausalViolation {
                earlier_index: i,
                later_index: i,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{record_run, RecordConfig};
    use fixd_runtime::{Context, Message, Pid, Program, Topology, World, WorldConfig};

    /// Gossip: every process forwards each first-seen rumor to its ring
    /// neighbor; generates rich causal structure.
    struct Gossip {
        seen: u64,
        n: usize,
    }
    impl Program for Gossip {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                let topo = Topology::ring(self.n);
                for &nb in topo.neighbors(ctx.pid()) {
                    ctx.send(nb, 1, vec![3]);
                }
            }
        }
        fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
            self.seen += 1;
            if msg.payload[0] > 0 {
                let topo = Topology::ring(self.n);
                for &nb in topo.neighbors(ctx.pid()) {
                    ctx.send(nb, 1, vec![msg.payload[0] - 1]);
                }
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            self.seen.to_le_bytes().to_vec()
        }
        fn restore(&mut self, b: &[u8]) {
            self.seen = u64::from_le_bytes(b.try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Gossip {
                seen: self.seen,
                n: self.n,
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn gossip_store(n: usize, seed: u64, jitter: bool) -> ScrollStore {
        let mut cfg = WorldConfig::seeded(seed);
        if jitter {
            cfg.net = fixd_runtime::NetworkConfig::jittery(1, 50);
        }
        let mut w = World::new(cfg);
        for _ in 0..n {
            w.add_process(Box::new(Gossip { seen: 0, n }));
        }
        let (store, _) = record_run(&mut w, RecordConfig::default(), 10_000);
        store
    }

    #[test]
    fn merge_is_causally_consistent_fifo() {
        let store = gossip_store(4, 1, false);
        let merged = merge_total_order(&store);
        assert!(merged.len() >= 4);
        check_causal_consistency(&merged).unwrap();
        check_send_before_receive(&merged).unwrap();
    }

    #[test]
    fn merge_is_causally_consistent_with_reordering_network() {
        for seed in 0..5 {
            let store = gossip_store(5, seed, true);
            let merged = merge_total_order(&store);
            check_causal_consistency(&merged).unwrap();
            check_send_before_receive(&merged).unwrap();
        }
    }

    #[test]
    fn merge_preserves_local_order() {
        let store = gossip_store(4, 3, true);
        let merged = merge_total_order(&store);
        for pid in 0..4u32 {
            let seqs: Vec<u64> = merged
                .iter()
                .filter(|e| e.pid == Pid(pid))
                .map(|e| e.local_seq)
                .collect();
            assert!(seqs.windows(2).all(|w| w[0] < w[1]), "P{pid} order broken");
        }
    }

    #[test]
    fn violation_detected_in_shuffled_log() {
        let store = gossip_store(4, 1, false);
        let mut merged = merge_total_order(&store);
        // Force a violation: move the last entry first (it causally
        // depends on earlier ones in this gossip pattern).
        let last = merged.pop().unwrap();
        merged.insert(0, last);
        assert!(check_causal_consistency(&merged).is_err());
    }
}
