//! The scroll store: per-process logs with size accounting and optional
//! file persistence.

use std::io::{Read, Write};
use std::path::Path;

use fixd_runtime::Pid;

use crate::codec::{self, CodecError};
use crate::entry::ScrollEntry;

/// In-memory store of per-process scrolls. The "common Scroll" of the
/// paper is logically one log; physically (as in liblog) each process
/// appends locally and the logs are merged on demand ([`crate::merge`]).
#[derive(Clone, Debug, Default)]
pub struct ScrollStore {
    per_pid: Vec<Vec<ScrollEntry>>,
}

impl ScrollStore {
    /// A store for `n` processes.
    pub fn new(n: usize) -> Self {
        Self {
            per_pid: vec![Vec::new(); n],
        }
    }

    /// Number of processes covered.
    pub fn width(&self) -> usize {
        self.per_pid.len()
    }

    /// Append an entry to its process's scroll. Enforces dense local
    /// sequence numbers.
    pub fn append(&mut self, e: ScrollEntry) {
        let scroll = &mut self.per_pid[e.pid.idx()];
        debug_assert_eq!(e.local_seq, scroll.len() as u64, "non-dense local_seq");
        scroll.push(e);
    }

    /// The scroll of one process, oldest first.
    pub fn scroll(&self, pid: Pid) -> &[ScrollEntry] {
        self.per_pid
            .get(pid.idx())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total entries across all processes.
    pub fn total_entries(&self) -> usize {
        self.per_pid.iter().map(Vec::len).sum()
    }

    /// Entries of `pid` truncated to the first `n` (used when rolling a
    /// process back: its scroll beyond the restored point is invalid).
    pub fn truncate(&mut self, pid: Pid, n: usize) {
        self.per_pid[pid.idx()].truncate(n);
    }

    /// Encode one process's scroll as a segment.
    pub fn encode_segment(&self, pid: Pid) -> Vec<u8> {
        codec::encode_segment(self.scroll(pid))
    }

    /// Total encoded size in bytes across all processes (the F1 "log
    /// size" metric).
    pub fn encoded_size(&self) -> usize {
        (0..self.per_pid.len())
            .map(|i| self.encode_segment(Pid(i as u32)).len())
            .sum()
    }

    /// Payload bytes referenced by the store, counting each shared
    /// allocation **once**. Recorded entries alias the buffers the
    /// runtime delivered (and duplicates re-deliver the same buffer), so
    /// this resident-memory figure is usually far below the sum of
    /// per-entry payload lengths — the zero-copy property, measured.
    pub fn unique_payload_bytes(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.per_pid
            .iter()
            .flatten()
            .filter_map(|e| e.kind.payload())
            .filter(|p| seen.insert(p.as_slice().as_ptr()))
            .map(|p| p.len())
            .sum()
    }

    /// Persist all segments to `dir` as `scroll-<pid>.bin`.
    pub fn save_dir(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for i in 0..self.per_pid.len() {
            let bytes = self.encode_segment(Pid(i as u32));
            let mut f = std::fs::File::create(dir.join(format!("scroll-{i}.bin")))?;
            f.write_all(&bytes)?;
        }
        Ok(())
    }

    /// Load a store previously written by [`ScrollStore::save_dir`].
    pub fn load_dir(dir: &Path, n: usize) -> std::io::Result<Result<Self, CodecError>> {
        let mut store = ScrollStore::new(n);
        for i in 0..n {
            let mut bytes = Vec::new();
            std::fs::File::open(dir.join(format!("scroll-{i}.bin")))?.read_to_end(&mut bytes)?;
            match codec::decode_segment(&bytes) {
                Ok(entries) => store.per_pid[i] = entries,
                Err(e) => return Ok(Err(e)),
            }
        }
        Ok(Ok(store))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryKind;
    use fixd_runtime::VectorClock;

    fn entry(pid: u32, seq: u64) -> ScrollEntry {
        ScrollEntry {
            pid: Pid(pid),
            local_seq: seq,
            at: seq * 10,
            lamport: seq + 1,
            vc: VectorClock::from_vec(vec![seq + 1, 0]),
            kind: EntryKind::Start,
            randoms: vec![],
            effects_fp: 0,
            sends: 0,
        }
    }

    #[test]
    fn append_and_read_back() {
        let mut s = ScrollStore::new(2);
        s.append(entry(0, 0));
        s.append(entry(0, 1));
        s.append(entry(1, 0));
        assert_eq!(s.scroll(Pid(0)).len(), 2);
        assert_eq!(s.scroll(Pid(1)).len(), 1);
        assert_eq!(s.total_entries(), 3);
        assert!(s.scroll(Pid(9)).is_empty());
    }

    #[test]
    fn truncate_drops_tail() {
        let mut s = ScrollStore::new(1);
        for i in 0..5 {
            s.append(entry(0, i));
        }
        s.truncate(Pid(0), 2);
        assert_eq!(s.scroll(Pid(0)).len(), 2);
    }

    #[test]
    fn encoded_size_grows_with_entries() {
        let mut s = ScrollStore::new(1);
        let empty = s.encoded_size();
        for i in 0..10 {
            s.append(entry(0, i));
        }
        assert!(s.encoded_size() > empty);
    }

    #[test]
    fn save_and_load_roundtrip() {
        let mut s = ScrollStore::new(2);
        s.append(entry(0, 0));
        s.append(entry(1, 0));
        s.append(entry(1, 1));
        let dir = std::env::temp_dir().join(format!("fixd-scroll-test-{}", std::process::id()));
        s.save_dir(&dir).unwrap();
        let loaded = ScrollStore::load_dir(&dir, 2).unwrap().unwrap();
        assert_eq!(loaded.scroll(Pid(0)), s.scroll(Pid(0)));
        assert_eq!(loaded.scroll(Pid(1)), s.scroll(Pid(1)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
