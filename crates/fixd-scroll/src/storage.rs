//! The scroll store: per-process logs with size accounting, sealed
//! segments spilled to durable storage, and file persistence.
//!
//! Long supervised runs used to grow without bound: every entry of every
//! process stayed resident forever. The store now seals a process's
//! scroll prefix once its resident weight passes a threshold: the prefix
//! is encoded through the ordinary segment codec (same wire format as
//! [`ScrollStore::save_dir`]) and written to a [`SharedDisk`] as a
//! **content-addressed blob** (keyed by the FNV-1a hash of its bytes, so
//! identical segments — e.g. across replicas or re-recorded runs sharing
//! one disk — are stored once). [`ScrollStore::scroll`] transparently
//! re-reads spilled segments, so queries, merges, and replay see the
//! full log while resident memory stays bounded by
//! `threshold × processes`.

use std::borrow::Cow;
use std::io::{Read, Write};
use std::path::Path;

use fixd_runtime::{Pid, SharedDisk};

use crate::codec::{self, CodecError};
use crate::entry::ScrollEntry;

/// Structured error from scroll persistence: either the filesystem
/// failed or the bytes did not decode.
#[derive(Debug)]
pub enum StorageError {
    /// Filesystem-level failure (missing file, permissions, short write).
    Io(std::io::Error),
    /// The bytes were read but are not a valid scroll segment.
    Codec(CodecError),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "scroll storage I/O error: {e}"),
            StorageError::Codec(e) => write!(f, "scroll storage codec error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Codec(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<CodecError> for StorageError {
    fn from(e: CodecError) -> Self {
        StorageError::Codec(e)
    }
}

/// Where and when sealed scroll segments are spilled.
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// The durable layer sealed segments are written to (synced — a
    /// crash after a spill loses nothing).
    pub disk: SharedDisk,
    /// Per-process resident-weight threshold in bytes: when a scroll's
    /// resident entries weigh at least this much, the whole resident
    /// prefix is sealed and spilled.
    pub threshold_bytes: usize,
}

impl SpillConfig {
    /// Spill to `disk` once a per-process scroll weighs `threshold_bytes`.
    pub fn new(disk: SharedDisk, threshold_bytes: usize) -> Self {
        assert!(threshold_bytes > 0, "spill threshold must be positive");
        Self {
            disk,
            threshold_bytes,
        }
    }
}

/// One sealed, spilled scroll segment.
#[derive(Clone, Debug, PartialEq, Eq)]
struct SegmentRef {
    /// Content hash of the encoded segment = its key on the disk.
    key: u64,
    /// Entries inside.
    entries: usize,
    /// Encoded size in bytes.
    bytes: usize,
}

fn disk_key(key: u64) -> Vec<u8> {
    format!("scrollseg/{key:016x}").into_bytes()
}

/// Approximate resident weight of one entry: fixed header fields plus
/// the variable payload, random draws, and clock components. Used only
/// to decide when to seal; the spilled blob's exact size is recorded in
/// its [`SegmentRef`].
fn entry_weight(e: &ScrollEntry) -> usize {
    let payload = e.kind.payload().map_or(0, |p| p.len());
    48 + payload + 8 * e.randoms.len() + 16 * e.vc.nnz()
}

/// In-memory store of per-process scrolls. The "common Scroll" of the
/// paper is logically one log; physically (as in liblog) each process
/// appends locally and the logs are merged on demand ([`crate::merge`]).
/// With a [`SpillConfig`] installed, only each scroll's tail is
/// resident; sealed prefixes live on the configured [`SharedDisk`].
#[derive(Clone, Debug, Default)]
pub struct ScrollStore {
    /// Resident tails, per process.
    per_pid: Vec<Vec<ScrollEntry>>,
    /// Sealed, spilled prefixes, per process, oldest first.
    spilled: Vec<Vec<SegmentRef>>,
    /// Approximate resident bytes per process (see [`entry_weight`]).
    resident_weight: Vec<usize>,
    spill: Option<SpillConfig>,
}

impl ScrollStore {
    /// A store for `n` processes, fully resident.
    pub fn new(n: usize) -> Self {
        Self {
            per_pid: vec![Vec::new(); n],
            spilled: vec![Vec::new(); n],
            resident_weight: vec![0; n],
            spill: None,
        }
    }

    /// A store for `n` processes that seals and spills each scroll's
    /// prefix to `spill.disk` whenever its resident weight reaches
    /// `spill.threshold_bytes`.
    pub fn with_spill(n: usize, spill: SpillConfig) -> Self {
        let mut s = Self::new(n);
        s.spill = Some(spill);
        s
    }

    /// Install (or replace) the spill configuration on an existing store.
    pub fn enable_spill(&mut self, spill: SpillConfig) {
        self.spill = Some(spill);
    }

    /// The active spill configuration, if any.
    pub fn spill_config(&self) -> Option<&SpillConfig> {
        self.spill.as_ref()
    }

    /// Number of processes covered.
    pub fn width(&self) -> usize {
        self.per_pid.len()
    }

    fn spilled_entry_count(&self, pid: Pid) -> usize {
        self.spilled
            .get(pid.idx())
            .map_or(0, |v| v.iter().map(|s| s.entries).sum())
    }

    /// Append an entry to its process's scroll. Enforces dense local
    /// sequence numbers. May seal and spill the resident prefix.
    pub fn append(&mut self, e: ScrollEntry) {
        let i = e.pid.idx();
        debug_assert_eq!(
            e.local_seq,
            (self.spilled_entry_count(e.pid) + self.per_pid[i].len()) as u64,
            "non-dense local_seq"
        );
        self.resident_weight[i] += entry_weight(&e);
        self.per_pid[i].push(e);
        if let Some(cfg) = &self.spill {
            if self.resident_weight[i] >= cfg.threshold_bytes {
                self.seal(Pid(i as u32));
            }
        }
    }

    /// Reassemble per-shard stores into one. Each input covers the full
    /// pid space but holds entries only for the pids its shard owned;
    /// ownership is disjoint, so column `p` of the result is moved from
    /// the unique input that recorded for `p`. Two inputs both holding
    /// entries (resident or spilled) for the same pid is a caller bug
    /// and panics. The first store's spill config is kept.
    pub fn merge_disjoint(stores: impl IntoIterator<Item = ScrollStore>) -> ScrollStore {
        let mut out: Option<ScrollStore> = None;
        for mut s in stores {
            let Some(acc) = &mut out else {
                out = Some(s);
                continue;
            };
            assert_eq!(
                acc.width(),
                s.width(),
                "merge_disjoint: stores must cover the same pid space"
            );
            for i in 0..s.per_pid.len() {
                if s.per_pid[i].is_empty() && s.spilled[i].is_empty() {
                    continue;
                }
                assert!(
                    acc.per_pid[i].is_empty() && acc.spilled[i].is_empty(),
                    "merge_disjoint: pid {i} recorded by more than one store"
                );
                acc.per_pid[i] = std::mem::take(&mut s.per_pid[i]);
                acc.spilled[i] = std::mem::take(&mut s.spilled[i]);
                acc.resident_weight[i] = s.resident_weight[i];
            }
        }
        out.unwrap_or_default()
    }

    /// Seal `pid`'s resident entries into a segment and spill it to the
    /// configured disk. No-op without a spill config or with an empty
    /// resident tail.
    pub fn seal(&mut self, pid: Pid) {
        self.seal_impl(pid, None);
    }

    /// Like [`ScrollStore::seal`], but a seal is also a release point:
    /// once the entries live on disk, the resident copies' message
    /// boxes are offered back to `world`'s step arena. A box some other
    /// holder (the trace, a Time-Machine log) still aliases is left to
    /// the allocator as usual; one the scroll held last skips the
    /// allocator round-trip entirely.
    pub fn seal_reclaiming(&mut self, pid: Pid, world: &mut fixd_runtime::World) {
        self.seal_impl(pid, Some(world));
    }

    fn seal_impl(&mut self, pid: Pid, mut world: Option<&mut fixd_runtime::World>) {
        let Some(cfg) = &self.spill else { return };
        let i = pid.idx();
        if self.per_pid[i].is_empty() {
            return;
        }
        let blob = codec::encode_segment(&self.per_pid[i]);
        // Content-addressed: identical segments (same bytes) are written
        // once per disk. A 64-bit hash can collide, so verify the stored
        // blob's content and probe deterministically to the next key on
        // mismatch (same discipline as `fixd_store::PageStore::intern`).
        let mut key = fixd_runtime::wire::fnv1a(&blob);
        loop {
            match cfg.disk.read(&disk_key(key)) {
                None => {
                    cfg.disk.write(&disk_key(key), &blob);
                    cfg.disk.sync();
                    break;
                }
                Some(existing) if existing == blob => break,
                Some(_) => key = key.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1),
            }
        }
        self.spilled[i].push(SegmentRef {
            key,
            entries: self.per_pid[i].len(),
            bytes: blob.len(),
        });
        if let Some(w) = world.as_mut() {
            for e in self.per_pid[i].drain(..) {
                if let crate::entry::EntryKind::Deliver { msg }
                | crate::entry::EntryKind::DroppedMail { msg } = e.kind
                {
                    w.reclaim_message(msg);
                }
            }
        } else {
            self.per_pid[i].clear();
        }
        self.resident_weight[i] = 0;
    }

    /// Re-read one spilled segment from the disk. The blob becomes one
    /// shared buffer and every decoded entry's payload is a zero-copy
    /// view into it ([`codec::decode_segment_shared`]) — re-reading a
    /// segment of N messages performs one buffer materialization, not N
    /// payload allocations. The views pin the blob: a caller retaining
    /// one entry's payload keeps the whole segment buffer alive (copy
    /// out via `Payload::copy_from_slice` for long retention).
    fn read_segment(&self, seg: &SegmentRef) -> Vec<ScrollEntry> {
        let cfg = self
            .spill
            .as_ref()
            .expect("spilled segments require a spill config");
        let blob = cfg.disk.read(&disk_key(seg.key)).unwrap_or_else(|| {
            panic!(
                "spilled scroll segment {:016x} missing from SharedDisk",
                seg.key
            )
        });
        // Untracked: the segment blob is framing + clocks + payloads,
        // not message-payload traffic; the per-entry views below count
        // as aliased (bytes a copying decoder would have re-copied).
        let shared = fixd_runtime::Payload::untracked(blob);
        codec::decode_segment_shared(&shared)
            .unwrap_or_else(|e| panic!("spilled scroll segment {:016x} corrupt: {e}", seg.key))
    }

    /// The scroll of one process, oldest first — including any sealed
    /// segments, which are transparently re-read from the spill disk
    /// (borrowed, zero-cost, when nothing was spilled).
    pub fn scroll(&self, pid: Pid) -> Cow<'_, [ScrollEntry]> {
        let Some(resident) = self.per_pid.get(pid.idx()) else {
            return Cow::Borrowed(&[]);
        };
        let spilled = &self.spilled[pid.idx()];
        if spilled.is_empty() {
            return Cow::Borrowed(resident.as_slice());
        }
        let mut full =
            Vec::with_capacity(spilled.iter().map(|s| s.entries).sum::<usize>() + resident.len());
        for seg in spilled {
            full.extend(self.read_segment(seg));
        }
        full.extend(resident.iter().cloned());
        Cow::Owned(full)
    }

    /// Total entries across all processes (resident + spilled).
    pub fn total_entries(&self) -> usize {
        self.per_pid.iter().map(Vec::len).sum::<usize>()
            + self
                .spilled
                .iter()
                .flatten()
                .map(|s| s.entries)
                .sum::<usize>()
    }

    /// Entries currently resident in memory, across all processes.
    pub fn resident_entries(&self) -> usize {
        self.per_pid.iter().map(Vec::len).sum()
    }

    /// Approximate resident entry bytes across all processes — the
    /// figure the spill threshold bounds (`< threshold × width` at every
    /// point in a spilling run).
    pub fn resident_bytes(&self) -> usize {
        self.resident_weight.iter().sum()
    }

    /// Approximate resident entry bytes of one process.
    pub fn resident_bytes_of(&self, pid: Pid) -> usize {
        self.resident_weight.get(pid.idx()).copied().unwrap_or(0)
    }

    /// Sealed segments spilled so far, across all processes.
    pub fn spilled_segments(&self) -> usize {
        self.spilled.iter().map(Vec::len).sum()
    }

    /// Encoded bytes spilled so far, across all processes (distinct
    /// segments may share disk blobs; this sums the logical sizes).
    pub fn spilled_bytes(&self) -> usize {
        self.spilled.iter().flatten().map(|s| s.bytes).sum()
    }

    /// Entries of `pid` truncated to the first `n` (used when rolling a
    /// process back: its scroll beyond the restored point is invalid).
    /// Truncating into a sealed segment un-spills: the surviving prefix
    /// becomes resident again (spilled blobs stay on the disk — they are
    /// content-addressed and may back other stores).
    pub fn truncate(&mut self, pid: Pid, n: usize) {
        let i = pid.idx();
        let spilled_n = self.spilled_entry_count(pid);
        if n >= spilled_n {
            self.per_pid[i].truncate(n - spilled_n);
        } else {
            let mut full = Vec::with_capacity(n);
            for seg in &self.spilled[i] {
                if full.len() >= n {
                    break;
                }
                full.extend(self.read_segment(seg));
            }
            full.truncate(n);
            self.spilled[i].clear();
            self.per_pid[i] = full;
        }
        self.resident_weight[i] = self.per_pid[i].iter().map(entry_weight).sum();
        // Un-spilling may have re-resided far more than the threshold;
        // re-seal so the resident bound holds even if nothing is ever
        // appended again.
        if let Some(cfg) = &self.spill {
            if self.resident_weight[i] >= cfg.threshold_bytes {
                self.seal(Pid(i as u32));
            }
        }
    }

    /// Encode one process's full scroll as a segment (spilled prefix
    /// included — the wire format is identical with or without spilling).
    pub fn encode_segment(&self, pid: Pid) -> Vec<u8> {
        codec::encode_segment(&self.scroll(pid))
    }

    /// Total encoded size in bytes across all processes (the F1 "log
    /// size" metric).
    pub fn encoded_size(&self) -> usize {
        (0..self.per_pid.len())
            .map(|i| self.encode_segment(Pid(i as u32)).len())
            .sum()
    }

    /// Payload bytes referenced by **resident** entries, counting each
    /// shared allocation once. Recorded entries alias the buffers the
    /// runtime delivered (and duplicates re-deliver the same buffer), so
    /// this resident-memory figure is usually far below the sum of
    /// per-entry payload lengths — the zero-copy property, measured.
    /// Spilled entries hold no payload memory at all.
    pub fn unique_payload_bytes(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        self.per_pid
            .iter()
            .flatten()
            .filter_map(|e| e.kind.payload())
            .filter(|p| seen.insert(p.as_slice().as_ptr()))
            .map(|p| p.len())
            .sum()
    }

    /// Persist all segments to `dir` as `scroll-<pid>.bin` (full logical
    /// scrolls: spilled prefixes are folded back in).
    pub fn save_dir(&self, dir: &Path) -> Result<(), StorageError> {
        std::fs::create_dir_all(dir)?;
        for i in 0..self.per_pid.len() {
            let bytes = self.encode_segment(Pid(i as u32));
            let mut f = std::fs::File::create(dir.join(format!("scroll-{i}.bin")))?;
            f.write_all(&bytes)?;
        }
        Ok(())
    }

    /// Load a store previously written by [`ScrollStore::save_dir`].
    /// The loaded store is fully resident and has no spill config.
    pub fn load_dir(dir: &Path, n: usize) -> Result<Self, StorageError> {
        let mut store = ScrollStore::new(n);
        for i in 0..n {
            let mut bytes = Vec::new();
            std::fs::File::open(dir.join(format!("scroll-{i}.bin")))?.read_to_end(&mut bytes)?;
            store.per_pid[i] = codec::decode_segment(&bytes)?;
            store.resident_weight[i] = store.per_pid[i].iter().map(entry_weight).sum();
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryKind;
    use fixd_runtime::{Message, MsgMeta, VectorClock};

    fn entry(pid: u32, seq: u64) -> ScrollEntry {
        ScrollEntry {
            pid: Pid(pid),
            local_seq: seq,
            at: seq * 10,
            lamport: seq + 1,
            vc: VectorClock::from_vec(vec![seq + 1, 0]),
            kind: EntryKind::Start,
            randoms: vec![].into(),
            effects_fp: 0,
            sends: 0,
        }
    }

    fn deliver_entry(pid: u32, seq: u64, payload: Vec<u8>) -> ScrollEntry {
        ScrollEntry {
            kind: EntryKind::Deliver {
                msg: Message {
                    id: seq,
                    src: Pid(1 - pid),
                    dst: Pid(pid),
                    tag: 1,
                    payload: payload.into(),
                    sent_at: seq,
                    vc: VectorClock::from_vec(vec![seq, 0]),
                    meta: MsgMeta::default(),
                }
                .into(),
            },
            ..entry(pid, seq)
        }
    }

    #[test]
    fn append_and_read_back() {
        let mut s = ScrollStore::new(2);
        s.append(entry(0, 0));
        s.append(entry(0, 1));
        s.append(entry(1, 0));
        assert_eq!(s.scroll(Pid(0)).len(), 2);
        assert_eq!(s.scroll(Pid(1)).len(), 1);
        assert_eq!(s.total_entries(), 3);
        assert!(s.scroll(Pid(9)).is_empty());
    }

    #[test]
    fn truncate_drops_tail() {
        let mut s = ScrollStore::new(1);
        for i in 0..5 {
            s.append(entry(0, i));
        }
        s.truncate(Pid(0), 2);
        assert_eq!(s.scroll(Pid(0)).len(), 2);
    }

    #[test]
    fn encoded_size_grows_with_entries() {
        let mut s = ScrollStore::new(1);
        let empty = s.encoded_size();
        for i in 0..10 {
            s.append(entry(0, i));
        }
        assert!(s.encoded_size() > empty);
    }

    #[test]
    fn save_and_load_roundtrip() {
        let mut s = ScrollStore::new(2);
        s.append(entry(0, 0));
        s.append(entry(1, 0));
        s.append(entry(1, 1));
        let dir = std::env::temp_dir().join(format!("fixd-scroll-test-{}", std::process::id()));
        s.save_dir(&dir).unwrap();
        let loaded = ScrollStore::load_dir(&dir, 2).unwrap();
        assert_eq!(loaded.scroll(Pid(0)), s.scroll(Pid(0)));
        assert_eq!(loaded.scroll(Pid(1)), s.scroll(Pid(1)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dir_reports_structured_errors() {
        let dir = std::env::temp_dir().join(format!(
            "fixd-scroll-err-{}-{}",
            std::process::id(),
            line!()
        ));
        // Missing directory → Io.
        match ScrollStore::load_dir(&dir, 1) {
            Err(StorageError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
        // Corrupt bytes → Codec (and the error displays + sources).
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("scroll-0.bin"), [99u8, 1, 2, 3]).unwrap();
        match ScrollStore::load_dir(&dir, 1) {
            Err(e @ StorageError::Codec(_)) => {
                assert!(e.to_string().contains("codec"));
                assert!(std::error::Error::source(&e).is_some());
            }
            other => panic!("expected Codec error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spilled_save_dir_roundtrips_full_scroll() {
        // Satellite: save/load through a temp dir with a spilling store —
        // the persisted bytes are the full logical scroll.
        let disk = SharedDisk::new();
        let mut s = ScrollStore::with_spill(2, SpillConfig::new(disk, 256));
        for i in 0..40 {
            s.append(deliver_entry(0, i, vec![i as u8; 24]));
        }
        assert!(s.spilled_segments() > 0);
        let dir = std::env::temp_dir().join(format!("fixd-scroll-spill-{}", std::process::id()));
        s.save_dir(&dir).unwrap();
        let loaded = ScrollStore::load_dir(&dir, 2).unwrap();
        assert_eq!(loaded.scroll(Pid(0)), s.scroll(Pid(0)));
        assert_eq!(loaded.total_entries(), 40);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_seals_prefix_and_rereads_transparently() {
        let disk = SharedDisk::new();
        let mut spilling = ScrollStore::with_spill(1, SpillConfig::new(disk.clone(), 300));
        let mut control = ScrollStore::new(1);
        for i in 0..50 {
            spilling.append(deliver_entry(0, i, vec![i as u8; 16]));
            control.append(deliver_entry(0, i, vec![i as u8; 16]));
        }
        assert!(spilling.spilled_segments() >= 2, "prefix sealed repeatedly");
        assert!(spilling.resident_entries() < 50);
        assert_eq!(spilling.total_entries(), 50);
        // Transparent re-read: the logical scroll is identical.
        assert_eq!(spilling.scroll(Pid(0)), control.scroll(Pid(0)));
        // And the on-disk wire format is byte-identical.
        assert_eq!(
            spilling.encode_segment(Pid(0)),
            control.encode_segment(Pid(0))
        );
        // Durable: the blobs were synced.
        assert_eq!(disk.dirty_count(), 0);
        assert!(disk.stats().syncs as usize >= spilling.spilled_segments());
    }

    #[test]
    fn resident_bytes_stay_bounded() {
        let threshold = 400;
        let disk = SharedDisk::new();
        let mut s = ScrollStore::with_spill(2, SpillConfig::new(disk, threshold));
        for i in 0..200 {
            for pid in 0..2 {
                s.append(deliver_entry(pid, i, vec![0xA5; 32]));
                assert!(
                    s.resident_bytes() < threshold * s.width(),
                    "resident bytes must stay below threshold × width"
                );
            }
        }
        assert!(s.spilled_bytes() > 0);
    }

    #[test]
    fn truncate_into_spilled_prefix_unspills() {
        let disk = SharedDisk::new();
        let mut s = ScrollStore::with_spill(1, SpillConfig::new(disk, 300));
        for i in 0..50 {
            s.append(deliver_entry(0, i, vec![i as u8; 16]));
        }
        let spilled_before = s.spilled_entry_count(Pid(0));
        assert!(spilled_before > 3);
        let cut = spilled_before - 2; // inside the sealed region
        s.truncate(Pid(0), cut);
        assert_eq!(s.scroll(Pid(0)).len(), cut);
        assert_eq!(s.total_entries(), cut);
        // Un-spilling re-seals: the resident bound holds even with no
        // further appends.
        assert!(
            s.resident_bytes() < 300,
            "truncate must not leave an over-threshold resident prefix"
        );
        // Density restored: appends continue at local_seq == cut.
        s.append(deliver_entry(0, cut as u64, vec![1; 4]));
        assert_eq!(s.total_entries(), cut + 1);
    }

    /// Boundary pin: truncating exactly at the sealed/resident boundary
    /// (`n == spilled_entry_count`) must take the fast path — drop the
    /// resident tail, touch no sealed segment, unspill nothing.
    #[test]
    fn truncate_exactly_at_sealed_boundary_keeps_segments_spilled() {
        let disk = SharedDisk::new();
        let mut s = ScrollStore::with_spill(1, SpillConfig::new(disk, 300));
        for i in 0..50 {
            s.append(deliver_entry(0, i, vec![i as u8; 16]));
        }
        let spilled_n = s.spilled_entry_count(Pid(0));
        let segs = s.spilled[0].len();
        assert!(spilled_n > 0 && segs > 1, "need a multi-segment prefix");
        assert!(!s.per_pid[0].is_empty(), "need a resident tail to drop");
        s.truncate(Pid(0), spilled_n);
        assert_eq!(s.scroll(Pid(0)).len(), spilled_n);
        assert_eq!(s.total_entries(), spilled_n);
        assert!(s.per_pid[0].is_empty(), "resident tail dropped entirely");
        assert_eq!(s.spilled[0].len(), segs, "sealed segments untouched");
        assert_eq!(s.resident_bytes(), 0);
        // Appends resume dense at local_seq == spilled_n.
        s.append(deliver_entry(0, spilled_n as u64, vec![1; 4]));
        assert_eq!(s.total_entries(), spilled_n + 1);
    }

    /// Boundary pin: truncating to an *interior* segment boundary
    /// unspills exactly the kept prefix — the `full.len() >= n` break
    /// fires on equality, reading no segment past the cut.
    #[test]
    fn truncate_at_interior_segment_boundary_unspills_exactly() {
        let disk = SharedDisk::new();
        let mut s = ScrollStore::with_spill(1, SpillConfig::new(disk, 300));
        for i in 0..50 {
            s.append(deliver_entry(0, i, vec![i as u8; 16]));
        }
        assert!(s.spilled[0].len() > 1, "need at least two sealed segments");
        let first = s.spilled[0][0].entries;
        s.truncate(Pid(0), first);
        assert_eq!(s.scroll(Pid(0)).len(), first);
        assert_eq!(s.total_entries(), first);
        // Un-spilling re-seals when over threshold; either way the
        // resident bound holds.
        assert!(s.resident_bytes() < 300);
        s.append(deliver_entry(0, first as u64, vec![1; 4]));
        assert_eq!(s.total_entries(), first + 1);
    }

    /// Boundary pin: truncating a *fully spilled* scroll (empty resident
    /// tail) to zero clears every sealed segment and restarts the scroll
    /// dense from local_seq 0.
    #[test]
    fn truncate_fully_spilled_prefix_to_zero() {
        let disk = SharedDisk::new();
        let mut s = ScrollStore::with_spill(1, SpillConfig::new(disk, 200));
        for i in 0..30 {
            s.append(deliver_entry(0, i, vec![7; 16]));
        }
        // Seal the tail too, so everything lives in sealed segments.
        s.seal(Pid(0));
        assert!(s.per_pid[0].is_empty());
        assert_eq!(s.spilled_entry_count(Pid(0)), 30);
        s.truncate(Pid(0), 0);
        assert_eq!(s.total_entries(), 0);
        assert!(s.scroll(Pid(0)).is_empty());
        assert!(s.spilled[0].is_empty(), "sealed segments cleared");
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(s.spilled_bytes(), 0);
        // The scroll restarts dense from zero.
        s.append(deliver_entry(0, 0, vec![2; 4]));
        assert_eq!(s.scroll(Pid(0)).len(), 1);
    }

    #[test]
    fn identical_segments_are_stored_once_on_disk() {
        // Two stores sharing one disk spill identical prefixes: the
        // content-addressed blob exists once.
        let disk = SharedDisk::new();
        let mut a = ScrollStore::with_spill(1, SpillConfig::new(disk.clone(), 200));
        let mut b = ScrollStore::with_spill(1, SpillConfig::new(disk.clone(), 200));
        for i in 0..30 {
            a.append(deliver_entry(0, i, vec![7; 16]));
            b.append(deliver_entry(0, i, vec![7; 16]));
        }
        assert!(a.spilled_segments() > 0);
        assert_eq!(a.spilled_segments(), b.spilled_segments());
        let blobs = disk
            .durable_snapshot()
            .keys()
            .filter(|k| k.starts_with(b"scrollseg/"))
            .count();
        assert_eq!(
            blobs,
            a.spilled_segments(),
            "second store's identical segments dedup on disk"
        );
    }
}
