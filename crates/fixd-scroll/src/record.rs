//! The Scroll recorder: a driver that observes a running world and
//! records the nondeterministic actions of every process.
//!
//! Figure 1 of the paper shows "one application interacting with the
//! Scroll at various points in its execution path" — those points are
//! exactly the events where the environment hands the process something
//! it could not have computed itself: a delivered message, a fired timer,
//! a random draw. Deterministic internal computation is *not* recorded;
//! that asymmetry is what keeps the Scroll cheap (experiment F1 measures
//! it).

use fixd_runtime::{EventKind, Pid, SharedStepRecord, StepRecord, VectorClock, World};

use crate::entry::{EntryKind, ScrollEntry};
use crate::storage::ScrollStore;

/// Recorder knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecordConfig {
    /// Also record messages dropped by the network (diagnostic only).
    pub record_drops: bool,
}

/// Observes [`StepRecord`]s from a [`World`] and appends scroll entries.
///
/// Usage:
/// ```
/// # use fixd_runtime::{Context, Pid, Program, World, WorldConfig};
/// # use fixd_scroll::{RecordConfig, ScrollRecorder};
/// # struct Hello;
/// # impl Program for Hello {
/// #     fn on_start(&mut self, ctx: &mut Context) {
/// #         if ctx.pid() == Pid(0) { ctx.send(Pid(1), 1, vec![]); }
/// #     }
/// #     fn snapshot(&self) -> Vec<u8> { Vec::new() }
/// #     fn restore(&mut self, _: &[u8]) {}
/// #     fn clone_program(&self) -> Box<dyn Program> { Box::new(Hello) }
/// #     fn as_any(&self) -> &dyn std::any::Any { self }
/// #     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
/// # }
/// # let mut world = World::new(WorldConfig::seeded(7));
/// # world.add_process(Box::new(Hello));
/// # world.add_process(Box::new(Hello));
/// let mut rec = ScrollRecorder::new(world.num_procs(), RecordConfig::default());
/// while let Some(step) = world.step() {
///     rec.observe(&world, &step);
/// }
/// let store = rec.into_store();
/// assert_eq!(store.total_entries(), 3); // two starts + one delivery
/// ```
#[derive(Clone, Debug)]
pub struct ScrollRecorder {
    store: ScrollStore,
    cfg: RecordConfig,
    next_seq: Vec<u64>,
}

impl ScrollRecorder {
    /// A recorder for `n` processes.
    pub fn new(n: usize, cfg: RecordConfig) -> Self {
        Self {
            store: ScrollStore::new(n),
            cfg,
            next_seq: vec![0; n],
        }
    }

    /// A recorder whose store seals and spills scroll prefixes to a
    /// [`crate::SpillConfig`]'s disk — supervised runs of any length
    /// keep only each scroll's tail resident.
    pub fn with_spill(n: usize, cfg: RecordConfig, spill: crate::storage::SpillConfig) -> Self {
        Self {
            store: ScrollStore::with_spill(n, spill),
            cfg,
            next_seq: vec![0; n],
        }
    }

    /// Record whatever in this step was nondeterministic. Call with the
    /// world *after* the step executed (the recorder reads post-event
    /// clocks).
    pub fn observe(&mut self, world: &World, step: &StepRecord) {
        let Some(pid) = step.event.kind.pid() else {
            return;
        };
        self.observe_with_vc(world.proc_vc(pid), step);
    }

    /// [`Self::observe`] with the acting process's post-event clock
    /// supplied directly instead of read from a [`World`] — the hook a
    /// [`fixd_runtime::ShardedWorld`] observer uses, where the clock
    /// arrives with the record rather than from shared world state.
    pub fn observe_with_vc(&mut self, vc_after: &VectorClock, step: &StepRecord) {
        let kind = match &step.event.kind {
            EventKind::Start { .. } => EntryKind::Start,
            EventKind::Deliver { msg } => EntryKind::Deliver { msg: msg.clone() },
            EventKind::TimerFire { timer, .. } => EntryKind::TimerFire { timer: *timer },
            EventKind::Crash { .. } => EntryKind::Crash,
            EventKind::Restart { .. } => EntryKind::Restart,
            EventKind::Drop { msg } => {
                if self.cfg.record_drops {
                    EntryKind::DroppedMail { msg: msg.clone() }
                } else {
                    return;
                }
            }
            EventKind::PartitionChange { .. } => return,
        };
        let Some(pid) = step.event.kind.pid() else {
            return;
        };
        let local_seq = self.next_seq[pid.idx()];
        self.next_seq[pid.idx()] += 1;
        self.store.append(ScrollEntry {
            pid,
            local_seq,
            at: step.event.at,
            lamport: lamport_of(&kind, step),
            vc: vc_after.clone(),
            kind,
            randoms: step.effects.randoms.clone(),
            effects_fp: step.effects.fingerprint(),
            sends: step.effects.sends.len() as u64,
        });
    }

    /// The store accumulated so far.
    pub fn store(&self) -> &ScrollStore {
        &self.store
    }

    /// Consume the recorder, yielding the store.
    pub fn into_store(self) -> ScrollStore {
        self.store
    }

    /// Forget everything recorded for `pid` past local sequence `n`
    /// (called on rollback: the rolled-back suffix never "happened").
    pub fn truncate(&mut self, pid: Pid, n: u64) {
        self.store.truncate(pid, n as usize);
        self.next_seq[pid.idx()] = n;
    }
}

/// A shard worker feeds its records (and post-event clocks) straight
/// into a recorder: give each shard its own [`ScrollRecorder`] over the
/// full pid width, and every pid's scroll lands wholly in its owner's
/// recorder — [`ScrollStore::merge_disjoint`] then reassembles the
/// stores into the byte-identical serial scroll.
impl fixd_runtime::ShardObserver for ScrollRecorder {
    fn on_record(&mut self, record: &SharedStepRecord, vc_after: &VectorClock) {
        self.observe_with_vc(vc_after, record);
    }
}

/// Convenience mirroring [`record_run`] for a [`ShardedWorld`]: run to
/// quiescence (bounded by `max_steps`) with one recorder per shard,
/// returning the merged store and the run report.
pub fn record_run_sharded(
    world: &mut fixd_runtime::ShardedWorld,
    cfg: RecordConfig,
    max_steps: u64,
) -> (ScrollStore, fixd_runtime::RunReport) {
    let n = world.num_procs();
    let mut recorders: Vec<ScrollRecorder> = (0..world.shards())
        .map(|_| ScrollRecorder::new(n, cfg))
        .collect();
    let report = world.run_observed(max_steps, &mut recorders);
    let store = ScrollStore::merge_disjoint(recorders.into_iter().map(ScrollRecorder::into_store));
    (store, report)
}

/// Lamport value to store: for deliveries, the receiver advanced past the
/// sender stamp; approximating with the message's stamp + 1 keeps entries
/// self-contained. For other events the world's clock isn't directly
/// exposed per-event, so we use the entry's vc total as a monotone proxy.
fn lamport_of(kind: &EntryKind, step: &StepRecord) -> u64 {
    match kind {
        EntryKind::Deliver { msg } | EntryKind::DroppedMail { msg } => msg.meta.lamport + 1,
        _ => step.event.seq + 1,
    }
}

/// Convenience: run `world` to quiescence (bounded by `max_steps`) while
/// recording, returning the store and the run report.
pub fn record_run(
    world: &mut World,
    cfg: RecordConfig,
    max_steps: u64,
) -> (ScrollStore, fixd_runtime::RunReport) {
    let mut rec = ScrollRecorder::new(world.num_procs(), cfg);
    let d0 = world.stats();
    let mut steps = 0;
    while steps < max_steps {
        let Some(step) = world.step() else { break };
        rec.observe(world, &step);
        steps += 1;
    }
    let d1 = world.stats();
    let report = fixd_runtime::RunReport {
        steps,
        delivered: d1.delivered - d0.delivered,
        dropped: d1.dropped - d0.dropped,
        end_time: world.now(),
        quiescent: steps < max_steps,
    };
    (rec.into_store(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::{Context, Message, Program, World, WorldConfig};

    struct Chatter {
        count: u64,
    }
    impl Program for Chatter {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                ctx.send(Pid(1), 1, vec![5]);
            }
        }
        fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
            self.count += 1;
            let _ = ctx.random();
            if msg.payload[0] > 0 {
                let back = if ctx.pid() == Pid(0) { Pid(1) } else { Pid(0) };
                ctx.send(back, 1, vec![msg.payload[0] - 1]);
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            self.count.to_le_bytes().to_vec()
        }
        fn restore(&mut self, b: &[u8]) {
            self.count = u64::from_le_bytes(b.try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Chatter { count: self.count })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn chatter_world(seed: u64) -> World {
        let mut w = World::new(WorldConfig::seeded(seed));
        w.add_process(Box::new(Chatter { count: 0 }));
        w.add_process(Box::new(Chatter { count: 0 }));
        w
    }

    #[test]
    fn records_only_nondeterministic_events() {
        let mut w = chatter_world(1);
        let (store, report) = record_run(&mut w, RecordConfig::default(), 1_000);
        assert!(report.quiescent);
        // 2 starts + 6 deliveries (payload 5..0)
        assert_eq!(store.total_entries(), 8);
        let delivers = store
            .scroll(Pid(1))
            .iter()
            .filter(|e| matches!(e.kind, EntryKind::Deliver { .. }))
            .count();
        assert_eq!(delivers, 3);
    }

    #[test]
    fn randoms_are_recorded() {
        let mut w = chatter_world(1);
        let (store, _) = record_run(&mut w, RecordConfig::default(), 1_000);
        let p0 = store.scroll(Pid(0));
        let deliver_entries: Vec<_> = p0
            .iter()
            .filter(|e| matches!(e.kind, EntryKind::Deliver { .. }))
            .collect();
        assert!(!deliver_entries.is_empty());
        assert!(deliver_entries.iter().all(|e| e.randoms.len() == 1));
    }

    #[test]
    fn local_seq_dense_per_process() {
        let mut w = chatter_world(2);
        let (store, _) = record_run(&mut w, RecordConfig::default(), 1_000);
        for pid in [Pid(0), Pid(1)] {
            for (i, e) in store.scroll(pid).iter().enumerate() {
                assert_eq!(e.local_seq, i as u64);
            }
        }
    }

    #[test]
    fn drops_recorded_only_when_enabled() {
        for (record_drops, expect_dropped_entries) in [(false, false), (true, true)] {
            let mut cfg = WorldConfig::seeded(3);
            cfg.net = fixd_runtime::NetworkConfig::lossy(1.0);
            let mut w = World::new(cfg);
            w.add_process(Box::new(Chatter { count: 0 }));
            w.add_process(Box::new(Chatter { count: 0 }));
            let (store, _) = record_run(&mut w, RecordConfig { record_drops }, 1_000);
            let has_drops = store
                .scroll(Pid(1))
                .iter()
                .any(|e| matches!(e.kind, EntryKind::DroppedMail { .. }));
            assert_eq!(has_drops, expect_dropped_entries);
        }
    }

    #[test]
    fn recorded_entries_alias_delivered_payloads() {
        // The Scroll must not copy payload bytes: every Deliver entry
        // shares the allocation of the message the runtime delivered.
        let mut w = chatter_world(1);
        let mut rec = ScrollRecorder::new(2, RecordConfig::default());
        let mut checked = 0;
        while let Some(step) = w.step() {
            rec.observe(&w, &step);
            if let fixd_runtime::EventKind::Deliver { msg } = &step.event.kind {
                let scroll = rec.store().scroll(msg.dst);
                let e = scroll.last().unwrap();
                let recorded = e.kind.payload().expect("deliver entry has a payload");
                assert!(
                    recorded.ptr_eq(&msg.payload),
                    "scroll entry must alias the delivered buffer"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "the run must deliver something");
    }

    #[test]
    fn duplicated_deliveries_share_one_buffer_in_the_store() {
        // A duplicating network delivers the same message twice; the
        // store holds two entries but only one payload allocation.
        let mut cfg = WorldConfig::seeded(7);
        cfg.net = fixd_runtime::NetworkConfig::duplicating(1.0);
        let mut w = World::new(cfg);
        w.add_process(Box::new(Chatter { count: 0 }));
        w.add_process(Box::new(Chatter { count: 0 }));
        let (store, report) = record_run(&mut w, RecordConfig::default(), 1_000);
        assert!(report.delivered >= 2, "dup network doubles deliveries");
        let (p0, p1) = (store.scroll(Pid(0)), store.scroll(Pid(1)));
        let summed: usize = p0
            .iter()
            .chain(p1.iter())
            .filter_map(|e| e.kind.payload())
            .map(|p| p.len())
            .sum();
        let unique = store.unique_payload_bytes();
        assert!(
            unique < summed,
            "duplicates must alias: unique={unique} summed={summed}"
        );
    }

    #[test]
    fn truncate_resets_seq() {
        let mut w = chatter_world(1);
        let mut rec = ScrollRecorder::new(2, RecordConfig::default());
        for _ in 0..4 {
            let step = w.step().unwrap();
            rec.observe(&w, &step);
        }
        let n0 = rec.store().scroll(Pid(0)).len();
        assert!(n0 >= 1);
        rec.truncate(Pid(0), 1);
        assert_eq!(rec.store().scroll(Pid(0)).len(), 1);
        // Further observation appends densely at seq 1.
        while let Some(step) = w.step() {
            rec.observe(&w, &step);
        }
        let scroll = rec.store().scroll(Pid(0));
        for (i, e) in scroll.iter().enumerate() {
            assert_eq!(e.local_seq, i as u64);
        }
    }
}
