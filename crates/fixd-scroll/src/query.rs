//! Trace queries over merged scrolls — the "execution path
//! investigation" interface of Fig. 1.

use fixd_runtime::{Pid, VTime};

use crate::entry::{EntryKind, ScrollEntry};

/// A fluent filter over a merged (or per-process) entry slice.
///
/// ```
/// # use fixd_runtime::{Pid, VectorClock};
/// # use fixd_scroll::{EntryKind, ScrollEntry, ScrollQuery};
/// # let entry = |pid: u32, at: u64| ScrollEntry {
/// #     pid: Pid(pid), local_seq: 0, at, lamport: at,
/// #     vc: VectorClock::from_vec(vec![0; 3]),
/// #     kind: EntryKind::Start, randoms: Default::default(), effects_fp: 0, sends: 0,
/// # };
/// # let merged = vec![entry(1, 50), entry(2, 120), entry(2, 700)];
/// let p2_early = ScrollQuery::new(&merged)
///     .pid(Pid(2))
///     .between(100, 500)
///     .collect();
/// assert_eq!(p2_early.len(), 1);
/// ```
#[derive(Clone)]
pub struct ScrollQuery<'a> {
    entries: Vec<&'a ScrollEntry>,
}

impl<'a> ScrollQuery<'a> {
    /// Start a query over `entries`.
    pub fn new(entries: &'a [ScrollEntry]) -> Self {
        Self {
            entries: entries.iter().collect(),
        }
    }

    /// Keep only entries of process `p`.
    pub fn pid(mut self, p: Pid) -> Self {
        self.entries.retain(|e| e.pid == p);
        self
    }

    /// Keep only deliveries.
    pub fn deliveries(mut self) -> Self {
        self.entries
            .retain(|e| matches!(e.kind, EntryKind::Deliver { .. }));
        self
    }

    /// Keep only deliveries whose message carries `tag`.
    pub fn tag(mut self, tag: u16) -> Self {
        self.entries.retain(|e| match &e.kind {
            EntryKind::Deliver { msg } | EntryKind::DroppedMail { msg } => msg.tag == tag,
            _ => false,
        });
        self
    }

    /// Keep only deliveries sent by `src`.
    pub fn from(mut self, src: Pid) -> Self {
        self.entries.retain(|e| match &e.kind {
            EntryKind::Deliver { msg } | EntryKind::DroppedMail { msg } => msg.src == src,
            _ => false,
        });
        self
    }

    /// Keep only entries in the virtual-time window `[start, end)`.
    pub fn between(mut self, start: VTime, end: VTime) -> Self {
        self.entries.retain(|e| (start..end).contains(&e.at));
        self
    }

    /// Keep only entries whose handler crashed the process or that record
    /// a crash.
    pub fn crashes(mut self) -> Self {
        self.entries.retain(|e| matches!(e.kind, EntryKind::Crash));
        self
    }

    /// Keep entries matching an arbitrary predicate.
    pub fn filter(mut self, pred: impl Fn(&ScrollEntry) -> bool) -> Self {
        self.entries.retain(|e| pred(e));
        self
    }

    /// Materialize the result.
    pub fn collect(self) -> Vec<&'a ScrollEntry> {
        self.entries
    }

    /// Count without materializing.
    pub fn count(self) -> usize {
        self.entries.len()
    }

    /// First match.
    pub fn first(self) -> Option<&'a ScrollEntry> {
        self.entries.into_iter().next()
    }

    /// Render the result as a human-readable listing (for bug reports).
    pub fn render(self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for e in self.entries {
            let desc = match &e.kind {
                EntryKind::Start => "start".to_string(),
                EntryKind::Deliver { msg } => format!(
                    "recv {}→{} tag={} {}B",
                    msg.src,
                    msg.dst,
                    msg.tag,
                    msg.payload.len()
                ),
                EntryKind::TimerFire { timer } => format!("timer {}", timer.0),
                EntryKind::Crash => "CRASH".to_string(),
                EntryKind::Restart => "restart".to_string(),
                EntryKind::DroppedMail { msg } => {
                    format!("DROPPED {}→{} tag={}", msg.src, msg.dst, msg.tag)
                }
            };
            let _ = writeln!(
                s,
                "[{} #{:<4} t={:<6} L={:<4}] {desc}",
                e.pid, e.local_seq, e.at, e.lamport
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::{Message, MsgMeta, TimerId, VectorClock};

    fn mk(pid: u32, seq: u64, at: VTime, kind: EntryKind) -> ScrollEntry {
        ScrollEntry {
            pid: Pid(pid),
            local_seq: seq,
            at,
            lamport: seq + 1,
            vc: VectorClock::new(3),
            kind,
            randoms: vec![].into(),
            effects_fp: 0,
            sends: 0,
        }
    }

    fn msg(src: u32, dst: u32, tag: u16) -> Message {
        Message {
            id: 0,
            src: Pid(src),
            dst: Pid(dst),
            tag,
            payload: vec![].into(),
            sent_at: 0,
            vc: VectorClock::new(3),
            meta: MsgMeta::default(),
        }
    }

    fn sample() -> Vec<ScrollEntry> {
        vec![
            mk(0, 0, 0, EntryKind::Start),
            mk(1, 0, 0, EntryKind::Start),
            mk(
                1,
                1,
                10,
                EntryKind::Deliver {
                    msg: msg(0, 1, 7).into(),
                },
            ),
            mk(
                1,
                2,
                20,
                EntryKind::Deliver {
                    msg: msg(2, 1, 8).into(),
                },
            ),
            mk(0, 1, 25, EntryKind::TimerFire { timer: TimerId(1) }),
            mk(1, 3, 30, EntryKind::Crash),
        ]
    }

    #[test]
    fn pid_and_kind_filters() {
        let s = sample();
        assert_eq!(ScrollQuery::new(&s).pid(Pid(1)).count(), 4);
        assert_eq!(ScrollQuery::new(&s).deliveries().count(), 2);
        assert_eq!(ScrollQuery::new(&s).crashes().count(), 1);
    }

    #[test]
    fn tag_and_src_filters() {
        let s = sample();
        assert_eq!(ScrollQuery::new(&s).tag(7).count(), 1);
        assert_eq!(ScrollQuery::new(&s).from(Pid(2)).count(), 1);
        assert_eq!(ScrollQuery::new(&s).from(Pid(2)).tag(7).count(), 0);
    }

    #[test]
    fn time_window_half_open() {
        let s = sample();
        assert_eq!(ScrollQuery::new(&s).between(10, 30).count(), 3);
        assert_eq!(ScrollQuery::new(&s).between(0, 1).count(), 2);
    }

    #[test]
    fn first_and_custom_filter() {
        let s = sample();
        let first_deliver = ScrollQuery::new(&s).deliveries().first().unwrap();
        assert_eq!(first_deliver.local_seq, 1);
        let heavy = ScrollQuery::new(&s).filter(|e| e.lamport > 2).count();
        assert_eq!(heavy, 2);
    }

    #[test]
    fn render_lists_each_entry() {
        let s = sample();
        let text = ScrollQuery::new(&s).render();
        assert_eq!(text.lines().count(), 6);
        assert!(text.contains("CRASH"));
        assert!(text.contains("recv P0→P1 tag=7"));
    }
}
