//! Property-based tests for the Scroll: codec bijection, merge
//! consistency, cut lattice properties, replay fidelity.

use proptest::prelude::*;

use fixd_runtime::{
    Context, Message, MsgMeta, NetworkConfig, Pid, Program, TimerId, VectorClock, World,
    WorldConfig,
};
use fixd_scroll::record::record_run;
use fixd_scroll::{
    codec, cut, merge_total_order, replay_process, EntryKind, Fidelity, RecordConfig, ScrollEntry,
};

/// Strategy for arbitrary messages.
fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u64>(),
        0u32..8,
        0u32..8,
        any::<u16>(),
        proptest::collection::vec(any::<u8>(), 0..32),
        any::<u64>(),
        proptest::collection::vec(0u64..1000, 0..6),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(id, src, dst, tag, payload, sent_at, vc, ck, sp, lam)| Message {
                id,
                src: Pid(src),
                dst: Pid(dst),
                tag,
                payload: payload.into(),
                sent_at,
                vc: VectorClock::from_vec(vc),
                meta: MsgMeta {
                    ckpt_index: ck,
                    spec_id: sp,
                    lamport: lam,
                },
            },
        )
}

fn arb_kind() -> impl Strategy<Value = EntryKind> {
    prop_oneof![
        Just(EntryKind::Start),
        Just(EntryKind::Crash),
        Just(EntryKind::Restart),
        any::<u64>().prop_map(|t| EntryKind::TimerFire { timer: TimerId(t) }),
        arb_message().prop_map(|m| EntryKind::Deliver { msg: m.into() }),
        arb_message().prop_map(|m| EntryKind::DroppedMail { msg: m.into() }),
    ]
}

fn arb_entry() -> impl Strategy<Value = ScrollEntry> {
    (
        0u32..8,
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(0u64..1000, 0..4),
        arb_kind(),
        proptest::collection::vec(any::<u64>(), 0..4),
        any::<u64>(),
        0u64..100,
    )
        .prop_map(
            |(pid, seq, at, lamport, vc, kind, randoms, fp, sends)| ScrollEntry {
                pid: Pid(pid),
                local_seq: seq,
                at,
                lamport,
                vc: VectorClock::from_vec(vc),
                kind,
                randoms: randoms.into(),
                effects_fp: fp,
                sends,
            },
        )
}

/// Ping-pong app used for recorded-run properties.
struct Pong {
    n: u64,
    x: u64,
}
impl Program for Pong {
    fn on_start(&mut self, ctx: &mut Context) {
        if ctx.pid() == Pid(0) {
            ctx.send(Pid(1), 1, vec![(self.n % 13) as u8]);
        }
    }
    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        self.x = self.x.wrapping_add(ctx.random());
        if msg.payload[0] > 0 {
            let dst = Pid((ctx.pid().0 + 1) % ctx.world_size() as u32);
            ctx.send(dst, 1, vec![msg.payload[0] - 1]);
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        let mut b = self.n.to_le_bytes().to_vec();
        b.extend_from_slice(&self.x.to_le_bytes());
        b
    }
    fn restore(&mut self, b: &[u8]) {
        self.n = u64::from_le_bytes(b[0..8].try_into().unwrap());
        self.x = u64::from_le_bytes(b[8..16].try_into().unwrap());
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Pong {
            n: self.n,
            x: self.x,
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn run_world(n: usize, seed: u64, hops: u64, jitter: bool) -> (fixd_scroll::ScrollStore, World) {
    let mut cfg = WorldConfig::seeded(seed);
    if jitter {
        cfg.net = NetworkConfig::jittery(1, 30);
    }
    let mut w = World::new(cfg);
    for _ in 0..n {
        w.add_process(Box::new(Pong { n: hops, x: 0 }));
    }
    let (store, _) = record_run(&mut w, RecordConfig::default(), 5_000);
    (store, w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The entry codec is a bijection.
    #[test]
    fn entry_codec_bijection(entries in proptest::collection::vec(arb_entry(), 0..12)) {
        let buf = codec::encode_segment(&entries);
        prop_assert_eq!(codec::decode_segment(&buf).unwrap(), entries);
    }

    /// Message encode/decode is identity under the shared-buffer
    /// `Payload` type for arbitrary payload sizes — empty through
    /// multi-KiB — and the decoded payload is a fresh allocation of the
    /// same bytes (content-equal, not aliased: it came off the wire).
    #[test]
    fn payload_roundtrip_identity(len in prop_oneof![Just(0usize), 1usize..64, 1024usize..4096],
                                  seed in any::<u64>()) {
        let payload: Vec<u8> = (0..len).map(|i| (seed.wrapping_add(i as u64) % 256) as u8).collect();
        let msg = Message {
            id: seed,
            src: Pid(0),
            dst: Pid(1),
            tag: 7,
            payload: payload.clone().into(),
            sent_at: 1,
            vc: VectorClock::from_vec(vec![1, 0]),
            meta: MsgMeta::default(),
        };
        let mut buf = Vec::new();
        codec::encode_message(&mut buf, &msg);
        let mut pos = 0;
        let back = codec::decode_message(&buf, &mut pos).unwrap();
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(back.payload.as_slice(), payload.as_slice());
        prop_assert!(!back.payload.ptr_eq(&msg.payload), "decode allocates fresh bytes");
        // And through a whole segment.
        let entry = ScrollEntry {
            pid: Pid(1), local_seq: 0, at: 0, lamport: 1,
            vc: VectorClock::from_vec(vec![0, 1]),
            kind: EntryKind::Deliver { msg: msg.into() },
            randoms: vec![].into(), effects_fp: 0, sends: 0,
        };
        let seg = codec::encode_segment(std::slice::from_ref(&entry));
        prop_assert_eq!(codec::decode_segment(&seg).unwrap(), vec![entry]);
    }

    /// Truncated segments never decode successfully (no silent garbage).
    #[test]
    fn truncation_always_detected(entries in proptest::collection::vec(arb_entry(), 1..6),
                                  frac in 0.01f64..0.99) {
        let buf = codec::encode_segment(&entries);
        let cut_at = ((buf.len() as f64) * frac) as usize;
        if cut_at < buf.len() {
            prop_assert!(codec::decode_segment(&buf[..cut_at]).is_err());
        }
    }

    /// Merged logs are always linear extensions of happens-before, under
    /// FIFO and reordering networks alike.
    #[test]
    fn merge_causally_consistent(seed in 0u64..300, n in 2usize..5, hops in 1u64..10,
                                 jitter in any::<bool>()) {
        let (store, _) = run_world(n, seed, hops, jitter);
        let merged = merge_total_order(&store);
        prop_assert!(fixd_scroll::check_causal_consistency(&merged).is_ok());
        prop_assert!(fixd_scroll::merge::check_send_before_receive(&merged).is_ok());
    }

    /// `latest_consistent_cut` always produces a consistent cut that
    /// respects the limit.
    #[test]
    fn latest_cut_is_consistent(seed in 0u64..300, n in 2usize..5, hops in 2u64..10,
                                pid in 0u32..2, limit in 0usize..6) {
        let (store, _) = run_world(n, seed, hops, true);
        let c = cut::latest_consistent_cut(&store, Pid(pid), limit);
        prop_assert!(c.is_consistent(&store));
        prop_assert!(c.count(Pid(pid)) <= limit.min(store.scroll(Pid(pid)).len()).max(limit.min(store.scroll(Pid(pid)).len())));
        prop_assert!(c.count(Pid(pid)) <= limit);
    }

    /// Local replay from the scroll reproduces the recorded final state
    /// exactly, for every process.
    #[test]
    fn replay_fidelity(seed in 0u64..200, n in 2usize..4, hops in 1u64..8) {
        let (store, w) = run_world(n, seed, hops, false);
        for i in 0..n {
            let pid = Pid(i as u32);
            let mut fresh = Pong { n: hops, x: 0 };
            let out = replay_process(pid, n, seed, &mut fresh, &store.scroll(pid));
            prop_assert_eq!(&out.fidelity, &Fidelity::Exact, "P{} diverged", i);
            prop_assert_eq!(out.final_state, w.checkpoint_process(pid).state);
        }
    }

    /// The scroll records exactly the handler-running events: entry count
    /// equals starts + deliveries + timer fires.
    #[test]
    fn scroll_counts_match_run(seed in 0u64..200, hops in 1u64..10) {
        let (store, w) = run_world(3, seed, hops, false);
        let delivered: u64 = (0..3).map(|i| w.delivered_count(Pid(i))).sum();
        let expected = 3 /* starts */ + delivered as usize;
        prop_assert_eq!(store.total_entries(), expected);
    }
}
