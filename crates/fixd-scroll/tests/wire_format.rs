//! Wire-format stability: the scroll segment encoding is a persistent,
//! versioned on-disk format. Two guarantees are pinned here:
//!
//! 1. **v2 golden** — the current codec (sparse varint clocks) must
//!    reproduce the blessed fixture byte-for-byte. The fixture lives in
//!    `tests/fixtures/golden_segment_v2.hex`; re-bless (only ever on a
//!    deliberate, versioned format change) with
//!    `FIXD_BLESS=1 cargo test -p fixd-scroll --test wire_format`.
//! 2. **v1 back-compat** — segments written by the v1 codec (dense
//!    `u64`-list clocks, pre-sparse refactor) must still decode to the
//!    same entries. The v1 bytes are frozen inline below; the v1
//!    encoder is gone, so these can never be regenerated — do not edit.

use fixd_runtime::{Message, MsgMeta, Pid, TimerId, VectorClock};
use fixd_scroll::codec::{decode_segment, encode_segment, FORMAT_VERSION};
use fixd_scroll::entry::{EntryKind, ScrollEntry};

const V2_FIXTURE: &str = "tests/fixtures/golden_segment_v2.hex";

/// Frozen v1 segment (version byte 0x01, dense clocks) produced by the
/// pre-sparse codec on exactly the entries from [`golden_entries`].
const GOLDEN_SEGMENT_V1_HEX: &[&str] = &[
    "0107000200f8060a03030205030700ffffffffffffffffff01effdb6f50d03010201f806",
    "0a03030205030700ffffffffffffffffff01effdb6f50d032a0102ac02077061796c6f61",
    "64d20903030100020009010202f8060a03030205030700ffffffffffffffffff01effdb6",
    "f50d032a0102ac0200d20903030100020009020203f8060a03030205030700ffffffffff",
    "ffffffff01effdb6f50d034d030204f8060a03030205030700ffffffffffffffffff01ef",
    "fdb6f50d03040205f8060a03030205030700ffffffffffffffffff01effdb6f50d030502",
    "06f8060a03030205030700ffffffffffffffffff01effdb6f50d032a0102ac02d8040001",
    "02030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f202122232425",
    "262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f40414243444546474849",
    "4a4b4c4d4e4f505152535455565758595a5b5c5d5e5f606162636465666768696a6b6c6d",
    "6e6f707172737475767778797a7b7c7d7e7f808182838485868788898a8b8c8d8e8f9091",
    "92939495969798999a9b9c9d9e9fa0a1a2a3a4a5a6a7a8a9aaabacadaeafb0b1b2b3b4b5",
    "b6b7b8b9babbbcbdbebfc0c1c2c3c4c5c6c7c8c9cacbcccdcecfd0d1d2d3d4d5d6d7d8d9",
    "dadbdcdddedfe0e1e2e3e4e5e6e7e8e9eaebecedeeeff0f1f2f3f4f5f6f7f8f9fa000102",
    "030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20212223242526",
    "2728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f404142434445464748494a",
    "4b4c4d4e4f505152535455565758595a5b5c5d5e5f606162636465666768696a6b6c6d6e",
    "6f707172737475767778797a7b7c7d7e7f808182838485868788898a8b8c8d8e8f909192",
    "939495969798999a9b9c9d9e9fa0a1a2a3a4a5a6a7a8a9aaabacadaeafb0b1b2b3b4b5b6",
    "b7b8b9babbbcbdbebfc0c1c2c3c4c5c6c7c8c9cacbcccdcecfd0d1d2d3d4d5d6d7d8d9da",
    "dbdcdddedfe0e1e2e3e4e5e6e7e8e9eaebecedeeeff0f1f2f3f4f5f6f7f8f9fa00010203",
    "0405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f2021222324252627",
    "28292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f404142434445464748494a4b",
    "4c4d4e4f505152535455565758595a5b5c5d5e5f6061d20903030100020009",
];

fn hex_to_bytes(hex: &str) -> Vec<u8> {
    let hex: String = hex.chars().filter(|c| !c.is_whitespace()).collect();
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap())
        .collect()
}

fn bytes_to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2 + bytes.len() / 36 + 1);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && i % 36 == 0 {
            out.push('\n');
        }
        out.push_str(&format!("{b:02x}"));
    }
    out.push('\n');
    out
}

fn v1_golden_bytes() -> Vec<u8> {
    hex_to_bytes(&GOLDEN_SEGMENT_V1_HEX.concat())
}

fn sample_msg(payload: Vec<u8>) -> Message {
    Message {
        id: 42,
        src: Pid(1),
        dst: Pid(2),
        tag: 300,
        payload: payload.into(),
        sent_at: 1234,
        vc: VectorClock::from_vec(vec![3, 1, 0]),
        meta: MsgMeta {
            ckpt_index: 2,
            spec_id: 0,
            lamport: 9,
        },
    }
}

fn sample_entry(local_seq: u64, kind: EntryKind) -> ScrollEntry {
    ScrollEntry {
        pid: Pid(2),
        local_seq,
        at: 888,
        lamport: 10,
        vc: VectorClock::from_vec(vec![3, 2, 5]),
        kind,
        randoms: vec![7, 0, u64::MAX].into(),
        effects_fp: 0xdeadbeef,
        sends: 3,
    }
}

/// Every entry kind, with empty, short, and multi-hundred-byte payloads
/// (the exact inputs both codec generations were run on).
fn golden_entries() -> Vec<ScrollEntry> {
    vec![
        sample_entry(0, EntryKind::Start),
        sample_entry(
            1,
            EntryKind::Deliver {
                msg: sample_msg(b"payload".to_vec()).into(),
            },
        ),
        sample_entry(
            2,
            EntryKind::Deliver {
                msg: sample_msg(vec![]).into(),
            },
        ),
        sample_entry(3, EntryKind::TimerFire { timer: TimerId(77) }),
        sample_entry(4, EntryKind::Crash),
        sample_entry(5, EntryKind::Restart),
        sample_entry(
            6,
            EntryKind::DroppedMail {
                msg: sample_msg((0u16..600).map(|i| (i % 251) as u8).collect()).into(),
            },
        ),
    ]
}

#[test]
fn segment_encoding_matches_blessed_golden() {
    let encoded = encode_segment(&golden_entries());
    assert_eq!(encoded[0], FORMAT_VERSION, "segment leads with its version");
    if std::env::var("FIXD_BLESS").is_ok() {
        std::fs::create_dir_all("tests/fixtures").unwrap();
        std::fs::write(V2_FIXTURE, bytes_to_hex(&encoded)).unwrap();
        return;
    }
    let want = hex_to_bytes(
        &std::fs::read_to_string(V2_FIXTURE)
            .expect("golden fixture missing — run with FIXD_BLESS=1 on known-good code"),
    );
    assert_eq!(
        encoded.len(),
        want.len(),
        "segment length drifted from the recorded format"
    );
    assert_eq!(encoded, want, "wire format must not change");
}

#[test]
fn blessed_golden_round_trips() {
    let Ok(fixture) = std::fs::read_to_string(V2_FIXTURE) else {
        return; // first bless run
    };
    let entries = decode_segment(&hex_to_bytes(&fixture)).expect("v2 golden decodes");
    assert_eq!(entries, golden_entries(), "decoded = original entries");
}

#[test]
fn v1_dense_clock_segments_still_decode() {
    let bytes = v1_golden_bytes();
    assert_eq!(bytes[0], 1, "frozen golden was written as v1");
    let entries = decode_segment(&bytes).expect("v1 segment decodes");
    assert_eq!(
        entries,
        golden_entries(),
        "v1 dense-clock segments must decode to the same entries"
    );
}

/// The point of the v2 clock encoding: cost scales with the causal
/// footprint (nonzero components), not the world width. A clock whose
/// support is two processes out of a million must encode in a handful
/// of bytes — v1's dense list would have needed ~10^6 varints.
#[test]
fn v2_clock_cost_scales_with_footprint_not_width() {
    let narrow = {
        let mut e = sample_entry(0, EntryKind::Start);
        e.vc = VectorClock::from_pairs(vec![(0, 3), (1, 5)]);
        encode_segment(&[e])
    };
    let wide = {
        let mut e = sample_entry(0, EntryKind::Start);
        e.vc = VectorClock::from_pairs(vec![(0, 3), (999_999, 5)]);
        encode_segment(&[e])
    };
    assert!(
        wide.len() <= narrow.len() + 4,
        "wide-world clock must not pay for dormant processes: \
         {} bytes vs {} at width 2",
        wide.len(),
        narrow.len()
    );
}
