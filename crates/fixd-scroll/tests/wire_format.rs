//! Wire-format stability: the scroll segment encoding is a persistent,
//! versioned on-disk format, so refactors of the in-memory payload
//! representation (`Vec<u8>` → shared `Arc<[u8]>` `Payload`) must not
//! move a single byte. The golden bytes below were produced by the
//! pre-`Payload` codec; `encode_segment` must reproduce them exactly.

use fixd_runtime::{Message, MsgMeta, Pid, TimerId, VectorClock};
use fixd_scroll::codec::{decode_segment, encode_segment, FORMAT_VERSION};
use fixd_scroll::entry::{EntryKind, ScrollEntry};

const GOLDEN_SEGMENT_HEX: &[&str] = &[
    "0107000200f8060a03030205030700ffffffffffffffffff01effdb6f50d03010201f806",
    "0a03030205030700ffffffffffffffffff01effdb6f50d032a0102ac02077061796c6f61",
    "64d20903030100020009010202f8060a03030205030700ffffffffffffffffff01effdb6",
    "f50d032a0102ac0200d20903030100020009020203f8060a03030205030700ffffffffff",
    "ffffffff01effdb6f50d034d030204f8060a03030205030700ffffffffffffffffff01ef",
    "fdb6f50d03040205f8060a03030205030700ffffffffffffffffff01effdb6f50d030502",
    "06f8060a03030205030700ffffffffffffffffff01effdb6f50d032a0102ac02d8040001",
    "02030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f202122232425",
    "262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f40414243444546474849",
    "4a4b4c4d4e4f505152535455565758595a5b5c5d5e5f606162636465666768696a6b6c6d",
    "6e6f707172737475767778797a7b7c7d7e7f808182838485868788898a8b8c8d8e8f9091",
    "92939495969798999a9b9c9d9e9fa0a1a2a3a4a5a6a7a8a9aaabacadaeafb0b1b2b3b4b5",
    "b6b7b8b9babbbcbdbebfc0c1c2c3c4c5c6c7c8c9cacbcccdcecfd0d1d2d3d4d5d6d7d8d9",
    "dadbdcdddedfe0e1e2e3e4e5e6e7e8e9eaebecedeeeff0f1f2f3f4f5f6f7f8f9fa000102",
    "030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20212223242526",
    "2728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f404142434445464748494a",
    "4b4c4d4e4f505152535455565758595a5b5c5d5e5f606162636465666768696a6b6c6d6e",
    "6f707172737475767778797a7b7c7d7e7f808182838485868788898a8b8c8d8e8f909192",
    "939495969798999a9b9c9d9e9fa0a1a2a3a4a5a6a7a8a9aaabacadaeafb0b1b2b3b4b5b6",
    "b7b8b9babbbcbdbebfc0c1c2c3c4c5c6c7c8c9cacbcccdcecfd0d1d2d3d4d5d6d7d8d9da",
    "dbdcdddedfe0e1e2e3e4e5e6e7e8e9eaebecedeeeff0f1f2f3f4f5f6f7f8f9fa00010203",
    "0405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f2021222324252627",
    "28292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f404142434445464748494a4b",
    "4c4d4e4f505152535455565758595a5b5c5d5e5f6061d20903030100020009",
];

fn golden_bytes() -> Vec<u8> {
    let hex: String = GOLDEN_SEGMENT_HEX.concat();
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap())
        .collect()
}

fn sample_msg(payload: Vec<u8>) -> Message {
    Message {
        id: 42,
        src: Pid(1),
        dst: Pid(2),
        tag: 300,
        payload: payload.into(),
        sent_at: 1234,
        vc: VectorClock::from_vec(vec![3, 1, 0]),
        meta: MsgMeta {
            ckpt_index: 2,
            spec_id: 0,
            lamport: 9,
        },
    }
}

fn sample_entry(local_seq: u64, kind: EntryKind) -> ScrollEntry {
    ScrollEntry {
        pid: Pid(2),
        local_seq,
        at: 888,
        lamport: 10,
        vc: VectorClock::from_vec(vec![3, 2, 5]),
        kind,
        randoms: vec![7, 0, u64::MAX],
        effects_fp: 0xdeadbeef,
        sends: 3,
    }
}

/// Every entry kind, with empty, short, and multi-hundred-byte payloads
/// (the exact inputs the pre-refactor codec was run on).
fn golden_entries() -> Vec<ScrollEntry> {
    vec![
        sample_entry(0, EntryKind::Start),
        sample_entry(
            1,
            EntryKind::Deliver {
                msg: sample_msg(b"payload".to_vec()).into(),
            },
        ),
        sample_entry(
            2,
            EntryKind::Deliver {
                msg: sample_msg(vec![]).into(),
            },
        ),
        sample_entry(3, EntryKind::TimerFire { timer: TimerId(77) }),
        sample_entry(4, EntryKind::Crash),
        sample_entry(5, EntryKind::Restart),
        sample_entry(
            6,
            EntryKind::DroppedMail {
                msg: sample_msg((0u16..600).map(|i| (i % 251) as u8).collect()).into(),
            },
        ),
    ]
}

#[test]
fn segment_encoding_matches_pre_refactor_golden() {
    let encoded = encode_segment(&golden_entries());
    let golden = golden_bytes();
    assert_eq!(golden[0], FORMAT_VERSION, "golden was written as v1");
    assert_eq!(
        encoded.len(),
        golden.len(),
        "segment length drifted from the recorded format"
    );
    assert_eq!(encoded, golden, "wire format must not change");
}

#[test]
fn golden_bytes_still_decode() {
    let entries = decode_segment(&golden_bytes()).expect("golden segment decodes");
    assert_eq!(entries, golden_entries(), "decoded = original entries");
}
