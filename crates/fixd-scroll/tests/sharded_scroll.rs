//! Sharded scroll recording: one recorder per shard, reassembled with
//! [`ScrollStore::merge_disjoint`], must yield **byte-identical** sealed
//! scroll segments to serial recording — the Scroll is the paper's
//! ground truth, so parallel execution is not allowed to perturb a
//! single encoded byte of it.

use fixd_scroll::{record_run, record_run_sharded, RecordConfig, ScrollStore};

use fixd_runtime::{
    Context, FaultPlan, Message, NetworkConfig, Pid, Program, ShardedWorld, World, WorldConfig,
};

/// Gossip program with RNG draws and payload-dependent fan-out, so the
/// scroll records deliveries *and* randoms on every process.
struct Gossip {
    acc: u64,
}

impl Program for Gossip {
    fn on_start(&mut self, ctx: &mut Context) {
        if ctx.pid() == Pid(0) {
            for d in 1..ctx.world_size() as u32 {
                ctx.send(Pid(d), 1, vec![3]);
            }
        }
    }
    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        self.acc = self.acc.wrapping_add(ctx.random());
        if msg.payload[0] > 0 {
            let dst = Pid((ctx.random_below(ctx.world_size() as u64)) as u32);
            if dst != ctx.pid() {
                ctx.send(dst, 1, vec![msg.payload[0] - 1]);
            }
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        self.acc.to_le_bytes().to_vec()
    }
    fn restore(&mut self, b: &[u8]) {
        self.acc = u64::from_le_bytes(b.try_into().unwrap());
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Gossip { acc: self.acc })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

const N: usize = 6;

fn cfg(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::seeded(seed);
    cfg.net = NetworkConfig {
        drop_prob: 0.05,
        dup_prob: 0.10,
        corrupt_prob: 0.05,
        ..NetworkConfig::default()
    };
    cfg
}

fn serial_store(seed: u64, rec_cfg: RecordConfig) -> ScrollStore {
    let mut w = World::new(cfg(seed));
    for _ in 0..N {
        w.add_process(Box::new(Gossip { acc: 0 }));
    }
    w.set_fault_plan(FaultPlan::none().crash(Pid(2), 90));
    let (store, report) = record_run(&mut w, rec_cfg, 50_000);
    assert!(report.quiescent);
    store
}

fn sharded_store(seed: u64, rec_cfg: RecordConfig, shards: usize) -> ScrollStore {
    let mut w = ShardedWorld::new(cfg(seed), shards);
    for _ in 0..N {
        w.add_process(Box::new(Gossip { acc: 0 }));
    }
    w.set_fault_plan(FaultPlan::none().crash(Pid(2), 90));
    let (store, report) = record_run_sharded(&mut w, rec_cfg, 50_000);
    assert!(report.quiescent);
    store
}

#[test]
fn sealed_scroll_bytes_identical_across_shard_counts() {
    for rec_cfg in [RecordConfig::default(), RecordConfig { record_drops: true }] {
        let serial = serial_store(0x5C80, rec_cfg);
        let want: Vec<Vec<u8>> = (0..N as u32)
            .map(|p| serial.encode_segment(Pid(p)))
            .collect();
        assert!(serial.total_entries() > 0, "the run must record something");

        for shards in [1usize, 2, 4, 8] {
            let merged = sharded_store(0x5C80, rec_cfg, shards);
            assert_eq!(
                merged.total_entries(),
                serial.total_entries(),
                "entry count drifted at {shards} shards (drops={})",
                rec_cfg.record_drops
            );
            for p in 0..N as u32 {
                assert_eq!(
                    merged.encode_segment(Pid(p)),
                    want[p as usize],
                    "scroll bytes for P{p} drifted at {shards} shards (drops={})",
                    rec_cfg.record_drops
                );
            }
        }
    }
}

#[test]
fn merge_disjoint_rejects_overlapping_stores() {
    let a = serial_store(7, RecordConfig::default());
    let b = serial_store(7, RecordConfig::default());
    let res = std::panic::catch_unwind(move || ScrollStore::merge_disjoint([a, b]));
    assert!(res.is_err(), "overlapping pid columns must be refused");
}
