//! A scroll seal is a world-release point: once entries are spilled to
//! disk, the resident copies' message boxes can return to the world's
//! step arena. `seal_reclaiming` pins that — and that a box some other
//! holder still aliases is left alone.

use fixd_runtime::{
    Context, EventKind, Message, Pid, Program, SharedDisk, TimerId, VectorClock, World, WorldConfig,
};
use fixd_scroll::{EntryKind, ScrollEntry, ScrollStore, SpillConfig};

struct SendK {
    k: u64,
}

impl Program for SendK {
    fn on_start(&mut self, ctx: &mut Context) {
        if ctx.pid() == Pid(0) {
            for i in 0..self.k {
                ctx.send(Pid(1), 1, vec![i as u8; 32]);
            }
        }
    }
    fn on_message(&mut self, _ctx: &mut Context, _msg: &Message) {}
    fn on_timer(&mut self, _ctx: &mut Context, _t: TimerId) {}
    fn snapshot(&self) -> Vec<u8> {
        self.k.to_le_bytes().to_vec()
    }
    fn restore(&mut self, b: &[u8]) {
        self.k = u64::from_le_bytes(b.try_into().unwrap());
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(SendK { k: self.k })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[test]
fn seal_reclaiming_returns_scroll_held_boxes_to_the_world() {
    const K: u64 = 4;
    const CAP: usize = 2;
    let mut cfg = WorldConfig::seeded(23);
    cfg.trace_cap = Some(CAP);
    let mut w = World::new(cfg);
    w.add_process(Box::new(SendK { k: K }));
    w.add_process(Box::new(SendK { k: 0 }));
    w.add_process(Box::new(SendK { k: 0 }));

    // Record P1's deliveries into a spill-capable store (threshold high
    // enough that sealing happens only when we ask).
    let mut store = ScrollStore::with_spill(3, SpillConfig::new(SharedDisk::new(), 1 << 20));
    let mut local_seq = 0u64;
    while let Some(rec) = w.step() {
        if let EventKind::Deliver { msg } = &rec.event.kind {
            store.append(ScrollEntry {
                pid: msg.dst,
                local_seq,
                at: rec.event.at,
                lamport: msg.meta.lamport + 1,
                vc: VectorClock::new(3),
                kind: EntryKind::Deliver { msg: msg.clone() },
                randoms: rec.effects.randoms.clone(),
                effects_fp: rec.effects.fingerprint(),
                sends: 0,
            });
            local_seq += 1;
        }
    }
    assert_eq!(local_seq, K);

    // Evict everything from the bounded trace: after this the scroll's
    // resident entries are the sole holders of the delivered boxes.
    for _ in 0..CAP {
        w.crash_now(Pid(2));
    }
    let before = w.arena_stats();
    assert_eq!(
        before.msgs_pooled, 0,
        "scroll refs keep every box out of the pool: {before:?}"
    );

    store.seal_reclaiming(Pid(1), &mut w);
    let after = w.arena_stats();
    assert_eq!(
        after.msgs_pooled, K as usize,
        "sealing released each box to the pool exactly once: {after:?}"
    );
    // The sealed entries are still readable from the spilled segment.
    assert_eq!(store.scroll(Pid(1)).len(), K as usize);
}
