//! Property-based tests for the Healer: migration combinator laws and
//! update/restart invariants.

use proptest::prelude::*;

use fixd_healer::{migrate, Patch};
use fixd_runtime::{Context, Message, Pid, Program};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// identity is a unit for compose.
    #[test]
    fn identity_unit(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let left = migrate::compose(migrate::identity(), migrate::identity());
        prop_assert_eq!(left(&bytes).unwrap(), bytes.clone());
    }

    /// compose associates.
    #[test]
    fn compose_associative(bytes in proptest::collection::vec(any::<u8>(), 0..64),
                           suffix_a in proptest::collection::vec(any::<u8>(), 0..8),
                           suffix_b in proptest::collection::vec(any::<u8>(), 0..8)) {
        let f = migrate::append(suffix_a);
        let g = migrate::append(suffix_b);
        let h = migrate::identity();
        let lhs = migrate::compose(migrate::compose(f.clone(), g.clone()), h.clone());
        let rhs = migrate::compose(f, migrate::compose(g, h));
        prop_assert_eq!(lhs(&bytes).unwrap(), rhs(&bytes).unwrap());
    }

    /// append then truncate to the original length is identity.
    #[test]
    fn append_truncate_inverse(bytes in proptest::collection::vec(any::<u8>(), 0..64),
                               suffix in proptest::collection::vec(any::<u8>(), 0..16)) {
        let n = bytes.len();
        let m = migrate::compose(migrate::append(suffix), migrate::truncate(n));
        prop_assert_eq!(m(&bytes).unwrap(), bytes.clone());
    }

    /// A guarded migration refuses exactly when the guard says so.
    #[test]
    fn guard_exactness(bytes in proptest::collection::vec(any::<u8>(), 0..32), limit in 0usize..32) {
        let m = migrate::guarded(move |b| b.len() <= limit, "too long", migrate::identity());
        let r = m(&bytes);
        if bytes.len() <= limit {
            prop_assert!(r.is_ok());
        } else {
            prop_assert!(r.is_err());
        }
    }
}

/// A parameterized accumulator for patch-roundtrip properties.
struct Gen {
    acc: u64,
    mult: u64,
}
impl Program for Gen {
    fn on_message(&mut self, _ctx: &mut Context, msg: &Message) {
        self.acc = self
            .acc
            .wrapping_add(u64::from(msg.payload[0]).wrapping_mul(self.mult));
    }
    fn snapshot(&self) -> Vec<u8> {
        let mut b = self.acc.to_le_bytes().to_vec();
        b.extend_from_slice(&self.mult.to_le_bytes());
        b
    }
    fn restore(&mut self, b: &[u8]) {
        self.acc = u64::from_le_bytes(b[0..8].try_into().unwrap());
        self.mult = u64::from_le_bytes(b[8..16].try_into().unwrap());
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Gen {
            acc: self.acc,
            mult: self.mult,
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Patch::instantiate` with an identity migration reproduces the
    /// old state bit-exactly in the new program.
    #[test]
    fn identity_patch_roundtrip(acc in any::<u64>(), mult in any::<u64>()) {
        let old = Gen { acc, mult };
        let patch = Patch::code_only("p", 1, 2, || Box::new(Gen { acc: 0, mult: 0 }));
        let new_prog = patch.instantiate(&old.snapshot()).unwrap();
        prop_assert_eq!(new_prog.snapshot(), old.snapshot());
    }

    /// Behavioral equivalence holds between a program and its identity
    /// patch, for arbitrary probe payloads.
    #[test]
    fn identity_patch_behaviorally_equivalent(
        acc in any::<u64>(), mult in 0u64..1000,
        probes in proptest::collection::vec(any::<u8>(), 1..6),
    ) {
        use fixd_healer::{behavioral_equivalence, EquivalenceProbe};
        let mut old = Gen { acc, mult };
        let patch = Patch::code_only("p", 1, 2, || Box::new(Gen { acc: 0, mult: 0 }));
        let mut new_prog = patch.instantiate(&old.snapshot()).unwrap();
        let probes: Vec<EquivalenceProbe> = probes
            .into_iter()
            .map(|v| {
                EquivalenceProbe::Deliver(fixd_runtime::Message {
                    id: 0,
                    src: Pid(0),
                    dst: Pid(1),
                    tag: 1,
                    payload: vec![v].into(),
                    sent_at: 0,
                    vc: fixd_runtime::VectorClock::new(2),
                    meta: fixd_runtime::MsgMeta::default(),
                })
            })
            .collect();
        prop_assert!(behavioral_equivalence(
            Pid(1), 2, 9, &mut old, new_prog.as_mut(), &probes
        ));
    }
}
