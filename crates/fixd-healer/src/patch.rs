//! Patches: a new program version plus everything needed to apply it
//! safely to a running process.
//!
//! Mirrors Ginseng's shape (§4.4) at the [`Program`] granularity: the
//! compiler + patch generator become the `factory` (code for the new
//! version) and `migration` (state transformer); the safety analysis
//! becomes the `precondition` evaluated at the chosen update point.

use std::sync::Arc;

use fixd_runtime::Program;

use crate::migrate::{identity, Migration};

/// Shared update-point safety predicate over an old-version snapshot.
pub type Precondition = Arc<dyn Fn(&[u8]) -> bool + Send + Sync>;

/// A dynamic software update for one program type.
#[derive(Clone)]
pub struct Patch {
    /// Human-readable patch name (bug tracker id, etc.).
    pub name: String,
    /// Version this patch upgrades from.
    pub from_version: u32,
    /// Version this patch produces.
    pub to_version: u32,
    /// Constructor for the new version's program (initial state; real
    /// state arrives via `migration`).
    pub factory: Arc<dyn Fn() -> Box<dyn Program> + Send + Sync>,
    /// State migration from old snapshot to new snapshot.
    pub migration: Migration,
    /// Update-point safety check over the *old* state ("all invariants
    /// hold here, and the state is equivalent-translatable").
    pub precondition: Option<Precondition>,
}

impl Patch {
    /// A patch with an identity migration and no precondition.
    pub fn code_only(
        name: &str,
        from_version: u32,
        to_version: u32,
        factory: impl Fn() -> Box<dyn Program> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            from_version,
            to_version,
            factory: Arc::new(factory),
            migration: identity(),
            precondition: None,
        }
    }

    /// Attach a state migration (builder style).
    pub fn with_migration(mut self, m: Migration) -> Self {
        self.migration = m;
        self
    }

    /// Attach an update-point precondition.
    pub fn with_precondition(mut self, p: impl Fn(&[u8]) -> bool + Send + Sync + 'static) -> Self {
        self.precondition = Some(Arc::new(p));
        self
    }

    /// Does the precondition accept this old state? (Vacuously true when
    /// no precondition is attached.)
    pub fn applicable_to(&self, old_state: &[u8]) -> bool {
        self.precondition.as_ref().is_none_or(|p| p(old_state))
    }

    /// Build the new program with the migrated state installed.
    pub fn instantiate(
        &self,
        old_state: &[u8],
    ) -> Result<Box<dyn Program>, crate::migrate::MigrateError> {
        let new_state = (self.migration)(old_state)?;
        let mut p = (self.factory)();
        p.restore(&new_state);
        Ok(p)
    }
}

impl std::fmt::Debug for Patch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Patch({} v{}→v{})",
            self.name, self.from_version, self.to_version
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::Context;

    pub(crate) struct V1 {
        pub n: u64,
    }
    impl Program for V1 {
        fn on_message(&mut self, _ctx: &mut Context, _msg: &fixd_runtime::Message) {
            self.n += 1; // v1 "bug": counts everything
        }
        fn snapshot(&self) -> Vec<u8> {
            self.n.to_le_bytes().to_vec()
        }
        fn restore(&mut self, b: &[u8]) {
            self.n = u64::from_le_bytes(b.try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(V1 { n: self.n })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn name(&self) -> &'static str {
            "v1"
        }
    }

    pub(crate) struct V2 {
        pub n: u64,
        pub skipped: u64,
    }
    impl Program for V2 {
        fn snapshot(&self) -> Vec<u8> {
            let mut b = self.n.to_le_bytes().to_vec();
            b.extend_from_slice(&self.skipped.to_le_bytes());
            b
        }
        fn restore(&mut self, b: &[u8]) {
            self.n = u64::from_le_bytes(b[0..8].try_into().unwrap());
            self.skipped = u64::from_le_bytes(b[8..16].try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(V2 {
                n: self.n,
                skipped: self.skipped,
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn name(&self) -> &'static str {
            "v2"
        }
    }

    fn v1_to_v2() -> Patch {
        Patch::code_only("fix-123", 1, 2, || Box::new(V2 { n: 0, skipped: 0 }))
            .with_migration(crate::migrate::append(0u64.to_le_bytes().to_vec()))
            .with_precondition(|old| old.len() == 8)
    }

    #[test]
    fn instantiate_migrates_state() {
        let p = v1_to_v2();
        let old = V1 { n: 42 };
        let new_prog = p.instantiate(&old.snapshot()).unwrap();
        let v2 = new_prog.as_any().downcast_ref::<V2>().unwrap();
        assert_eq!(v2.n, 42, "counter carried over");
        assert_eq!(v2.skipped, 0, "new field defaulted");
    }

    #[test]
    fn precondition_gates_applicability() {
        let p = v1_to_v2();
        assert!(p.applicable_to(&7u64.to_le_bytes()));
        assert!(!p.applicable_to(b"bad"));
        let no_pre = Patch::code_only("x", 1, 2, || Box::new(V2 { n: 0, skipped: 0 }));
        assert!(no_pre.applicable_to(b"anything"));
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", v1_to_v2()), "Patch(fix-123 v1→v2)");
    }
}
