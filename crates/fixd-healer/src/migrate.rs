//! State migration functions and combinators.
//!
//! A dynamic update replaces a program's code; its *state* must be carried
//! across the version boundary. Migrations are byte-image transformers
//! (`old snapshot → new snapshot`), composable and fallible: a migration
//! that cannot prove the old state maps to a valid new state refuses, and
//! the Healer falls back to deeper rollback or restart (paper §3.4:
//! "this might not always be possible and restarting the program from
//! scratch could be the only option").

use std::sync::Arc;

/// Why a migration refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MigrateError {
    /// The old state failed the migration's validity check.
    Invalid(String),
    /// The old state could not be decoded.
    Malformed(String),
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::Invalid(m) => write!(f, "state invalid for migration: {m}"),
            MigrateError::Malformed(m) => write!(f, "malformed state: {m}"),
        }
    }
}

impl std::error::Error for MigrateError {}

/// A state migration: old snapshot bytes → new snapshot bytes.
pub type Migration = Arc<dyn Fn(&[u8]) -> Result<Vec<u8>, MigrateError> + Send + Sync>;

/// The identity migration (layout unchanged between versions).
pub fn identity() -> Migration {
    Arc::new(|b: &[u8]| Ok(b.to_vec()))
}

/// Append fixed bytes (new trailing field with a default value).
pub fn append(suffix: Vec<u8>) -> Migration {
    Arc::new(move |b: &[u8]| {
        let mut out = b.to_vec();
        out.extend_from_slice(&suffix);
        Ok(out)
    })
}

/// Keep only the first `n` bytes (drop a trailing field).
pub fn truncate(n: usize) -> Migration {
    Arc::new(move |b: &[u8]| {
        if b.len() < n {
            return Err(MigrateError::Malformed(format!(
                "state is {} bytes, expected at least {n}",
                b.len()
            )));
        }
        Ok(b[..n].to_vec())
    })
}

/// Arbitrary transformer from a closure.
pub fn from_fn(
    f: impl Fn(&[u8]) -> Result<Vec<u8>, MigrateError> + Send + Sync + 'static,
) -> Migration {
    Arc::new(f)
}

/// Sequential composition: `second ∘ first`.
pub fn compose(first: Migration, second: Migration) -> Migration {
    Arc::new(move |b: &[u8]| {
        let mid = first(b)?;
        second(&mid)
    })
}

/// Guard a migration with a validity predicate over the *old* state.
pub fn guarded(
    check: impl Fn(&[u8]) -> bool + Send + Sync + 'static,
    why: &str,
    inner: Migration,
) -> Migration {
    let why = why.to_string();
    Arc::new(move |b: &[u8]| {
        if !check(b) {
            return Err(MigrateError::Invalid(why.clone()));
        }
        inner(b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let m = identity();
        assert_eq!(m(b"abc").unwrap(), b"abc");
    }

    #[test]
    fn append_and_truncate() {
        let a = append(vec![0, 0]);
        assert_eq!(a(b"xy").unwrap(), vec![b'x', b'y', 0, 0]);
        let t = truncate(1);
        assert_eq!(t(b"xy").unwrap(), vec![b'x']);
        assert!(matches!(t(b"").unwrap_err(), MigrateError::Malformed(_)));
    }

    #[test]
    fn compose_applies_in_order() {
        let m = compose(append(vec![1]), truncate(2));
        assert_eq!(m(b"a").unwrap(), vec![b'a', 1]);
        let m2 = compose(truncate(1), append(vec![9]));
        assert_eq!(m2(b"ab").unwrap(), vec![b'a', 9]);
    }

    #[test]
    fn guarded_refuses_invalid_states() {
        let m = guarded(
            |b| !b.is_empty() && b[0] < 10,
            "counter too large",
            identity(),
        );
        assert!(m(&[3]).is_ok());
        let err = m(&[99]).unwrap_err();
        assert!(matches!(err, MigrateError::Invalid(_)));
        assert!(err.to_string().contains("counter too large"));
    }

    #[test]
    fn from_fn_custom_transform() {
        // u64 LE counter doubled in the new version's representation.
        let m = from_fn(|b| {
            let v = u64::from_le_bytes(
                b.try_into()
                    .map_err(|_| MigrateError::Malformed("not a u64".into()))?,
            );
            Ok((v * 2).to_le_bytes().to_vec())
        });
        assert_eq!(
            m(&5u64.to_le_bytes()).unwrap(),
            10u64.to_le_bytes().to_vec()
        );
        assert!(m(b"short").is_err());
    }
}
