//! Behavioral state-equivalence checking.
//!
//! Paper §4.4 (ModelD as Healer): *"additional steps need to be taken in
//! order to ensure that a state in the original implementation is
//! equivalent to some resulting state in the updated implementation."*
//!
//! We check equivalence *behaviorally*: drive the old program (from the
//! old state) and the new program (from the migrated state) through the
//! same probe events under identical [`SoloHarness`] contexts and compare
//! the observable effects (sends, timers, outputs). If every probe
//! produces equivalent effects, the update point is declared safe for
//! this state. This is a bounded check — probes are the update author's
//! responsibility, like Ginseng's programmer-assisted safety arguments.

use fixd_runtime::{Effects, Message, Pid, Program, SoloHarness, TimerId};

/// One probe event to drive both versions through.
#[derive(Clone, Debug)]
pub enum EquivalenceProbe {
    /// Deliver this message.
    Deliver(Message),
    /// Fire this timer.
    Timer(TimerId),
}

/// Compare the observable parts of two effect sets. Timer ids may differ
/// between versions (fresh counters), so equivalence compares send
/// content, output bytes, timer *counts*, and crash flags — not raw
/// fingerprints.
fn effects_equivalent(a: &Effects, b: &Effects) -> bool {
    a.sends.len() == b.sends.len()
        && a.sends
            .iter()
            .zip(b.sends.iter())
            .all(|(x, y)| x.content_fingerprint() == y.content_fingerprint())
        && a.outputs == b.outputs
        && a.timers_set.len() == b.timers_set.len()
        && a.crashed == b.crashed
}

/// Drive `old` (from its current state) and `new` (from its migrated
/// state) through `probes`; true iff every probe yields equivalent
/// observable effects.
///
/// Both programs are driven under fresh harnesses with the same `pid`,
/// `width`, and `seed`, so RNG draws line up.
pub fn behavioral_equivalence(
    pid: Pid,
    width: usize,
    seed: u64,
    old: &mut dyn Program,
    new: &mut dyn Program,
    probes: &[EquivalenceProbe],
) -> bool {
    let mut ha = SoloHarness::new(pid, width, seed);
    let mut hb = SoloHarness::new(pid, width, seed);
    for probe in probes {
        let (ea, eb) = match probe {
            EquivalenceProbe::Deliver(m) => (ha.deliver(old, m), hb.deliver(new, m)),
            EquivalenceProbe::Timer(t) => (ha.timer(old, *t), hb.timer(new, *t)),
        };
        if !effects_equivalent(&ea, &eb) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::{Context, MsgMeta, VectorClock};

    /// v1: forwards doubled values. v2: same observable behavior, new
    /// internal bookkeeping field (behaviorally equivalent).
    struct A {
        total: u64,
    }
    impl Program for A {
        fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
            self.total += u64::from(msg.payload[0]);
            ctx.send(Pid(0), 9, vec![msg.payload[0] * 2]);
        }
        fn snapshot(&self) -> Vec<u8> {
            self.total.to_le_bytes().to_vec()
        }
        fn restore(&mut self, b: &[u8]) {
            self.total = u64::from_le_bytes(b.try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(A { total: self.total })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    struct B {
        total: u64,
        seen: u64, // new field, not observable
    }
    impl Program for B {
        fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
            self.total += u64::from(msg.payload[0]);
            self.seen += 1;
            ctx.send(Pid(0), 9, vec![msg.payload[0] * 2]);
        }
        fn snapshot(&self) -> Vec<u8> {
            let mut v = self.total.to_le_bytes().to_vec();
            v.extend_from_slice(&self.seen.to_le_bytes());
            v
        }
        fn restore(&mut self, b: &[u8]) {
            self.total = u64::from_le_bytes(b[0..8].try_into().unwrap());
            self.seen = u64::from_le_bytes(b[8..16].try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(B {
                total: self.total,
                seen: self.seen,
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// v3: behavior change — triples instead of doubling (NOT equivalent).
    struct C;
    impl Program for C {
        fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
            ctx.send(Pid(0), 9, vec![msg.payload[0] * 3]);
        }
        fn snapshot(&self) -> Vec<u8> {
            vec![]
        }
        fn restore(&mut self, _b: &[u8]) {}
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(C)
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn probe(v: u8) -> EquivalenceProbe {
        EquivalenceProbe::Deliver(Message {
            id: 0,
            src: Pid(0),
            dst: Pid(1),
            tag: 1,
            payload: vec![v].into(),
            sent_at: 0,
            vc: VectorClock::new(2),
            meta: MsgMeta::default(),
        })
    }

    #[test]
    fn equivalent_versions_pass() {
        let mut old = A { total: 5 };
        let mut new = B { total: 5, seen: 0 };
        assert!(behavioral_equivalence(
            Pid(1),
            2,
            3,
            &mut old,
            &mut new,
            &[probe(1), probe(2), probe(7)],
        ));
    }

    #[test]
    fn behavior_change_detected() {
        let mut old = A { total: 5 };
        let mut new = C;
        assert!(!behavioral_equivalence(
            Pid(1),
            2,
            3,
            &mut old,
            &mut new,
            &[probe(1)],
        ));
    }

    #[test]
    fn empty_probe_set_is_vacuously_equivalent() {
        let mut old = A { total: 0 };
        let mut new = C;
        assert!(behavioral_equivalence(
            Pid(1),
            2,
            3,
            &mut old,
            &mut new,
            &[]
        ));
    }
}
