//! # fixd-healer — the Healer
//!
//! Reproduction of the **Healer** component of FixD (paper §3.4, Fig. 5;
//! implementation §4.4): once the Investigator has shown the programmer
//! which execution paths violate invariants and the code has been fixed,
//! the Healer brings the *running* system onto the fixed code. Two
//! recovery strategies, exactly as §3.4 lays out:
//!
//! 1. **Restart from scratch** — "the simplest option and is the one that
//!    is used classically after a system failure";
//! 2. **Dynamic update from a checkpoint** — "restarted from a previously
//!    saved checkpoint where all invariants are satisfied", salvaging
//!    "computation that was correctly performed while executing the
//!    faulty program". This "requires the ability to modify an executing
//!    process in place and provide certain guarantees that dynamically
//!    updating the process does not break type safety or invalidate any
//!    invariants."
//!
//! The guarantees are provided Ginseng-style (§4.4): [`patch`]es carry a
//! state migration function and an update-point precondition;
//! [`quiesce`] identifies safe update points; [`equivalence`] offers a
//! behavioral state-equivalence check (the ModelD-flavoured alternative —
//! "the programmer has to either force rollback to a point where this
//! condition can be automatically verified or has to write the update
//! such that state equivalence is guaranteed").

pub mod equivalence;
pub mod migrate;
pub mod patch;
pub mod quiesce;
pub mod registry;
pub mod update;

pub use equivalence::{behavioral_equivalence, EquivalenceProbe};
pub use migrate::MigrateError;
pub use patch::Patch;
pub use quiesce::{update_point, UpdatePoint};
pub use registry::VersionRegistry;
pub use update::{HealReport, Healer, RecoveryStrategy};
