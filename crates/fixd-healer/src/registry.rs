//! Version registry: which program version each process runs, and which
//! patches are available to move between versions.

use std::collections::HashMap;

use fixd_runtime::Pid;

use crate::patch::Patch;

/// Tracks per-process code versions and registered patches.
#[derive(Default)]
pub struct VersionRegistry {
    versions: HashMap<Pid, u32>,
    patches: Vec<Patch>,
}

impl VersionRegistry {
    /// Empty registry; processes default to version 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current version of `pid` (1 if never set).
    pub fn version_of(&self, pid: Pid) -> u32 {
        self.versions.get(&pid).copied().unwrap_or(1)
    }

    /// Record that `pid` now runs `version`.
    pub fn set_version(&mut self, pid: Pid, version: u32) {
        self.versions.insert(pid, version);
    }

    /// Register a patch. Returns its index.
    pub fn register(&mut self, patch: Patch) -> usize {
        self.patches.push(patch);
        self.patches.len() - 1
    }

    /// All registered patches.
    pub fn patches(&self) -> &[Patch] {
        &self.patches
    }

    /// The patch (if any) that upgrades `pid` from its current version.
    pub fn next_patch_for(&self, pid: Pid) -> Option<&Patch> {
        let v = self.version_of(pid);
        self.patches.iter().find(|p| p.from_version == v)
    }

    /// The chain of patches from `from` up to the highest reachable
    /// version (each step must exist; stops at a gap).
    pub fn upgrade_chain(&self, from: u32) -> Vec<&Patch> {
        let mut chain = Vec::new();
        let mut v = from;
        loop {
            match self.patches.iter().find(|p| p.from_version == v) {
                Some(p) => {
                    v = p.to_version;
                    chain.push(p);
                }
                None => return chain,
            }
        }
    }
}

impl std::fmt::Debug for VersionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VersionRegistry({} processes tracked, {} patches)",
            self.versions.len(),
            self.patches.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::{Context, Program};

    struct Nop;
    impl Program for Nop {
        fn on_start(&mut self, _ctx: &mut Context) {}
        fn snapshot(&self) -> Vec<u8> {
            vec![]
        }
        fn restore(&mut self, _b: &[u8]) {}
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Nop)
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn patch(from: u32, to: u32) -> Patch {
        Patch::code_only(&format!("p{from}-{to}"), from, to, || Box::new(Nop))
    }

    #[test]
    fn default_version_is_one() {
        let r = VersionRegistry::new();
        assert_eq!(r.version_of(Pid(0)), 1);
    }

    #[test]
    fn version_tracking() {
        let mut r = VersionRegistry::new();
        r.set_version(Pid(2), 3);
        assert_eq!(r.version_of(Pid(2)), 3);
        assert_eq!(r.version_of(Pid(0)), 1);
    }

    #[test]
    fn next_patch_respects_current_version() {
        let mut r = VersionRegistry::new();
        r.register(patch(1, 2));
        r.register(patch(2, 3));
        assert_eq!(r.next_patch_for(Pid(0)).unwrap().to_version, 2);
        r.set_version(Pid(0), 2);
        assert_eq!(r.next_patch_for(Pid(0)).unwrap().to_version, 3);
        r.set_version(Pid(0), 3);
        assert!(r.next_patch_for(Pid(0)).is_none());
    }

    #[test]
    fn upgrade_chain_stops_at_gap() {
        let mut r = VersionRegistry::new();
        r.register(patch(1, 2));
        r.register(patch(2, 3));
        r.register(patch(5, 6)); // gap: no 3→4
        let chain = r.upgrade_chain(1);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[1].to_version, 3);
        assert!(r.upgrade_chain(9).is_empty());
    }
}
