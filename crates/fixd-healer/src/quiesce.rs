//! Update-point detection: when is it safe to swap a process's code?
//!
//! Paper §3.4 requires updating "when it is in a state that does not
//! violate any invariants". We additionally require (Ginseng-style
//! conservatism) that the process is *quiescent*: no in-flight messages
//! involve it, and it is not inside an active speculation — so the swap
//! cannot interleave with a half-finished exchange on the old protocol.

use fixd_runtime::{Pid, World};
use fixd_timemachine::TimeMachine;

/// The verdict on one candidate update point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdatePoint {
    pub pid: Pid,
    /// No messages in flight to or from the process.
    pub channels_quiet: bool,
    /// Not inside an active speculation.
    pub not_speculative: bool,
    /// The caller-supplied invariant check passed.
    pub invariants_hold: bool,
}

impl UpdatePoint {
    /// Safe overall?
    pub fn is_safe(&self) -> bool {
        self.channels_quiet && self.not_speculative && self.invariants_hold
    }

    /// Human-readable refusal reason, if unsafe.
    pub fn refusal(&self) -> Option<String> {
        if self.is_safe() {
            return None;
        }
        let mut why = Vec::new();
        if !self.channels_quiet {
            why.push("messages in flight");
        }
        if !self.not_speculative {
            why.push("inside an active speculation");
        }
        if !self.invariants_hold {
            why.push("invariants do not hold");
        }
        Some(why.join(", "))
    }
}

/// Evaluate the update point for `pid` right now.
///
/// `invariants_hold` is the caller's predicate over the world (typically
/// the same invariants the Investigator checked, evaluated on the
/// restored state).
pub fn update_point(
    world: &World,
    tm: &TimeMachine,
    pid: Pid,
    invariants_hold: impl FnOnce(&World) -> bool,
) -> UpdatePoint {
    let channels_quiet = !world
        .inflight_messages()
        .iter()
        .any(|m| m.src == pid || m.dst == pid);
    UpdatePoint {
        pid,
        channels_quiet,
        not_speculative: tm.active_spec_of(pid).is_none(),
        invariants_hold: invariants_hold(world),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::{Context, Program, WorldConfig};
    use fixd_timemachine::{CheckpointPolicy, TimeMachineConfig};

    struct Talky;
    impl Program for Talky {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                ctx.send(Pid(1), 1, vec![4]);
            }
        }
        fn on_message(&mut self, ctx: &mut Context, msg: &fixd_runtime::Message) {
            if msg.payload[0] > 0 {
                let other = Pid(1 - ctx.pid().0);
                ctx.send(other, 1, vec![msg.payload[0] - 1]);
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            vec![0]
        }
        fn restore(&mut self, _b: &[u8]) {}
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Talky)
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn setup() -> (World, TimeMachine) {
        let mut w = World::new(WorldConfig::seeded(2));
        w.add_process(Box::new(Talky));
        w.add_process(Box::new(Talky));
        let tm = TimeMachine::new(
            2,
            TimeMachineConfig {
                policy: CheckpointPolicy::EveryReceive,
                ..Default::default()
            },
        );
        (w, tm)
    }

    #[test]
    fn mid_conversation_is_not_quiet() {
        let (mut w, mut tm) = setup();
        tm.run(&mut w, 2); // P0's send is in flight
        let up = update_point(&w, &tm, Pid(1), |_| true);
        assert!(!up.channels_quiet);
        assert!(!up.is_safe());
        assert!(up.refusal().unwrap().contains("messages in flight"));
    }

    #[test]
    fn quiescent_world_is_safe() {
        let (mut w, mut tm) = setup();
        tm.run(&mut w, 10_000);
        let up = update_point(&w, &tm, Pid(1), |_| true);
        assert!(up.is_safe());
        assert_eq!(up.refusal(), None);
    }

    #[test]
    fn speculation_blocks_update() {
        let (mut w, mut tm) = setup();
        tm.run(&mut w, 10_000);
        tm.speculate(&mut w, Pid(1), "risky assumption");
        let up = update_point(&w, &tm, Pid(1), |_| true);
        assert!(!up.not_speculative);
        assert!(up.refusal().unwrap().contains("speculation"));
    }

    #[test]
    fn invariant_failure_blocks_update() {
        let (mut w, mut tm) = setup();
        tm.run(&mut w, 10_000);
        let up = update_point(&w, &tm, Pid(0), |_| false);
        assert!(!up.invariants_hold);
        assert!(!up.is_safe());
    }
}
