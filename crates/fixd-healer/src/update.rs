//! The Healer: apply a fix to a running distributed application.
//!
//! Implements both recovery options of §3.4 (Fig. 5):
//!
//! * [`Healer::restart_from_scratch`] — install the new code everywhere
//!   and restart from initial state, discarding all computation;
//! * [`Healer::update_from_checkpoint`] — roll back (with the Time
//!   Machine) to a checkpoint "where all invariants are satisfied",
//!   migrate the restored states across the version boundary, swap the
//!   code in place, and resume — salvaging the checkpointed computation.
//!
//! The second path verifies safety before committing: the patch
//! precondition must accept the restored state and the update point must
//! be quiescent ([`crate::quiesce`]). On refusal the Healer reports why,
//! and the caller can roll back deeper or fall back to restart — the
//! paper's "restarting the program from scratch could be the only
//! option".

use fixd_runtime::{Pid, World};
use fixd_timemachine::{RollbackReport, TimeMachine};

use crate::patch::Patch;
use crate::quiesce::update_point;
use crate::registry::VersionRegistry;

/// Which §3.4 recovery option was used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryStrategy {
    RestartFromScratch,
    UpdateFromCheckpoint,
}

/// What a healing operation did.
#[derive(Clone, Debug)]
pub struct HealReport {
    pub strategy: RecoveryStrategy,
    /// Processes now running the new version.
    pub procs_updated: Vec<Pid>,
    /// Handler events preserved (not rolled back, not discarded) across
    /// all updated processes — the salvaged computation of §3.4.
    pub salvaged_events: u64,
    /// Handler events discarded (rolled back or reset).
    pub discarded_events: u64,
    /// Rollback details (update-from-checkpoint only).
    pub rollback: Option<RollbackReport>,
}

/// Why a healing operation refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HealError {
    /// The Time Machine could not restore the requested line.
    Rollback(fixd_timemachine::recovery::RollbackError),
    /// The patch precondition rejected the restored state of this process.
    PreconditionFailed(Pid),
    /// The state migration failed for this process.
    Migration(Pid, crate::migrate::MigrateError),
    /// The update point is unsafe (reason text from [`crate::quiesce`]).
    UnsafeUpdatePoint(Pid, String),
}

impl std::fmt::Display for HealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealError::Rollback(e) => write!(f, "rollback failed: {e}"),
            HealError::PreconditionFailed(p) => write!(f, "{p}: patch precondition failed"),
            HealError::Migration(p, e) => write!(f, "{p}: migration failed: {e}"),
            HealError::UnsafeUpdatePoint(p, why) => write!(f, "{p}: unsafe update point: {why}"),
        }
    }
}

impl std::error::Error for HealError {}

/// The Healer. Owns the version registry; borrows the world and Time
/// Machine per operation.
#[derive(Debug, Default)]
pub struct Healer {
    registry: VersionRegistry,
}

impl Healer {
    /// A Healer with an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a patch for later application.
    pub fn register(&mut self, patch: Patch) {
        self.registry.register(patch);
    }

    /// The version registry.
    pub fn registry(&self) -> &VersionRegistry {
        &self.registry
    }

    /// Option 1 (§3.4): restart `pids` from scratch on the new code.
    /// All their computation is discarded; `tm` is consulted only for the
    /// discarded-event accounting.
    pub fn restart_from_scratch(
        &mut self,
        world: &mut World,
        tm: &TimeMachine,
        patch: &Patch,
        pids: &[Pid],
    ) -> HealReport {
        let mut discarded = 0;
        // A restarted process's past is discarded wholesale: stale mail
        // and timers addressed to it must not leak into the fresh run.
        let targets = pids.to_vec();
        world.purge_events(move |k| match k {
            fixd_runtime::EventKind::Deliver { msg } => targets.contains(&msg.dst),
            fixd_runtime::EventKind::TimerFire { pid, .. } => targets.contains(pid),
            _ => false,
        });
        for &pid in pids {
            discarded += tm.events_handled(pid);
            let fresh = (patch.factory)();
            world.replace_program(pid, fresh);
            world.revive(pid);
            world.schedule_start(pid);
            self.registry.set_version(pid, patch.to_version);
        }
        HealReport {
            strategy: RecoveryStrategy::RestartFromScratch,
            procs_updated: pids.to_vec(),
            salvaged_events: 0,
            discarded_events: discarded,
            rollback: None,
        }
    }

    /// Option 2 (§3.4): roll back to a consistent checkpoint where the
    /// invariants hold and dynamically update every process that rolled
    /// back, resuming from the salvaged state.
    ///
    /// * `fail` / `target` — the failed process and the checkpoint to
    ///   restore (typically chosen by the FixD detector: the newest
    ///   checkpoint where `invariants_hold`);
    /// * `patch` — applied to every process on the recovery line (and to
    ///   `also_update` even if they did not roll back);
    /// * `invariants_hold` — evaluated on the restored world before the
    ///   code swap commits.
    #[allow(clippy::too_many_arguments)]
    pub fn update_from_checkpoint(
        &mut self,
        world: &mut World,
        tm: &mut TimeMachine,
        fail: Pid,
        target: u64,
        patch: &Patch,
        also_update: &[Pid],
        invariants_hold: impl Fn(&World) -> bool,
    ) -> Result<HealReport, HealError> {
        // 1. Roll back to a consistent line.
        let rollback = tm
            .rollback(world, fail, target)
            .map_err(HealError::Rollback)?;
        // 2. Determine who gets the new code: rolled-back + requested.
        let mut targets: Vec<Pid> = rollback
            .line
            .iter()
            .enumerate()
            .filter(|(_, &l)| l != fixd_timemachine::NO_ROLLBACK)
            .map(|(i, _)| Pid(i as u32))
            .collect();
        for &p in also_update {
            if !targets.contains(&p) {
                targets.push(p);
            }
        }
        // 3. Safety: invariants must hold on the restored line and no
        //    target may sit inside an active speculation. Channel
        //    quiescence is deliberately NOT required here: the rollback
        //    itself re-injects the undone inputs, and processing those
        //    under the new code is precisely the point of the update.
        //    (For updates outside a rollback, use [`update_point`] which
        //    does require quiet channels.)
        for &pid in &targets {
            let up = update_point(world, tm, pid, &invariants_hold);
            if !up.not_speculative || !up.invariants_hold {
                let mut relaxed = up;
                relaxed.channels_quiet = true; // ignored in this mode
                return Err(HealError::UnsafeUpdatePoint(
                    pid,
                    relaxed.refusal().unwrap_or_default(),
                ));
            }
        }
        // 4. Migrate and swap, all-or-nothing: validate first.
        let mut staged = Vec::with_capacity(targets.len());
        for &pid in &targets {
            let old_state = world.checkpoint_process(pid).state.into_bytes();
            if !patch.applicable_to(&old_state) {
                return Err(HealError::PreconditionFailed(pid));
            }
            let new_prog = patch
                .instantiate(&old_state)
                .map_err(|e| HealError::Migration(pid, e))?;
            staged.push((pid, new_prog));
        }
        let mut salvaged = 0;
        for (pid, prog) in staged {
            world.replace_program(pid, prog);
            salvaged += tm.events_handled(pid);
            self.registry.set_version(pid, patch.to_version);
        }
        Ok(HealReport {
            strategy: RecoveryStrategy::UpdateFromCheckpoint,
            procs_updated: targets,
            salvaged_events: salvaged,
            discarded_events: rollback.events_undone,
            rollback: Some(rollback),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migrate;
    use fixd_runtime::{Context, Message, Program, WorldConfig};
    use fixd_timemachine::{CheckpointPolicy, TimeMachineConfig};

    /// v1 accumulator with a bug: it also counts tag-9 "poison" messages.
    struct SumV1 {
        sum: u64,
    }
    impl Program for SumV1 {
        fn on_message(&mut self, _ctx: &mut Context, msg: &Message) {
            // BUG: should ignore tag 9.
            self.sum += u64::from(msg.payload[0]);
            let _ = msg.tag;
        }
        fn snapshot(&self) -> Vec<u8> {
            self.sum.to_le_bytes().to_vec()
        }
        fn restore(&mut self, b: &[u8]) {
            self.sum = u64::from_le_bytes(b.try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(SumV1 { sum: self.sum })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// v2: fixed (ignores tag 9) and tracks how many it ignored.
    struct SumV2 {
        sum: u64,
        ignored: u64,
    }
    impl Program for SumV2 {
        fn on_message(&mut self, _ctx: &mut Context, msg: &Message) {
            if msg.tag == 9 {
                self.ignored += 1;
            } else {
                self.sum += u64::from(msg.payload[0]);
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            let mut b = self.sum.to_le_bytes().to_vec();
            b.extend_from_slice(&self.ignored.to_le_bytes());
            b
        }
        fn restore(&mut self, b: &[u8]) {
            self.sum = u64::from_le_bytes(b[0..8].try_into().unwrap());
            self.ignored = u64::from_le_bytes(b[8..16].try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(SumV2 {
                sum: self.sum,
                ignored: self.ignored,
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Driver process that feeds P1 values then a poison message.
    struct Feeder;
    impl Program for Feeder {
        fn on_start(&mut self, ctx: &mut Context) {
            for v in [3u8, 4, 5] {
                ctx.send(Pid(1), 1, vec![v]);
            }
            ctx.send(Pid(1), 9, vec![100]); // poison
        }
        fn snapshot(&self) -> Vec<u8> {
            vec![]
        }
        fn restore(&mut self, _b: &[u8]) {}
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Feeder)
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn setup() -> (World, TimeMachine, Healer) {
        let mut w = World::new(WorldConfig::seeded(17));
        w.add_process(Box::new(Feeder));
        w.add_process(Box::new(SumV1 { sum: 0 }));
        let tm = TimeMachine::new(
            2,
            TimeMachineConfig {
                policy: CheckpointPolicy::EveryReceive,
                ..Default::default()
            },
        );
        (w, tm, Healer::new())
    }

    fn v1_to_v2_patch() -> Patch {
        Patch::code_only("ignore-poison", 1, 2, || {
            Box::new(SumV2 { sum: 0, ignored: 0 })
        })
        .with_migration(migrate::append(0u64.to_le_bytes().to_vec()))
        .with_precondition(|old| old.len() == 8)
    }

    #[test]
    fn update_from_checkpoint_salvages_work() {
        let (mut w, mut tm, mut healer) = setup();
        tm.run(&mut w, 10_000);
        // Bug manifested: poison counted.
        assert_eq!(w.program::<SumV1>(Pid(1)).unwrap().sum, 3 + 4 + 5 + 100);
        // Detector decides: roll P1 back one receive (before the poison),
        // then apply the fixed code.
        let target = tm.interval(Pid(1)) - 1;
        let patch = v1_to_v2_patch();
        let report = healer
            .update_from_checkpoint(&mut w, &mut tm, Pid(1), target, &patch, &[], |_| true)
            .unwrap();
        assert_eq!(report.strategy, RecoveryStrategy::UpdateFromCheckpoint);
        assert!(report.procs_updated.contains(&Pid(1)));
        assert!(report.salvaged_events > 0, "pre-poison work kept");
        assert_eq!(healer.registry().version_of(Pid(1)), 2);
        // Resume: the poison message is replayed to the NEW code.
        tm.run(&mut w, 10_000);
        let v2 = w.program::<SumV2>(Pid(1)).unwrap();
        assert_eq!(v2.sum, 3 + 4 + 5, "fixed code ignores the poison");
        assert_eq!(v2.ignored, 1);
    }

    #[test]
    fn restart_from_scratch_discards_everything() {
        let (mut w, mut tm, mut healer) = setup();
        tm.run(&mut w, 10_000);
        let patch = v1_to_v2_patch();
        let report = healer.restart_from_scratch(&mut w, &tm, &patch, &[Pid(1)]);
        assert_eq!(report.strategy, RecoveryStrategy::RestartFromScratch);
        assert_eq!(report.salvaged_events, 0);
        assert!(report.discarded_events > 0);
        let v2 = w.program::<SumV2>(Pid(1)).unwrap();
        assert_eq!(v2.sum, 0, "fresh state");
    }

    #[test]
    fn precondition_failure_refuses_update() {
        let (mut w, mut tm, mut healer) = setup();
        tm.run(&mut w, 10_000);
        let target = tm.interval(Pid(1)) - 1;
        let patch = v1_to_v2_patch().with_precondition(|_| false);
        let err = healer
            .update_from_checkpoint(&mut w, &mut tm, Pid(1), target, &patch, &[], |_| true)
            .unwrap_err();
        assert!(matches!(err, HealError::PreconditionFailed(p) if p == Pid(1)));
    }

    #[test]
    fn failed_invariants_refuse_update() {
        let (mut w, mut tm, mut healer) = setup();
        tm.run(&mut w, 10_000);
        let target = tm.interval(Pid(1)) - 1;
        let patch = v1_to_v2_patch();
        let err = healer
            .update_from_checkpoint(&mut w, &mut tm, Pid(1), target, &patch, &[], |_| false)
            .unwrap_err();
        assert!(matches!(err, HealError::UnsafeUpdatePoint(..)));
    }

    #[test]
    fn bad_rollback_target_propagates() {
        let (mut w, mut tm, mut healer) = setup();
        tm.run(&mut w, 10_000);
        let patch = v1_to_v2_patch();
        let err = healer
            .update_from_checkpoint(&mut w, &mut tm, Pid(1), 10_000, &patch, &[], |_| true)
            .unwrap_err();
        assert!(matches!(err, HealError::Rollback(_)));
    }
}
