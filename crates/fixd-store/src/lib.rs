//! # fixd-store — the content-addressed state store
//!
//! The single backing layer for all durable state in the FixD
//! reproduction. Process state images are chunked into fixed-size pages
//! and *interned* into a [`PageStore`]: an immutable page keyed by a
//! 64-bit content hash, held once no matter how many checkpoints,
//! processes, speculation branches, or coordinated global snapshots
//! reference it. This generalizes the paper's copy-on-write checkpoint
//! sharing (§3.2, Flashback-style shadow processes) from *consecutive
//! checkpoints of one process* to *any two equal pages anywhere*:
//!
//! * consecutive checkpoints of one process share unchanged pages
//!   (classic COW);
//! * checkpoints of **different processes** running the same code over
//!   similar state share pages (replicas, initial states);
//! * **speculation branches** (cloned Time Machines) share everything
//!   until they diverge, page by page;
//! * repeated zero/constant regions **within one image** collapse to a
//!   single page.
//!
//! Reclamation is by reference count: dropping the last [`PageHandle`]
//! to a page removes it from the store and the freed bytes are reported
//! through [`StoreStats`] — so a garbage-collection pass can state how
//! many bytes it *actually* returned, not how many entries it forgot.
//!
//! [`PagedImage`] is the always-paged image the Time Machine stores;
//! [`SnapshotImage`] is the checkpoint-facing wrapper that is either a
//! plain inline byte vector (no store in play) or a paged image interned
//! in a store.

pub mod image;
pub mod store;

pub use image::{PageStats, PagedImage, SnapshotImage, DEFAULT_PAGE_SIZE};
pub use store::{page_hash, PageHandle, PageStore, StoreStats};

/// A stable 64-bit FNV-1a hash — the workspace-wide content fingerprint
/// primitive (deterministic across runs and platforms). Lives here, at
/// the bottom of the crate DAG, so page keys and state fingerprints use
/// one definition; `fixd_runtime::wire::fnv1a` delegates to it.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(0xcbf2_9ce4_8422_2325, bytes)
}

/// Streaming form of [`fnv1a`]: continue a hash over another chunk.
/// `fnv1a(b"ab") == fnv1a_extend(fnv1a(b"a"), b"b")`, which is what lets
/// a paged image fingerprint itself without reassembling the bytes.
pub fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_streaming_matches_oneshot() {
        let data = b"the scroll records only nondeterministic actions";
        for split in [0, 1, 7, data.len()] {
            let (a, b) = data.split_at(split);
            assert_eq!(fnv1a_extend(fnv1a(a), b), fnv1a(data));
        }
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
