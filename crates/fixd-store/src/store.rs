//! The [`PageStore`]: interned, refcounted, content-addressed pages.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Content key of a page: FNV-1a over the bytes, mixed with the length
/// (so a page of `n` zero bytes and one of `m` zero bytes never probe
/// the same chain start).
pub fn page_hash(bytes: &[u8]) -> u64 {
    let h = crate::fnv1a(bytes);
    // Avalanche the length in (splitmix-style) for cheap separation.
    let mut x = h ^ (bytes.len() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^ (x >> 33)
}

/// On the (astronomically unlikely) event of two different pages hashing
/// to one key, the store probes deterministically to the next key.
fn next_probe(key: u64) -> u64 {
    key.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1)
}

/// Counters of one store. `live_*` describe the current contents;
/// the rest are cumulative over the store's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Pages currently interned.
    pub live_pages: usize,
    /// Bytes currently interned (the real resident footprint).
    pub live_bytes: usize,
    /// Interns that found the page already present (bytes NOT copied).
    pub hits: u64,
    /// Interns that inserted a fresh page.
    pub misses: u64,
    /// Bytes deduplicated by hits: what a non-shared layout would have
    /// allocated on top of `live_bytes`.
    pub deduped_bytes: u64,
    /// Bytes physically freed by dropping the last handle to a page —
    /// what GC passes actually returned.
    pub freed_bytes: u64,
}

struct Slot {
    data: Arc<[u8]>,
    refs: u64,
}

#[derive(Default)]
struct Inner {
    slots: HashMap<u64, Slot>,
    stats: StoreStats,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageStoreInner")
            .field("live_pages", &self.stats.live_pages)
            .field("live_bytes", &self.stats.live_bytes)
            .finish()
    }
}

/// A shared content-addressed page store. Cloning the store handle
/// shares the underlying pages — one store can back every process of a
/// world, every speculation branch, and (when passed explicitly) many
/// worlds at once.
#[derive(Clone, Debug, Default)]
pub struct PageStore {
    inner: Arc<Mutex<Inner>>,
}

impl PageStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Do two handles name the same store?
    pub fn ptr_eq(&self, other: &PageStore) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Intern `bytes` as a page. Returns the handle and whether the page
    /// was `fresh` (inserted now) as opposed to already present.
    pub fn intern(&self, bytes: &[u8]) -> (PageHandle, bool) {
        let mut key = page_hash(bytes);
        let mut inner = self.inner.lock();
        loop {
            match inner.slots.get_mut(&key) {
                Some(slot) if slot.data.as_ref() == bytes => {
                    slot.refs += 1;
                    let data = Arc::clone(&slot.data);
                    inner.stats.hits += 1;
                    inner.stats.deduped_bytes += bytes.len() as u64;
                    drop(inner);
                    return (
                        PageHandle {
                            store: Arc::clone(&self.inner),
                            key,
                            data,
                        },
                        false,
                    );
                }
                Some(_) => {
                    // True 64-bit collision: probe deterministically.
                    key = next_probe(key);
                }
                None => {
                    let data: Arc<[u8]> = Arc::from(bytes);
                    inner.slots.insert(
                        key,
                        Slot {
                            data: Arc::clone(&data),
                            refs: 1,
                        },
                    );
                    inner.stats.misses += 1;
                    inner.stats.live_pages += 1;
                    inner.stats.live_bytes += bytes.len();
                    drop(inner);
                    return (
                        PageHandle {
                            store: Arc::clone(&self.inner),
                            key,
                            data,
                        },
                        true,
                    );
                }
            }
        }
    }

    /// Bytes currently interned, each distinct page counted once — the
    /// resident footprint of everything referencing this store.
    pub fn unique_bytes(&self) -> usize {
        self.inner.lock().stats.live_bytes
    }

    /// Pages currently interned.
    pub fn page_count(&self) -> usize {
        self.inner.lock().stats.live_pages
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }

    /// Reference count of the page under `key` (0 when absent) —
    /// accounting introspection for GC tests.
    pub fn refs_of(&self, key: u64) -> u64 {
        self.inner.lock().slots.get(&key).map_or(0, |s| s.refs)
    }
}

/// A reference-counted handle to one interned page. Cloning bumps the
/// store refcount; dropping the last handle removes the page and counts
/// its bytes as freed. Reads never lock: the handle caches the `Arc` to
/// the page bytes.
pub struct PageHandle {
    store: Arc<Mutex<Inner>>,
    key: u64,
    data: Arc<[u8]>,
}

impl PageHandle {
    /// The page's content key in its store.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The page bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Page length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for the (unusual) zero-length page.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for PageHandle {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for PageHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageHandle({:#018x}, {}B)", self.key, self.data.len())
    }
}

impl Clone for PageHandle {
    fn clone(&self) -> Self {
        // A clone is a share, not an intern: bump the refcount only
        // (hits/deduped_bytes track content-level dedup at intern time).
        let mut inner = self.store.lock();
        if let Some(slot) = inner.slots.get_mut(&self.key) {
            slot.refs += 1;
        }
        drop(inner);
        Self {
            store: Arc::clone(&self.store),
            key: self.key,
            data: Arc::clone(&self.data),
        }
    }
}

impl Drop for PageHandle {
    fn drop(&mut self) {
        let mut inner = self.store.lock();
        if let Some(slot) = inner.slots.get_mut(&self.key) {
            slot.refs -= 1;
            if slot.refs == 0 {
                let len = slot.data.len();
                inner.slots.remove(&self.key);
                inner.stats.live_pages -= 1;
                inner.stats.live_bytes -= len;
                inner.stats.freed_bytes += len as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_equal_content() {
        let store = PageStore::new();
        let (a, fresh_a) = store.intern(b"same bytes");
        let (b, fresh_b) = store.intern(b"same bytes");
        assert!(fresh_a);
        assert!(!fresh_b);
        assert_eq!(a.key(), b.key());
        assert_eq!(store.page_count(), 1);
        assert_eq!(store.unique_bytes(), 10);
        assert_eq!(store.refs_of(a.key()), 2);
        let s = store.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.deduped_bytes, 10);
    }

    #[test]
    fn distinct_content_distinct_pages() {
        let store = PageStore::new();
        let (a, _) = store.intern(b"alpha");
        let (b, _) = store.intern(b"bravo");
        assert_ne!(a.key(), b.key());
        assert_eq!(store.page_count(), 2);
        assert_eq!(a.as_slice(), b"alpha");
        assert_eq!(&b[..], b"bravo");
    }

    #[test]
    fn drop_of_last_handle_frees_and_reports() {
        let store = PageStore::new();
        let (a, _) = store.intern(&[7u8; 64]);
        let b = a.clone();
        assert_eq!(store.refs_of(a.key()), 2);
        drop(a);
        assert_eq!(store.unique_bytes(), 64, "one handle still live");
        assert_eq!(store.stats().freed_bytes, 0);
        drop(b);
        assert_eq!(store.unique_bytes(), 0);
        assert_eq!(store.page_count(), 0);
        assert_eq!(store.stats().freed_bytes, 64);
    }

    #[test]
    fn reintern_after_free_is_fresh() {
        let store = PageStore::new();
        let (a, _) = store.intern(b"page");
        drop(a);
        let (_b, fresh) = store.intern(b"page");
        assert!(fresh, "freed page must be re-inserted");
        assert_eq!(store.stats().misses, 2);
    }

    #[test]
    fn clones_of_store_share_contents() {
        let store = PageStore::new();
        let alias = store.clone();
        let (_h, _) = store.intern(b"shared");
        assert_eq!(alias.unique_bytes(), 6);
        assert!(store.ptr_eq(&alias));
        assert!(!store.ptr_eq(&PageStore::new()));
    }

    #[test]
    fn empty_page_interns() {
        let store = PageStore::new();
        let (h, fresh) = store.intern(&[]);
        assert!(fresh);
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(store.unique_bytes(), 0);
        assert_eq!(store.page_count(), 1);
    }
}
