//! Paged byte images over the content-addressed store, and the
//! [`SnapshotImage`] wrapper program snapshots travel in.

use crate::store::{PageHandle, PageStore};

/// Default page size in bytes. Small enough that localized mutations
/// dirty few pages, large enough that page overhead stays negligible.
pub const DEFAULT_PAGE_SIZE: usize = 256;

/// Sharing statistics from building one image.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageStats {
    /// Pages that deduplicated against content already interned — by an
    /// earlier checkpoint, another process, another branch, or an
    /// earlier chunk of the *same* image.
    pub reused: usize,
    /// Pages freshly interned (content seen for the first time).
    pub fresh: usize,
}

impl PageStats {
    /// Fraction of pages that were shared (0 when empty).
    pub fn share_ratio(&self) -> f64 {
        let total = self.reused + self.fresh;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }
}

/// An immutable byte image chunked into content-addressed pages. Every
/// page lives in a [`PageStore`]; equal pages — across checkpoint
/// generations, across processes, across speculation branches — are
/// stored once. Cloning an image bumps per-page refcounts only.
#[derive(Clone, Debug)]
pub struct PagedImage {
    pages: Vec<PageHandle>,
    len: usize,
    page_size: usize,
    stats: PageStats,
}

impl PagedImage {
    /// A zero-length image holding no pages (GC tombstones).
    pub fn empty() -> Self {
        Self {
            pages: Vec::new(),
            len: 0,
            page_size: DEFAULT_PAGE_SIZE,
            stats: PageStats::default(),
        }
    }

    /// Page `bytes` into `store` with the default page size.
    pub fn from_bytes(store: &PageStore, bytes: &[u8]) -> Self {
        Self::from_bytes_with(store, bytes, DEFAULT_PAGE_SIZE)
    }

    /// Page `bytes` into `store` with an explicit page size.
    pub fn from_bytes_with(store: &PageStore, bytes: &[u8], page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        let mut stats = PageStats::default();
        let pages = bytes
            .chunks(page_size)
            .map(|c| {
                let (h, fresh) = store.intern(c);
                if fresh {
                    stats.fresh += 1;
                } else {
                    stats.reused += 1;
                }
                h
            })
            .collect();
        Self {
            pages,
            len: bytes.len(),
            page_size,
            stats,
        }
    }

    /// Reassemble the full byte image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for p in &self.pages {
            out.extend_from_slice(p);
        }
        debug_assert_eq!(out.len(), self.len);
        out
    }

    /// Image length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length image.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Configured page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Intern statistics from when this image was built.
    pub fn build_stats(&self) -> PageStats {
        self.stats
    }

    /// Content keys of the pages (identity-based memory accounting).
    pub fn page_keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.pages.iter().map(PageHandle::key)
    }

    /// Streaming FNV-1a over the logical bytes (no reassembly).
    pub fn content_fnv1a(&self) -> u64 {
        self.pages
            .iter()
            .fold(crate::fnv1a(&[]), |h, p| crate::fnv1a_extend(h, p))
    }

    /// Hash identity of the image: FNV-1a over the length and the page
    /// *keys* — O(pages), never touching the page bytes. Two images built
    /// over the same [`PageStore`] from equal bytes (at equal page size)
    /// always intern to the same keys, so their identities are equal;
    /// images with different bytes differ with 64-bit-hash probability.
    /// This is what makes an interned snapshot usable as a visited-set
    /// key: revisiting a state costs page interning (refcount bumps on
    /// hits), not a rehash of the full state bytes.
    pub fn identity(&self) -> u64 {
        let mut h = crate::fnv1a(&(self.len as u64).to_le_bytes());
        for k in self.page_keys() {
            h = crate::fnv1a_extend(h, &k.to_le_bytes());
        }
        h
    }

    /// Bytes held by pages, counting each distinct page once across all
    /// the given images — the real memory footprint of a checkpoint
    /// history under content-addressed sharing.
    pub fn unique_bytes<'a>(images: impl Iterator<Item = &'a PagedImage>) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for img in images {
            for p in &img.pages {
                if seen.insert(p.key()) {
                    total += p.len();
                }
            }
        }
        total
    }
}

impl PartialEq for PagedImage {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self.pages.len() == other.pages.len()
            && self
                .pages
                .iter()
                .zip(&other.pages)
                .all(|(a, b)| a.key() == b.key() && a.as_slice() == b.as_slice())
    }
}

/// A complete, deterministic byte image of one process's state — either
/// a plain inline vector (no page store in play: ad-hoc snapshots,
/// tests, baselines) or a [`PagedImage`] interned in a shared
/// [`PageStore`] (the Time Machine's checkpoint path). The two forms
/// are logically identical: equality, length, and fingerprints are
/// content-level.
#[derive(Clone, Debug)]
pub enum SnapshotImage {
    /// Plain owned bytes (the pre-store representation).
    Inline(Vec<u8>),
    /// Pages interned in a content-addressed store.
    Paged(PagedImage),
}

impl SnapshotImage {
    /// Wrap owned bytes without paging them.
    pub fn inline(bytes: Vec<u8>) -> Self {
        SnapshotImage::Inline(bytes)
    }

    /// Page `bytes` straight into `store`.
    pub fn paged(store: &PageStore, bytes: &[u8], page_size: usize) -> Self {
        SnapshotImage::Paged(PagedImage::from_bytes_with(store, bytes, page_size))
    }

    /// Logical length in bytes.
    pub fn len(&self) -> usize {
        match self {
            SnapshotImage::Inline(v) => v.len(),
            SnapshotImage::Paged(p) => p.len(),
        }
    }

    /// True for a zero-length image.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the logical bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            SnapshotImage::Inline(v) => v.clone(),
            SnapshotImage::Paged(p) => p.to_bytes(),
        }
    }

    /// The logical bytes without copying when possible: a borrow for the
    /// inline form, a materialization only for the paged form. Restore
    /// paths should prefer this over [`SnapshotImage::to_bytes`].
    pub fn as_bytes(&self) -> std::borrow::Cow<'_, [u8]> {
        match self {
            SnapshotImage::Inline(v) => std::borrow::Cow::Borrowed(v),
            SnapshotImage::Paged(p) => std::borrow::Cow::Owned(p.to_bytes()),
        }
    }

    /// Consume the snapshot, yielding the logical bytes — free for the
    /// inline form (hands back the owned `Vec`), one materialization for
    /// the paged form.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            SnapshotImage::Inline(v) => v,
            SnapshotImage::Paged(p) => p.to_bytes(),
        }
    }

    /// The paged form, when this snapshot went through a store.
    pub fn as_paged(&self) -> Option<&PagedImage> {
        match self {
            SnapshotImage::Paged(p) => Some(p),
            SnapshotImage::Inline(_) => None,
        }
    }

    /// FNV-1a over the logical bytes — identical for both forms, and
    /// identical to hashing the pre-store `Vec<u8>` representation.
    pub fn content_fnv1a(&self) -> u64 {
        match self {
            SnapshotImage::Inline(v) => crate::fnv1a(v),
            SnapshotImage::Paged(p) => p.content_fnv1a(),
        }
    }
}

impl Default for SnapshotImage {
    fn default() -> Self {
        SnapshotImage::Inline(Vec::new())
    }
}

impl From<Vec<u8>> for SnapshotImage {
    fn from(v: Vec<u8>) -> Self {
        SnapshotImage::Inline(v)
    }
}

impl PartialEq for SnapshotImage {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (SnapshotImage::Inline(a), SnapshotImage::Inline(b)) => a == b,
            (SnapshotImage::Paged(a), SnapshotImage::Paged(b)) if a == b => true,
            _ => self.len() == other.len() && self.to_bytes() == other.to_bytes(),
        }
    }
}

impl PartialEq<[u8]> for SnapshotImage {
    fn eq(&self, other: &[u8]) -> bool {
        match self {
            SnapshotImage::Inline(v) => v.as_slice() == other,
            SnapshotImage::Paged(_) => self.len() == other.len() && self.to_bytes() == other,
        }
    }
}

impl PartialEq<Vec<u8>> for SnapshotImage {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<SnapshotImage> for Vec<u8> {
    fn eq(&self, other: &SnapshotImage) -> bool {
        other == self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_identity() {
        let store = PageStore::new();
        for len in [0usize, 1, 255, 256, 257, 1000, 4096] {
            let bytes: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let img = PagedImage::from_bytes(&store, &bytes);
            assert_eq!(img.to_bytes(), bytes);
            assert_eq!(img.len(), len);
        }
    }

    #[test]
    fn hash_identity_tracks_content() {
        let store = PageStore::new();
        let bytes: Vec<u8> = (0..1024u32).flat_map(|i| i.to_le_bytes()).collect();
        let a = PagedImage::from_bytes(&store, &bytes);
        let b = PagedImage::from_bytes(&store, &bytes);
        assert_eq!(a.identity(), b.identity(), "equal bytes, equal identity");
        let mut mutated = bytes.clone();
        mutated[300] ^= 1;
        let c = PagedImage::from_bytes(&store, &mutated);
        assert_ne!(a.identity(), c.identity());
        // Length participates: a prefix truncated at a page boundary
        // shares every page yet gets its own identity.
        let d = PagedImage::from_bytes(&store, &bytes[..512]);
        assert_ne!(a.identity(), d.identity());
        assert_ne!(PagedImage::empty().identity(), a.identity());
    }

    #[test]
    fn identical_image_shares_everything() {
        let store = PageStore::new();
        let bytes: Vec<u8> = (0..1024u32).flat_map(|i| i.to_le_bytes()).collect();
        let a = PagedImage::from_bytes(&store, &bytes);
        let b = PagedImage::from_bytes(&store, &bytes);
        assert_eq!(b.build_stats().fresh, 0);
        assert_eq!(b.build_stats().reused, 16);
        assert_eq!(b.build_stats().share_ratio(), 1.0);
        assert_eq!(
            PagedImage::unique_bytes([&a, &b].into_iter()),
            bytes.len(),
            "two full images, one set of pages"
        );
        assert_eq!(a, b);
    }

    #[test]
    fn localized_mutation_dirties_one_page() {
        let store = PageStore::new();
        let bytes: Vec<u8> = (0..1024u32).flat_map(|i| i.to_le_bytes()).collect();
        let a = PagedImage::from_bytes(&store, &bytes);
        let mut mutated = bytes.clone();
        mutated[300] ^= 1; // inside page 1
        let b = PagedImage::from_bytes(&store, &mutated);
        assert_eq!(b.build_stats().fresh, 1);
        assert_eq!(b.build_stats().reused, 15);
        assert_eq!(b.to_bytes(), mutated);
        assert_eq!(
            PagedImage::unique_bytes([&a, &b].into_iter()),
            bytes.len() + 256
        );
    }

    #[test]
    fn constant_regions_collapse_within_one_image() {
        let store = PageStore::new();
        let img = PagedImage::from_bytes(&store, &vec![0u8; 4096]);
        assert_eq!(img.page_count(), 16);
        assert_eq!(img.build_stats().fresh, 1, "one zero page serves all 16");
        assert_eq!(img.build_stats().reused, 15);
        assert_eq!(store.unique_bytes(), 256);
    }

    #[test]
    fn cross_process_pages_dedup() {
        // Two "processes" (independent images) with identical state: the
        // store holds one copy.
        let store = PageStore::new();
        let state = vec![0xAB; 2048];
        let p0 = PagedImage::from_bytes(&store, &state);
        let p1 = PagedImage::from_bytes(&store, &state);
        assert_eq!(store.unique_bytes(), 256, "constant page stored once");
        assert_eq!(PagedImage::unique_bytes([&p0, &p1].into_iter()), 256);
    }

    #[test]
    fn dropping_images_frees_pages() {
        let store = PageStore::new();
        let bytes: Vec<u8> = (0..512u32).flat_map(|i| i.to_le_bytes()).collect();
        let a = PagedImage::from_bytes(&store, &bytes);
        let b = a.clone();
        assert_eq!(store.unique_bytes(), 2048);
        drop(a);
        assert_eq!(store.unique_bytes(), 2048, "clone keeps pages live");
        drop(b);
        assert_eq!(store.unique_bytes(), 0);
        assert_eq!(store.stats().freed_bytes, 2048);
    }

    #[test]
    fn branch_clone_then_divergence_shares_prefix() {
        // A speculation branch: clone the image, then one branch moves on
        // to a mutated state. Shared pages are held once.
        let store = PageStore::new();
        let base: Vec<u8> = (0..2048u32).flat_map(|i| i.to_le_bytes()).collect();
        let trunk = PagedImage::from_bytes(&store, &base);
        let branch = trunk.clone();
        let mut mutated = base.clone();
        mutated[0] ^= 0xFF;
        let diverged = PagedImage::from_bytes(&store, &mutated);
        let all = PagedImage::unique_bytes([&trunk, &branch, &diverged].into_iter());
        assert_eq!(all, base.len() + 256);
        drop(trunk);
        drop(branch);
        // Base page 0 was only held by trunk/branch and is freed; the
        // diverged image keeps the 31 shared pages plus its own page 0.
        assert_eq!(
            store.unique_bytes(),
            base.len(),
            "diverged image still references the shared tail"
        );
        drop(diverged);
        assert_eq!(store.unique_bytes(), 0);
    }

    #[test]
    fn custom_page_size() {
        let store = PageStore::new();
        let img = PagedImage::from_bytes_with(&store, &[1, 2, 3, 4, 5], 2);
        assert_eq!(img.page_count(), 3);
        assert_eq!(img.page_size(), 2);
        assert_eq!(img.to_bytes(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_image_is_storeless() {
        let img = PagedImage::empty();
        assert!(img.is_empty());
        assert_eq!(img.page_count(), 0);
        assert_eq!(img.to_bytes(), Vec::<u8>::new());
    }

    #[test]
    fn snapshot_forms_are_content_equal() {
        let store = PageStore::new();
        let bytes: Vec<u8> = (0..777).map(|i| (i % 251) as u8).collect();
        let inline = SnapshotImage::inline(bytes.clone());
        let paged = SnapshotImage::paged(&store, &bytes, 256);
        assert_eq!(inline, paged);
        assert_eq!(paged, bytes);
        assert_eq!(bytes, paged);
        assert_eq!(inline.content_fnv1a(), paged.content_fnv1a());
        assert_eq!(paged.content_fnv1a(), crate::fnv1a(&bytes));
        assert_eq!(paged.to_bytes(), bytes);
        assert_eq!(paged.len(), bytes.len());
        assert!(paged.as_paged().is_some());
        assert!(inline.as_paged().is_none());
        assert!(SnapshotImage::default().is_empty());
        // as_bytes borrows the inline form (no copy) and materializes
        // the paged form; into_bytes hands the inline Vec back for free.
        assert!(matches!(
            inline.as_bytes(),
            std::borrow::Cow::Borrowed(b) if b == bytes.as_slice()
        ));
        assert_eq!(&*paged.as_bytes(), bytes.as_slice());
        let addr = match &inline {
            SnapshotImage::Inline(v) => v.as_ptr(),
            SnapshotImage::Paged(_) => unreachable!(),
        };
        let owned = inline.into_bytes();
        assert_eq!(owned.as_ptr(), addr, "into_bytes must not copy Inline");
        assert_eq!(paged.into_bytes(), bytes);
    }
}
