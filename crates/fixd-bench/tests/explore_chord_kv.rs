//! The Chord keyed-storage workload as an exploration target: model
//! check every interleaving of a small ring under a reliable network
//! and assert the no-bad-read safety property — with the work-stealing
//! engine agreeing with the serial explorer at every worker count.

use std::sync::Arc;

use fixd_examples::chord::{ChordNode, ChordRing, KV_READ_MARK};
use fixd_investigator::parallel::explore_parallel;
use fixd_investigator::{ExploreConfig, Explorer, Invariant, NetModel, WorldModel, WorldState};
use fixd_runtime::{Pid, Program};

/// A dense `n`-member keyed-storage ring as a model-checker target
/// (no stabilize rounds, no random lookups: the put/get/replicate
/// traffic is the whole workload).
fn kv_model(n: usize, puts: u32) -> WorldModel {
    WorldModel::new(0xC0DE, NetModel::reliable(), move || {
        let members: Vec<Pid> = (0..n as u32).map(Pid).collect();
        let ring = Arc::new(ChordRing::new(&members));
        (0..n)
            .map(|_| {
                Box::new(ChordNode::new(Arc::clone(&ring), 0, 0).with_kv_workload(puts))
                    as Box<dyn Program>
            })
            .collect()
    })
}

/// Safety: every keyed-read output (`[KV_READ_MARK, ok]`) must carry
/// ok = 1 — no interleaving may return a missing or wrong value.
fn no_bad_reads() -> Invariant<WorldState> {
    Invariant::new("no-bad-read", |s: &WorldState| {
        s.outputs()
            .iter()
            .all(|(_, p)| p.first() != Some(&KV_READ_MARK) || p.get(1) == Some(&1))
    })
}

#[test]
fn chord_kv_has_no_bad_reads_under_all_interleavings() {
    let model = kv_model(3, 1);
    let cfg = ExploreConfig {
        max_states: 500_000,
        ..ExploreConfig::default()
    };
    let seq = Explorer::new(&model, cfg.clone())
        .invariant(no_bad_reads())
        .run();
    assert!(!seq.truncated, "space must be explored exhaustively");
    assert!(seq.states > 10, "the model must actually branch");
    assert!(
        seq.violations.is_empty(),
        "bad read found: {:?}",
        seq.violations.first().map(|t| &t.labels)
    );

    // The work-stealing engine reaches the identical verdict and space.
    for workers in [2usize, 4] {
        let par = explore_parallel(&model, &[no_bad_reads()], &cfg, workers);
        assert_eq!(par.states, seq.states, "states at {workers} workers");
        assert_eq!(
            par.transitions, seq.transitions,
            "transitions at {workers} workers"
        );
        assert!(par.violations.is_empty());
        assert!(!par.truncated);
    }
}
