//! **Experiment F6** (paper Fig. 6, §4.2): safe recovery lines under
//! communication-induced checkpointing vs the domino effect under
//! independent periodic checkpointing.
//!
//! Same gossip workload, same failure (the busiest process rolls back
//! one checkpoint); the two policies differ in where checkpoints lie.
//! Expected shape: CIC undoes a bounded, small number of events per
//! rollback regardless of run length; sparse periodic checkpointing
//! cascades — the longer the run between checkpoints, the more work the
//! domino effect destroys. The criterion series also time the rollback
//! operation itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fixd_bench::gossip_world;
use fixd_runtime::Pid;
use fixd_timemachine::{CheckpointPolicy, RollbackReport, TimeMachine, TimeMachineConfig};

fn run_and_rollback(n: usize, policy: CheckpointPolicy, steps: u64) -> RollbackReport {
    let mut w = gossip_world(n, 13, 1024, false);
    let mut tm = TimeMachine::new(
        n,
        TimeMachineConfig {
            policy,
            page_size: 256,
        },
    );
    tm.run(&mut w, steps);
    // Fail the busiest process and roll back one checkpoint.
    let fail = (0..n)
        .map(|i| Pid(i as u32))
        .max_by_key(|&p| tm.interval(p))
        .unwrap();
    let target = tm.interval(fail).saturating_sub(1);
    tm.rollback(&mut w, fail, target).expect("rollback")
}

fn bench_recovery_lines(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_rollback_latency");
    group.sample_size(15);
    for (name, policy) in [
        ("cic_every_receive", CheckpointPolicy::EveryReceive),
        ("periodic_sparse", CheckpointPolicy::Periodic { every: 30 }),
    ] {
        for &n in &[4usize, 8] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                b.iter(|| run_and_rollback(n, policy, 400));
            });
        }
    }
    group.finish();

    println!("\n--- F6 rollback cascade: CIC vs periodic (gossip, fail busiest, -1 ckpt) ---");
    println!(
        "{:<10} {:>6} {:>16} {:>14} {:>12} {:>12}",
        "policy", "n", "events undone", "procs rolled", "purged", "replayed"
    );
    for &n in &[4usize, 6, 8] {
        for (name, policy) in [
            ("CIC", CheckpointPolicy::EveryReceive),
            ("periodic", CheckpointPolicy::Periodic { every: 30 }),
        ] {
            let r = run_and_rollback(n, policy, 400);
            println!(
                "{:<10} {:>6} {:>16} {:>14} {:>12} {:>12}",
                name, n, r.events_undone, r.procs_rolled, r.msgs_purged, r.msgs_replayed
            );
        }
    }
}

criterion_group!(benches, bench_recovery_lines);
criterion_main!(benches);
