//! **Experiment F2** (paper Fig. 2, §4.2): checkpoint cost — speculation
//! copy-on-write vs eager full-copy vs none.
//!
//! §4.2's claim under test: *"checkpoints generated using speculations
//! introduce less overhead than certain types of traditional
//! checkpointing."* Same checkpoint schedule (before every receive),
//! three mechanisms, across state sizes. The bytes-held table at the end
//! shows the memory side of the claim; restore latency is also measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fixd_baselines::FlashbackCheckpointer;
use fixd_bench::gossip_world;
use fixd_runtime::{EventKind, Pid};
use fixd_timemachine::{CheckpointPolicy, TimeMachine, TimeMachineConfig};

fn run_with_cow(n: usize, state: usize) -> usize {
    let mut w = gossip_world(n, 3, state, false);
    let mut tm = TimeMachine::new(
        n,
        TimeMachineConfig {
            policy: CheckpointPolicy::EveryReceive,
            page_size: 256,
        },
    );
    tm.run(&mut w, 1_000_000);
    tm.total_checkpoint_bytes()
}

fn run_with_eager(n: usize, state: usize) -> usize {
    let mut w = gossip_world(n, 3, state, false);
    let mut fb = FlashbackCheckpointer::new(n);
    while let Some(ev) = w.peek() {
        if let EventKind::Deliver { msg } = &ev.kind {
            fb.take(&w, msg.dst);
        }
        if w.step().is_none() {
            break;
        }
    }
    fb.bytes_held()
}

fn bench_checkpointing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_checkpoint_overhead");
    group.sample_size(15);
    for &state in &[4 * 1024usize, 64 * 1024] {
        group.bench_with_input(BenchmarkId::new("none", state), &state, |b, &s| {
            b.iter(|| {
                let mut w = gossip_world(4, 3, s, false);
                w.run_to_quiescence(1_000_000)
            });
        });
        group.bench_with_input(
            BenchmarkId::new("cow_speculation", state),
            &state,
            |b, &s| {
                b.iter(|| run_with_cow(4, s));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("eager_full_copy", state),
            &state,
            |b, &s| {
                b.iter(|| run_with_eager(4, s));
            },
        );
    }
    group.finish();

    // Restore (rollback) latency.
    let mut group = c.benchmark_group("fig2_restore_latency");
    group.sample_size(15);
    for &state in &[4 * 1024usize, 64 * 1024] {
        group.bench_with_input(BenchmarkId::new("cow_restore", state), &state, |b, &s| {
            b.iter_batched(
                || {
                    let mut w = gossip_world(4, 3, s, false);
                    let mut tm = TimeMachine::new(
                        4,
                        TimeMachineConfig {
                            policy: CheckpointPolicy::EveryReceive,
                            page_size: 256,
                        },
                    );
                    tm.run(&mut w, 1_000_000);
                    let target = tm.interval(Pid(1)).saturating_sub(2);
                    (w, tm, target)
                },
                |(mut w, mut tm, target)| tm.rollback(&mut w, Pid(1), target).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();

    println!("\n--- F2 checkpoint bytes held (gossip n=4, checkpoint-before-every-receive) ---");
    for &state in &[4 * 1024usize, 64 * 1024] {
        let cow = run_with_cow(4, state);
        let eager = run_with_eager(4, state);
        println!(
            "state {:>6} B : COW {:>9} B   eager {:>10} B   ratio {:>5.1}x",
            state,
            cow,
            eager,
            eager as f64 / cow as f64
        );
    }
}

criterion_group!(benches, bench_checkpointing);
criterion_main!(benches);
