//! **Experiment F3** (paper Fig. 3, §2.1, §4.3): Investigator state-space
//! exploration — growth with process count and search-order comparison.
//!
//! §2.1's claim under test: *"it is often prohibitively expensive,
//! memory-wise, to model a moderately complex system of more than 5-10
//! processes"*. The state-count table printed at the end shows the
//! exponential wall; the criterion series time bounded exploration and
//! time-to-first-violation per search order. Parallel exploration is
//! included as the mitigation knob.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fixd_examples::token_ring::{mutex_monitor, RingNode};
use fixd_investigator::{ExploreConfig, ModelD, NetModel, SearchOrder};
use fixd_runtime::Program;

fn factory(n: usize) -> impl Fn() -> Vec<Box<dyn Program>> + Send + Sync {
    move || {
        (0..n)
            .map(|i| -> Box<dyn Program> {
                if i == 2 {
                    Box::new(RingNode::buggy(5))
                } else {
                    Box::new(RingNode::correct())
                }
            })
            .collect()
    }
}

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_state_space_growth");
    group.sample_size(10);
    for &n in &[3usize, 4, 5] {
        group.bench_with_input(BenchmarkId::new("exhaust_bounded", n), &n, |b, &n| {
            b.iter(|| {
                ModelD::from_initial(1, NetModel::reliable(), fixd_bench::shouter_factory(n))
                    .config(ExploreConfig {
                        max_states: 30_000,
                        stop_at_first_violation: false,
                        max_violations: 10_000,
                        ..ExploreConfig::default()
                    })
                    .run()
                    .states
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig3_search_orders_first_violation");
    group.sample_size(10);
    for (name, order) in [
        ("bfs", SearchOrder::Bfs),
        ("dfs", SearchOrder::Dfs),
        ("random", SearchOrder::Random { seed: 3 }),
    ] {
        group.bench_function(name, |b| {
            let order = order.clone();
            b.iter(|| {
                ModelD::from_initial(1, NetModel::reliable(), factory(4))
                    .invariant(mutex_monitor().invariant())
                    .config(ExploreConfig {
                        order: order.clone(),
                        stop_at_first_violation: true,
                        max_states: 2_000_000,
                        ..ExploreConfig::default()
                    })
                    .run()
            });
        });
    }
    group.finish();

    // Ablation: sleep-set partial-order reduction on/off (DESIGN.md §5.6).
    let mut group = c.benchmark_group("fig3_reduction_ablation");
    group.sample_size(10);
    for (name, use_reduction) in [("full", false), ("sleep_sets", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                ModelD::from_initial(1, NetModel::reliable(), fixd_bench::shouter_factory(4))
                    .config(ExploreConfig {
                        order: SearchOrder::Dfs,
                        use_reduction,
                        max_states: 100_000,
                        ..ExploreConfig::default()
                    })
                    .run()
                    .transitions
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig3_parallel_workers");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("workers", threads), &threads, |b, &t| {
            b.iter(|| {
                ModelD::from_initial(1, NetModel::reliable(), factory(4))
                    .config(ExploreConfig {
                        max_states: 30_000,
                        ..ExploreConfig::default()
                    })
                    .run_parallel(t)
                    .states
            });
        });
    }
    group.finish();

    println!("\n--- F3 state-space growth (all-to-all broadcast, bounded at 200k states) ---");
    for n in 3..=6 {
        let report = ModelD::from_initial(1, NetModel::reliable(), fixd_bench::shouter_factory(n))
            .config(ExploreConfig {
                max_states: 200_000,
                stop_at_first_violation: false,
                max_violations: 10_000,
                ..ExploreConfig::default()
            })
            .run();
        println!(
            "n={n}: {:>8} states {:>9} transitions{}",
            report.states,
            report.transitions,
            if report.truncated {
                "  << truncated: the §2.1 wall"
            } else {
                ""
            }
        );
    }
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
