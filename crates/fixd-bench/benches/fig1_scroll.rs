//! **Experiment F1** (paper Fig. 1, §2.2, §3.1): the Scroll's recording
//! cost and log size.
//!
//! Series:
//! * `bare`   — run the world with no logging at all (the floor);
//! * `scroll` — FixD's Scroll: record only nondeterministic actions;
//! * `printf` — format-everything printf debugging (the §1 strawman);
//! * `liblog` — full liblog-style recording (drops included).
//!
//! Expected shape: scroll overhead small and linear in nondeterministic
//! events; printf pays string formatting on every event and effect;
//! the byte-size ordering printed at the end is
//! `scroll < liblog < printf`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fixd_baselines::{Liblog, PrintfLogger};
use fixd_bench::gossip_world;
use fixd_scroll::{record::record_run, RecordConfig, ScrollStats};

fn bench_recording(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_scroll_overhead");
    group.sample_size(20);
    for &n in &[4usize, 8] {
        group.bench_with_input(BenchmarkId::new("bare", n), &n, |b, &n| {
            b.iter(|| {
                let mut w = gossip_world(n, 7, 256, false);
                w.run_to_quiescence(1_000_000)
            });
        });
        group.bench_with_input(BenchmarkId::new("scroll", n), &n, |b, &n| {
            b.iter(|| {
                let mut w = gossip_world(n, 7, 256, false);
                record_run(&mut w, RecordConfig::default(), 1_000_000)
            });
        });
        group.bench_with_input(BenchmarkId::new("printf", n), &n, |b, &n| {
            b.iter(|| {
                let mut w = gossip_world(n, 7, 256, false);
                let mut log = PrintfLogger::new();
                while let Some(step) = w.step() {
                    log.observe(&w, &step);
                }
                log.bytes()
            });
        });
        group.bench_with_input(BenchmarkId::new("liblog", n), &n, |b, &n| {
            b.iter(|| {
                let mut w = gossip_world(n, 7, 256, false);
                Liblog::record(&mut w, 7, 1_000_000)
            });
        });
    }
    group.finish();

    // Size table (printed once; the shape claim of F1).
    println!("\n--- F1 log sizes (gossip, n=8) ---");
    let mut w = gossip_world(8, 7, 256, false);
    let (store, report) = record_run(&mut w, RecordConfig::default(), 1_000_000);
    let stats = ScrollStats::compute(&store);
    let mut w2 = gossip_world(8, 7, 256, false);
    let mut printf = PrintfLogger::new();
    while let Some(step) = w2.step() {
        printf.observe(&w2, &step);
    }
    let mut w3 = gossip_world(8, 7, 256, false);
    let (ll, _) = Liblog::record(&mut w3, 7, 1_000_000);
    println!("events executed : {}", report.steps);
    println!(
        "scroll          : {} entries, {} B ({})",
        stats.total_entries,
        stats.encoded_bytes,
        stats.summary()
    );
    println!("liblog          : {} B", ll.log_bytes());
    println!(
        "printf          : {} lines, {} B",
        printf.len(),
        printf.bytes()
    );
}

criterion_group!(benches, bench_recording);
criterion_main!(benches);
