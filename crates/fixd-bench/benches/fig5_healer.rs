//! **Experiment F5** (paper Fig. 5, §3.4): recovery strategies —
//! restart-from-scratch vs dynamic-update-from-checkpoint.
//!
//! §3.4's claim under test: resuming from a checkpoint salvages
//! *"computation that was correctly performed while executing the faulty
//! program"*. The pipeline crunches `n` costly items; the bug fires near
//! the end. Restart recomputes everything; update-from-checkpoint redoes
//! only the poisoned suffix. Expected shape: restart recovery time grows
//! linearly with completed work, update time stays roughly flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fixd_core::{Fixd, FixdConfig};
use fixd_examples::pipeline;
use fixd_healer::Patch;
use fixd_runtime::Pid;

const COST: u64 = 5_000;

fn detect(n_items: u64) -> (fixd_runtime::World, Fixd, fixd_core::DetectedFault) {
    let seed = 2;
    let poison = n_items - 2; // bug fires near the end: most work done
    let mut world = pipeline::pipeline_world(seed, n_items, COST, Some(poison));
    let mut fixd = Fixd::new(2, FixdConfig::seeded(seed)).monitor(pipeline::results_monitor());
    let out = fixd.supervise(&mut world, 1_000_000);
    (world, fixd, out.fault.expect("poison detected"))
}

fn recover_by_update(mut world: fixd_runtime::World, mut fixd: Fixd) -> usize {
    let patch = pipeline::cruncher_patch(COST);
    fixd.heal_update(&mut world, Pid(1), &patch).expect("heal");
    let end = fixd.supervise(&mut world, 1_000_000);
    assert!(end.fault.is_none());
    world
        .program::<pipeline::Cruncher>(Pid(1))
        .unwrap()
        .results
        .len()
}

fn recover_by_restart(mut world: fixd_runtime::World, mut fixd: Fixd, n_items: u64) -> usize {
    let patch = pipeline::cruncher_patch(COST);
    fixd.heal_restart(&mut world, &patch, &[Pid(1)]);
    let source = Patch::code_only("src", 1, 2, move || Box::new(pipeline::Source { n_items }));
    fixd.heal_restart(&mut world, &source, &[Pid(0)]);
    let end = fixd.supervise(&mut world, 1_000_000);
    assert!(end.fault.is_none());
    world
        .program::<pipeline::Cruncher>(Pid(1))
        .unwrap()
        .results
        .len()
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_recovery_strategies");
    group.sample_size(10);
    for &n_items in &[16u64, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("update_from_checkpoint", n_items),
            &n_items,
            |b, &n| {
                b.iter_batched(
                    || detect(n),
                    |(world, fixd, _fault)| recover_by_update(world, fixd),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("restart_from_scratch", n_items),
            &n_items,
            |b, &n| {
                b.iter_batched(
                    || detect(n),
                    |(world, fixd, _fault)| recover_by_restart(world, fixd, n),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();

    println!("\n--- F5 salvage accounting (poison at n-2) ---");
    for &n_items in &[16u64, 64, 256] {
        let (mut world, mut fixd, _fault) = detect(n_items);
        let patch = pipeline::cruncher_patch(COST);
        let heal = fixd.heal_update(&mut world, Pid(1), &patch).unwrap();
        println!(
            "n={n_items:>4}: update salvages {:>4} events, discards {:>2}  (restart salvages 0, discards all)",
            heal.salvaged_events, heal.discarded_events
        );
    }
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
