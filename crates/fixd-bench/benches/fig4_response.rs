//! **Experiment F4** (paper Fig. 4): the fault-response pipeline —
//! detect → rollback → assemble → investigate — vs CMC-style
//! whole-history checking of the same bug.
//!
//! Measures (a) the latency of each FixD response stage, and (b) the
//! states explored from the restored checkpoint vs from the initial
//! state. Expected shape: FixD's investigation is bounded by the
//! neighborhood of the fault and explores orders of magnitude fewer
//! states as runs grow longer; CMC's cost is fixed (whole space) and
//! grows with the protocol, not with where the fault happened.

use criterion::{criterion_group, criterion_main, Criterion};

use fixd_baselines::Cmc;
use fixd_core::{Fixd, FixdConfig};
use fixd_examples::kvstore;
use fixd_investigator::{ExploreConfig, NetModel};
use fixd_runtime::{Pid, World};

/// Find a seed whose jitter manifests the kvstore gap, returning the
/// world paused at the fault.
fn manifest(ops: usize) -> (u64, World, Fixd, fixd_core::DetectedFault) {
    let script = kvstore::script(ops, 5);
    for seed in 0..200u64 {
        let mut w = kvstore::kv_world(seed, script.clone(), (1, 80));
        let mut fixd = Fixd::new(3, FixdConfig::seeded(seed)).monitor(kvstore::gap_monitor());
        let out = fixd.supervise(&mut w, 100_000);
        if let Some(fault) = out.fault {
            return (seed, w, fixd, fault);
        }
    }
    panic!("no seed manifests the reordering bug");
}

fn bench_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_fixd_response");
    group.sample_size(10);

    group.bench_function("detect_to_fault", |b| {
        b.iter(|| manifest(12).0);
    });

    group.bench_function("respond_rollback_assemble", |b| {
        b.iter_batched(
            || manifest(12),
            |(_, mut w, mut fixd, fault)| fixd.respond(&mut w, &fault).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });

    group.bench_function("investigate_from_checkpoint", |b| {
        b.iter_batched(
            || {
                let (_, mut w, mut fixd, fault) = manifest(12);
                let out = fixd.respond(&mut w, &fault).unwrap();
                (fixd, out.state)
            },
            |(fixd, state)| fixd.investigate(state),
            criterion::BatchSize::SmallInput,
        );
    });

    group.bench_function("cmc_from_initial", |b| {
        let script = kvstore::script(6, 5); // smaller: whole space explodes
        b.iter(|| {
            let s = script.clone();
            Cmc::new(1, NetModel::reliable(), move || {
                vec![
                    Box::new(kvstore::Client { script: s.clone() })
                        as Box<dyn fixd_runtime::Program>,
                    Box::new(kvstore::Primary::default()),
                    Box::new(kvstore::BackupV1::default()),
                ]
            })
            .invariant(kvstore::gap_monitor().invariant())
            .config(ExploreConfig {
                max_states: 50_000,
                ..ExploreConfig::default()
            })
            .run()
        });
    });
    group.finish();

    println!("\n--- F4 states explored: from-checkpoint vs from-initial ---");
    let (seed, mut w, mut fixd, fault) = manifest(12);
    let report = fixd.diagnose(&mut w, fault).unwrap();
    println!(
        "FixD (seed {seed}): {} states, reproduced={}, line breadth={}",
        report.states_explored,
        report.reproduced(),
        report
            .recovery_line
            .iter()
            .filter(|&&l| l != u64::MAX)
            .count()
    );
    let _ = w.program::<kvstore::BackupV1>(Pid(2));
    for ops in [4usize, 6, 8] {
        let script = kvstore::script(ops, 5);
        let cmc = Cmc::new(1, NetModel::reliable(), move || {
            vec![
                Box::new(kvstore::Client {
                    script: script.clone(),
                }) as Box<dyn fixd_runtime::Program>,
                Box::new(kvstore::Primary::default()),
                Box::new(kvstore::BackupV1::default()),
            ]
        })
        .config(ExploreConfig {
            max_states: 500_000,
            ..ExploreConfig::default()
        })
        .run();
        println!(
            "CMC  (ops={ops}) : {} states{}",
            cmc.states,
            if cmc.truncated { " (truncated)" } else { "" }
        );
    }
}

criterion_group!(benches, bench_response);
criterion_main!(benches);
