//! Shared workload builders for the FixD benchmark harness.
//!
//! One module per experiment family; every `benches/figN_*.rs` target and
//! the `experiments` binary build their worlds through these helpers so
//! the criterion benches and the printed tables measure the same
//! workloads.

use fixd_runtime::{Context, Message, NetworkConfig, Pid, Program, World, WorldConfig};

/// A gossip workload: P0 seeds `ttl`-hop rumors to every neighbor; each
/// receipt mutates a `state_size`-byte buffer sparsely and forwards until
/// the ttl expires. Tunable event count ≈ `seeds * (ttl + 1)`.
pub struct Gossiper {
    pub buf: Vec<u8>,
    pub seen: u64,
}

impl Gossiper {
    pub fn new(state_size: usize) -> Self {
        Self {
            buf: vec![0; state_size],
            seen: 0,
        }
    }
}

impl Program for Gossiper {
    fn on_start(&mut self, ctx: &mut Context) {
        if ctx.pid() == Pid(0) {
            let n = ctx.world_size();
            for s in 0..n as u8 {
                let dst = Pid((1 + (s as usize % (n - 1))) as u32);
                ctx.send(dst, 1, vec![s, 6]);
            }
        }
    }
    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        self.seen += 1;
        let i = (self.seen as usize).wrapping_mul(131) % self.buf.len();
        self.buf[i] = self.buf[i].wrapping_add(msg.payload[0]);
        let ttl = msg.payload[1];
        if ttl > 0 {
            let dst = Pid(((ctx.pid().0 as usize + 1) % ctx.world_size()) as u32);
            ctx.send(dst, 1, vec![msg.payload[0], ttl - 1]);
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        let mut b = self.seen.to_le_bytes().to_vec();
        b.extend_from_slice(&self.buf);
        b
    }
    fn restore(&mut self, b: &[u8]) {
        self.seen = u64::from_le_bytes(b[0..8].try_into().unwrap());
        self.buf = b[8..].to_vec();
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Gossiper {
            buf: self.buf.clone(),
            seen: self.seen,
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Build a gossip world.
pub fn gossip_world(n: usize, seed: u64, state_size: usize, jitter: bool) -> World {
    let mut cfg = WorldConfig::seeded(seed);
    if jitter {
        cfg.net = NetworkConfig::jittery(1, 40);
    }
    let mut w = World::new(cfg);
    for _ in 0..n {
        w.add_process(Box::new(Gossiper::new(state_size)));
    }
    w
}

/// An all-to-all broadcast: every process shouts to every other at start
/// and counts receipts. With n processes, n(n−1) concurrent messages
/// interleave — the workload that exhibits the §2.1 state-space wall.
pub struct Shouter {
    pub heard: u64,
}

impl Program for Shouter {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.broadcast(1, [1]);
    }
    fn on_message(&mut self, _ctx: &mut Context, _msg: &Message) {
        self.heard += 1;
    }
    fn snapshot(&self) -> Vec<u8> {
        self.heard.to_le_bytes().to_vec()
    }
    fn restore(&mut self, b: &[u8]) {
        self.heard = u64::from_le_bytes(b.try_into().unwrap());
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Shouter { heard: self.heard })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Factory for an n-process broadcast application (Investigator input).
pub fn shouter_factory(n: usize) -> impl Fn() -> Vec<Box<dyn Program>> + Send + Sync {
    move || {
        (0..n)
            .map(|_| Box::new(Shouter { heard: 0 }) as Box<dyn Program>)
            .collect()
    }
}

/// Simple wall-clock stopwatch for the `experiments` table binary.
pub fn time_it<R>(f: impl FnOnce() -> R) -> (R, std::time::Duration) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_world_runs_to_quiescence() {
        let mut w = gossip_world(4, 1, 1024, false);
        let r = w.run_to_quiescence(100_000);
        assert!(r.quiescent);
        assert!(r.delivered > 10);
    }

    #[test]
    fn gossip_is_seed_deterministic() {
        let fp = |seed| {
            let mut w = gossip_world(4, seed, 256, true);
            w.run_to_quiescence(100_000);
            w.global_snapshot().fingerprint()
        };
        assert_eq!(fp(3), fp(3));
    }
}
