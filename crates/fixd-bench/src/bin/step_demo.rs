//! Hot-loop throughput demo: measure the allocation-free
//! `step → apply_effects → route_message → trace.push` cycle against a
//! **modelled clone-per-step baseline** — the exact deep clones the
//! pre-refactor `World::step` performed on every event:
//!
//! * one deep `Message` clone for the handler call
//!   (`HandlerCall::Message(&msg.clone())`),
//! * one deep `Message` clone per routed send
//!   (`route_message(msg.clone())`),
//! * one deep `StepRecord` clone for the trace
//!   (`trace.push(record.clone())`: event kind, every send, every
//!   random, every output),
//! * one byte copy per output for the trace's side list
//!   (`push_output(Output { data: data.clone() })`).
//!
//! Both modes run the *same* deterministic workload on the *same*
//! simulator; the baseline mode additionally performs those clones on
//! each returned record, so the ratio isolates precisely what the
//! refactor removed. Emits `BENCH_step.json` and **fails** (non-zero
//! exit) if the measured speedup drops below 2x — the CI campaign job
//! runs this, so the allocation-free property is a gate, not a claim.
//!
//! Run: `cargo run -p fixd-bench --bin step_demo --release`

use std::hint::black_box;

use fixd_runtime::{
    Context, Message, Pid, Program, SharedStepRecord, TimerId, VectorClock, World, WorldConfig,
};

/// Required steps/sec improvement over the modelled baseline.
const MIN_SPEEDUP: f64 = 2.0;
/// Processes in the gossip mesh (also the vector-clock width every
/// modelled clone re-allocates).
const PROCS: usize = 16;
/// Forwards each process performs before going quiet.
const FORWARDS_PER_PROC: u64 = 6_000;
/// Payload bytes per token (materialized once, aliased per hop).
const PAYLOAD_BYTES: usize = 1024;
/// Output bytes emitted per delivery (the surface the seed deep-copied
/// twice per step: once into the record clone, once into the side list).
const OUTPUT_BYTES: usize = 512;
/// Timed rounds per mode; the median is reported.
const ROUNDS: usize = 5;

/// Every process forwards the received token (aliased payload — no
/// re-materialization) to its neighbour until its forward budget is
/// spent, emitting an output per delivery. All hot-path surfaces stay
/// live: sends, outputs, randoms, and an occasional timer.
struct Gossip {
    forwards_left: u64,
}

impl Program for Gossip {
    fn on_start(&mut self, ctx: &mut Context) {
        // Every process launches one token: n tokens circulate at once.
        let next = Pid(((ctx.pid().0 as usize + 1) % ctx.world_size()) as u32);
        ctx.send(next, 1, vec![ctx.pid().0 as u8; PAYLOAD_BYTES]);
        ctx.set_timer(10);
    }
    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        let _ = ctx.random();
        ctx.output(vec![msg.payload[0]; OUTPUT_BYTES]);
        if self.forwards_left > 0 {
            self.forwards_left -= 1;
            let next = Pid(((ctx.pid().0 as usize + 1) % ctx.world_size()) as u32);
            ctx.send(next, 1, msg.payload.clone());
        }
    }
    fn on_timer(&mut self, _ctx: &mut Context, _t: TimerId) {}
    fn snapshot(&self) -> Vec<u8> {
        self.forwards_left.to_le_bytes().to_vec()
    }
    fn restore(&mut self, b: &[u8]) {
        self.forwards_left = u64::from_le_bytes(b.try_into().unwrap());
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Gossip {
            forwards_left: self.forwards_left,
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn gossip_world(seed: u64) -> World {
    let mut w = World::new(WorldConfig::seeded(seed));
    for _ in 0..PROCS {
        w.add_process(Box::new(Gossip {
            forwards_left: FORWARDS_PER_PROC,
        }));
    }
    w
}

/// Deep-clone a message the way the seed's `Message::clone` did: fresh
/// vector-clock allocation, aliased payload (post-PR-3 seed state).
/// Returns the clone and the bytes it allocated. The seed's clock was a
/// dense `Vec<u64>` of world width, so its clone re-allocated 8 bytes
/// per process regardless of causal footprint — that dense rebuild is
/// what the model reproduces here.
fn seed_message_clone(m: &Message) -> (Message, u64) {
    let vc_bytes = 8 * PROCS as u64;
    let dense: Vec<(u32, u64)> = m.vc.entries().map(|(p, c)| (p.0, c)).collect();
    let clone = Message {
        id: m.id,
        src: m.src,
        dst: m.dst,
        tag: m.tag,
        payload: m.payload.clone(),
        sent_at: m.sent_at,
        vc: VectorClock::from_pairs(dense),
        meta: m.meta,
    };
    (clone, vc_bytes)
}

/// Perform the per-step clones the pre-refactor hot loop performed for
/// this record, returning the bytes they allocated (the
/// bytes-allocated-per-step figure the baseline column reports).
fn modelled_seed_clones(rec: &SharedStepRecord) -> u64 {
    let mut bytes = 0u64;

    // 1. `HandlerCall::Message(&msg.clone())` on deliveries.
    if let fixd_runtime::EventKind::Deliver { msg } = &rec.event.kind {
        let (clone, b) = seed_message_clone(msg);
        bytes += b;
        black_box(clone);
    }

    // 2. `route_message(msg.clone())` per send.
    for m in &rec.effects.sends {
        let (clone, b) = seed_message_clone(m);
        bytes += b;
        black_box(clone);
    }

    // 3. `trace.push(record.clone())`: event kind + full effects.
    let kind_clone = match &rec.event.kind {
        fixd_runtime::EventKind::Deliver { msg } => {
            let (clone, b) = seed_message_clone(msg);
            bytes += b;
            Some(clone)
        }
        fixd_runtime::EventKind::Drop { msg } => {
            let (clone, b) = seed_message_clone(msg);
            bytes += b;
            Some(clone)
        }
        _ => None,
    };
    black_box(kind_clone);
    let sends_clone: Vec<(Message, u64)> = rec
        .effects
        .sends
        .iter()
        .map(|m| seed_message_clone(m))
        .collect();
    bytes += sends_clone.iter().map(|(_, b)| b).sum::<u64>();
    black_box(sends_clone);
    // The seed's randoms were a plain `Vec<u64>` deep-copied per clone
    // (today they are a shared `Randoms`; `to_vec` models the old copy).
    let randoms_clone: Vec<u64> = rec.effects.randoms.to_vec();
    bytes += 8 * randoms_clone.len() as u64;
    black_box(randoms_clone);
    let timers_clone = rec.effects.timers_set.clone();
    black_box(timers_clone);
    // Outputs were `Vec<Vec<u8>>`: the record clone byte-copied them...
    let outputs_clone: Vec<Vec<u8>> = rec.effects.outputs.iter().map(|o| o.to_vec()).collect();
    bytes += outputs_clone.iter().map(|o| o.len() as u64).sum::<u64>();
    black_box(outputs_clone);

    // 4. ...and `push_output` copied each one again into the side list.
    for o in &rec.effects.outputs {
        let copy: Vec<u8> = o.to_vec();
        bytes += copy.len() as u64;
        black_box(copy);
    }

    bytes
}

struct RunResult {
    steps: u64,
    secs: f64,
    payload_copied: u64,
    payload_aliased: u64,
    modelled_bytes: u64,
}

fn run_once(seed: u64, modelled_baseline: bool) -> RunResult {
    let mut w = gossip_world(seed);
    let t0 = std::time::Instant::now();
    let mut steps = 0u64;
    let mut modelled_bytes = 0u64;
    while let Some(rec) = w.step() {
        if modelled_baseline {
            modelled_bytes += modelled_seed_clones(&rec);
        }
        black_box(&rec);
        steps += 1;
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    let pay = w.payload_stats();
    RunResult {
        steps,
        secs,
        payload_copied: pay.copied,
        payload_aliased: pay.aliased,
        modelled_bytes,
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    // Warm-up (page in code + allocator arenas) — not measured.
    let warm = run_once(1, false);

    let mut fast_rates: Vec<f64> = Vec::new();
    let mut base_rates: Vec<f64> = Vec::new();
    let mut fast_last = None;
    let mut base_last = None;
    for round in 0..ROUNDS {
        let seed = 100 + round as u64;
        // Interleave the modes so drift hits both equally.
        let fast = run_once(seed, false);
        let base = run_once(seed, true);
        assert_eq!(fast.steps, base.steps, "same workload in both modes");
        fast_rates.push(fast.steps as f64 / fast.secs);
        base_rates.push(base.steps as f64 / base.secs);
        fast_last = Some(fast);
        base_last = Some(base);
    }
    let fast = fast_last.expect("rounds ran");
    let base = base_last.expect("rounds ran");
    let fast_sps = median(&mut fast_rates);
    let base_sps = median(&mut base_rates);
    let speedup = fast_sps / base_sps.max(1e-9);

    let copied_per_step = fast.payload_copied as f64 / fast.steps as f64;
    let aliased_per_step = fast.payload_aliased as f64 / fast.steps as f64;
    let modelled_per_step = base.modelled_bytes as f64 / base.steps as f64;

    println!(
        "step loop: {} procs × {} forwards, payload {} B, output {} B → {} steps/run",
        PROCS, FORWARDS_PER_PROC, PAYLOAD_BYTES, OUTPUT_BYTES, fast.steps
    );
    println!(
        "optimized:         {:>12.0} steps/sec (median of {ROUNDS})\n\
         clone-per-step:    {:>12.0} steps/sec (modelled seed behaviour)\n\
         speedup:           {speedup:>12.2}x (gate ≥ {MIN_SPEEDUP}x)\n\
         payload bytes/step: copied {copied_per_step:.1}, aliased {aliased_per_step:.1}\n\
         modelled clone bytes/step: {modelled_per_step:.1} (all removed)",
        fast_sps, base_sps,
    );
    let _ = warm;

    let bench = format!(
        "{{\n  \"bench\": \"step\",\n  \"procs\": {PROCS},\n  \"steps\": {},\n  \"rounds\": {ROUNDS},\n  \"payload_bytes\": {PAYLOAD_BYTES},\n  \"output_bytes\": {OUTPUT_BYTES},\n  \"steps_per_sec\": {:.1},\n  \"modelled_clone_per_step_steps_per_sec\": {:.1},\n  \"speedup\": {:.2},\n  \"payload_copied_per_step\": {:.2},\n  \"payload_aliased_per_step\": {:.2},\n  \"modelled_clone_bytes_per_step\": {:.2},\n  \"min_speedup\": {:.1}\n}}\n",
        fast.steps,
        fast_sps,
        base_sps,
        speedup,
        copied_per_step,
        aliased_per_step,
        modelled_per_step,
        MIN_SPEEDUP,
    );
    let path = "BENCH_step.json";
    std::fs::write(path, &bench).expect("write BENCH_step.json");
    println!("wrote {path}");

    assert!(
        speedup >= MIN_SPEEDUP,
        "hot-loop regression: {speedup:.2}x over the modelled clone-per-step \
         baseline is below the required {MIN_SPEEDUP}x"
    );
}
