//! Hot-loop throughput demo: measure the allocation-free
//! `step → apply_effects → route_message → trace.push` cycle against the
//! **real clone-per-step baseline** — the pre-refactor deep clones,
//! compiled back in behind the `clone-baseline` cargo feature:
//!
//! * one deep `Message` clone for the handler call
//!   (`HandlerCall::Message(&msg.clone())`),
//! * one deep `Message` clone per routed send
//!   (`route_message(msg.clone())`),
//! * one deep `StepRecord` clone for the trace
//!   (`trace.push(record.clone())`: event kind, every send, every
//!   random, every output),
//!
//! plus the arena turned off, so every box is a fresh allocation. Both
//! modes run the *same* deterministic workload on the *same* simulator
//! binary and produce value-identical traces (pinned by
//! `fixd-runtime/tests/clone_baseline.rs`); the ratio isolates exactly
//! what the arena + calendar-queue refactor removed.
//!
//! Two gates, both enforced here (the CI campaign job runs this, so
//! they are gates, not claims):
//!
//! * **allocs/step ≤ 1** — a counting `#[global_allocator]` tallies
//!   every allocation event after a warm-up window; the steady-state
//!   step loop must serve messages, records, effects bodies, and draw
//!   buffers from the [`StepArena`] pools.
//! * **speedup ≥ 3x** — only when built `--features clone-baseline`
//!   (the baseline clones don't exist in a normal build); without the
//!   feature the baseline column reads `"unavailable"` and only the
//!   allocation gate applies.
//!
//! Run: `cargo run -p fixd-bench --bin step_demo --release \
//!       --features clone-baseline`
//!
//! [`StepArena`]: fixd_runtime::ArenaStats

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use fixd_runtime::{Context, Message, Payload, Pid, Program, TimerId, World, WorldConfig};

/// Allocation *events* (alloc + alloc_zeroed + realloc), maintained by
/// [`CountingAlloc`]. Counts, not bytes: the gate is "the steady-state
/// step loop does not call the allocator", and a count catches even a
/// 1-byte slip that a byte-threshold would hide.
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper over the system allocator. Frees are not
/// counted — recycling is about *not allocating*, and a free in the
/// hot loop would imply a paired allocation somewhere anyway.
struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; only the
// event counter is maintained on the side.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        System.dealloc(p, layout)
    }
    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(p, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Required steps/sec improvement over the real clone-per-step
/// baseline (enforced only when the baseline is compiled in).
const MIN_SPEEDUP: f64 = 3.0;
/// Steady-state allocation budget per step (post-warm-up).
const MAX_ALLOCS_PER_STEP: f64 = 1.0;
/// Processes in the gossip mesh.
const PROCS: usize = 16;
/// Forwards each process performs before going quiet.
const FORWARDS_PER_PROC: u64 = 6_000;
/// Payload bytes per token (materialized once, aliased per hop).
const PAYLOAD_BYTES: usize = 1024;
/// Output bytes emitted per delivery (materialized once per process,
/// aliased into every record via `output_shared`).
const OUTPUT_BYTES: usize = 512;
/// Bounded trace depth: old records evict, so their boxes cycle back
/// through the arena instead of accumulating.
const TRACE_CAP: usize = 256;
/// Steps before the allocation window opens — long enough for every
/// pool, bucket `Vec`, and clock spill to reach its steady capacity.
const WARM_STEPS: u64 = 20_000;
/// Timed rounds per mode; the median is reported.
const ROUNDS: usize = 5;

/// Every process forwards the received token (aliased payload — no
/// re-materialization) to its neighbour until its forward budget is
/// spent, emitting a pre-materialized shared output per delivery. All
/// hot-path surfaces stay live — sends, outputs, randoms, a timer —
/// and none of them allocates after warm-up.
struct Gossip {
    forwards_left: u64,
    out: Payload,
}

impl Program for Gossip {
    fn on_start(&mut self, ctx: &mut Context) {
        // Every process launches one token: n tokens circulate at once.
        let next = Pid(((ctx.pid().0 as usize + 1) % ctx.world_size()) as u32);
        ctx.send(next, 1, vec![ctx.pid().0 as u8; PAYLOAD_BYTES]);
        ctx.set_timer(10);
    }
    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        let _ = ctx.random();
        ctx.output_shared(self.out.clone());
        if self.forwards_left > 0 {
            self.forwards_left -= 1;
            let next = Pid(((ctx.pid().0 as usize + 1) % ctx.world_size()) as u32);
            ctx.send(next, 1, msg.payload.clone());
        }
    }
    fn on_timer(&mut self, _ctx: &mut Context, _t: TimerId) {}
    fn snapshot(&self) -> Vec<u8> {
        self.forwards_left.to_le_bytes().to_vec()
    }
    fn restore(&mut self, b: &[u8]) {
        self.forwards_left = u64::from_le_bytes(b.try_into().unwrap());
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Gossip {
            forwards_left: self.forwards_left,
            out: self.out.clone(),
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn gossip_world(seed: u64, clone_baseline: bool) -> World {
    let mut cfg = WorldConfig::seeded(seed);
    cfg.trace_cap = Some(TRACE_CAP);
    cfg.clone_baseline = clone_baseline;
    let mut w = World::new(cfg);
    for p in 0..PROCS {
        w.add_process(Box::new(Gossip {
            forwards_left: FORWARDS_PER_PROC,
            out: Payload::untracked(vec![p as u8; OUTPUT_BYTES]),
        }));
    }
    w
}

struct RunResult {
    steps: u64,
    secs: f64,
    /// Allocation events observed in the post-warm-up window, and the
    /// number of steps that window covered.
    steady_allocs: u64,
    steady_steps: u64,
    payload_copied: u64,
    payload_aliased: u64,
    /// Share of queue pushes that landed in the calendar ring's O(1)
    /// near-future buckets (vs the overflow/past heap tiers).
    ring_push_pct: f64,
}

fn run_once(seed: u64, clone_baseline: bool) -> RunResult {
    let mut w = gossip_world(seed, clone_baseline);
    let t0 = std::time::Instant::now();
    let mut steps = 0u64;
    let mut window_open = 0u64;
    while let Some(rec) = w.step() {
        black_box(&rec);
        steps += 1;
        if steps == WARM_STEPS {
            window_open = ALLOCS.load(Ordering::Relaxed);
        }
    }
    let window_close = ALLOCS.load(Ordering::Relaxed);
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    assert!(steps > WARM_STEPS, "workload must outlast the warm-up");
    let pay = w.payload_stats();
    let q = w.queue_stats();
    let pushes = q.ring_pushes + q.overflow_pushes + q.past_pushes;
    RunResult {
        steps,
        secs,
        steady_allocs: window_close - window_open,
        steady_steps: steps - WARM_STEPS,
        payload_copied: pay.copied,
        payload_aliased: pay.aliased,
        ring_push_pct: 100.0 * q.ring_pushes as f64 / (pushes.max(1)) as f64,
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

#[cfg(feature = "clone-baseline")]
const BASELINE_MODE: &str = "real";
#[cfg(not(feature = "clone-baseline"))]
const BASELINE_MODE: &str = "unavailable";

fn main() {
    // Warm-up (page in code + allocator arenas) — not measured.
    let _ = run_once(1, false);

    let mut fast_rates: Vec<f64> = Vec::new();
    let mut base_rates: Vec<f64> = Vec::new();
    let mut fast_allocs: Vec<f64> = Vec::new();
    let mut base_allocs: Vec<f64> = Vec::new();
    let mut fast_last = None;
    for round in 0..ROUNDS {
        let seed = 100 + round as u64;
        let fast = run_once(seed, false);
        fast_rates.push(fast.steps as f64 / fast.secs);
        fast_allocs.push(fast.steady_allocs as f64 / fast.steady_steps as f64);
        // Interleave the modes so drift hits both equally.
        if cfg!(feature = "clone-baseline") {
            let base = run_once(seed, true);
            assert_eq!(fast.steps, base.steps, "same workload in both modes");
            base_rates.push(base.steps as f64 / base.secs);
            base_allocs.push(base.steady_allocs as f64 / base.steady_steps as f64);
        }
        fast_last = Some(fast);
    }
    let fast = fast_last.expect("rounds ran");
    let fast_sps = median(&mut fast_rates);
    let allocs_per_step = median(&mut fast_allocs);
    let worst_allocs_per_step = fast_allocs.iter().cloned().fold(0.0f64, f64::max);
    let (base_sps, base_aps) = if base_rates.is_empty() {
        (0.0, 0.0)
    } else {
        (median(&mut base_rates), median(&mut base_allocs))
    };
    let speedup = if base_sps > 0.0 {
        fast_sps / base_sps
    } else {
        0.0
    };

    let copied_per_step = fast.payload_copied as f64 / fast.steps as f64;
    let aliased_per_step = fast.payload_aliased as f64 / fast.steps as f64;

    println!(
        "step loop: {} procs × {} forwards, payload {} B, output {} B, trace cap {} → {} steps/run",
        PROCS, FORWARDS_PER_PROC, PAYLOAD_BYTES, OUTPUT_BYTES, TRACE_CAP, fast.steps
    );
    println!(
        "optimized:         {fast_sps:>12.0} steps/sec (median of {ROUNDS})\n\
         steady allocs/step: {allocs_per_step:>11.4} (worst round {worst_allocs_per_step:.4}, gate ≤ {MAX_ALLOCS_PER_STEP})\n\
         payload bytes/step: copied {copied_per_step:.1}, aliased {aliased_per_step:.1}\n\
         calendar queue:     {:.1}% of pushes in the O(1) ring tier",
        fast.ring_push_pct
    );
    if cfg!(feature = "clone-baseline") {
        println!(
            "clone-per-step:    {base_sps:>12.0} steps/sec (real baseline, {base_aps:.2} allocs/step)\n\
             speedup:           {speedup:>12.2}x (gate ≥ {MIN_SPEEDUP}x)"
        );
    } else {
        println!(
            "clone-per-step:    unavailable (build with --features clone-baseline for the real A/B)"
        );
    }

    let bench = format!(
        "{{\n  \"bench\": \"step\",\n  \"procs\": {PROCS},\n  \"steps\": {},\n  \"rounds\": {ROUNDS},\n  \"payload_bytes\": {PAYLOAD_BYTES},\n  \"output_bytes\": {OUTPUT_BYTES},\n  \"trace_cap\": {TRACE_CAP},\n  \"steps_per_sec\": {:.1},\n  \"allocs_per_step\": {:.4},\n  \"worst_allocs_per_step\": {:.4},\n  \"max_allocs_per_step\": {:.1},\n  \"baseline\": \"{}\",\n  \"baseline_steps_per_sec\": {:.1},\n  \"baseline_allocs_per_step\": {:.2},\n  \"speedup\": {:.2},\n  \"payload_copied_per_step\": {:.2},\n  \"payload_aliased_per_step\": {:.2},\n  \"queue_ring_push_pct\": {:.1},\n  \"min_speedup\": {:.1}\n}}\n",
        fast.steps,
        fast_sps,
        allocs_per_step,
        worst_allocs_per_step,
        MAX_ALLOCS_PER_STEP,
        BASELINE_MODE,
        base_sps,
        base_aps,
        speedup,
        copied_per_step,
        aliased_per_step,
        fast.ring_push_pct,
        MIN_SPEEDUP,
    );
    let path = "BENCH_step.json";
    std::fs::write(path, &bench).expect("write BENCH_step.json");
    println!("wrote {path}");

    assert!(
        allocs_per_step <= MAX_ALLOCS_PER_STEP,
        "steady-state regression: {allocs_per_step:.4} allocations per step \
         exceeds the {MAX_ALLOCS_PER_STEP} budget"
    );
    if cfg!(feature = "clone-baseline") {
        assert!(
            speedup >= MIN_SPEEDUP,
            "hot-loop regression: {speedup:.2}x over the real clone-per-step \
             baseline is below the required {MIN_SPEEDUP}x"
        );
    }
}
