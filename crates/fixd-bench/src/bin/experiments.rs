//! Run every FixD experiment (F1–F8) quickly and print the paper-style
//! tables. This is the source of the numbers recorded in EXPERIMENTS.md;
//! the criterion benches measure the same workloads with statistical
//! rigor.
//!
//! Run: `cargo run -p fixd-bench --bin experiments --release`

use fixd_baselines::{Cmc, FlashbackCheckpointer, Liblog, PrintfLogger};
use fixd_bench::{gossip_world, time_it};
use fixd_core::{Fixd, FixdConfig};
use fixd_examples::token_ring::RingNode;
use fixd_examples::{kvstore, pipeline, token_ring, two_phase_commit as tpc};
use fixd_healer::Patch;
use fixd_investigator::{ExploreConfig, ModelD, NetModel, SearchOrder};
use fixd_runtime::{EventKind, Pid, Program};
use fixd_scroll::{record::record_run, RecordConfig, ScrollStats};
use fixd_timemachine::{CheckpointPolicy, TimeMachine, TimeMachineConfig};

fn main() {
    f1_scroll();
    f2_checkpoints();
    f3_investigator();
    f4_response();
    f5_healer();
    f6_recovery_lines();
    f7_modeld();
    f8_matrix();
    println!("\nall experiments completed");
}

fn f1_scroll() {
    println!("==============================================================");
    println!("F1 (Fig. 1): Scroll recording overhead and log size");
    println!("==============================================================");
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>12}",
        "mode", "n", "time", "entries", "bytes"
    );
    for &n in &[4usize, 8] {
        let (report, t_bare) = time_it(|| {
            let mut w = gossip_world(n, 7, 256, false);
            w.run_to_quiescence(1_000_000)
        });
        println!(
            "{:<10} {:>8} {:>10.2?} {:>12} {:>12}",
            "bare", n, t_bare, "-", "-"
        );
        let ((store, _), t_scroll) = time_it(|| {
            let mut w = gossip_world(n, 7, 256, false);
            record_run(&mut w, RecordConfig::default(), 1_000_000)
        });
        let stats = ScrollStats::compute(&store);
        println!(
            "{:<10} {:>8} {:>10.2?} {:>12} {:>12}",
            "scroll", n, t_scroll, stats.total_entries, stats.encoded_bytes
        );
        let (printf_bytes, t_printf) = time_it(|| {
            let mut w = gossip_world(n, 7, 256, false);
            let mut log = PrintfLogger::new();
            while let Some(step) = w.step() {
                log.observe(&w, &step);
            }
            (log.len(), log.bytes())
        });
        println!(
            "{:<10} {:>8} {:>10.2?} {:>12} {:>12}",
            "printf", n, t_printf, printf_bytes.0, printf_bytes.1
        );
        let ((ll, _), t_ll) = time_it(|| {
            let mut w = gossip_world(n, 7, 256, false);
            Liblog::record(&mut w, 7, 1_000_000)
        });
        println!(
            "{:<10} {:>8} {:>10.2?} {:>12} {:>12}",
            "liblog",
            n,
            t_ll,
            ll.store().total_entries(),
            ll.log_bytes()
        );
        let _ = report;
    }
}

fn f2_checkpoints() {
    println!("\n==============================================================");
    println!("F2 (Fig. 2, §4.2): COW speculation checkpoints vs eager copies");
    println!("==============================================================");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "state size", "cow time", "eager time", "cow bytes", "eager bytes", "ratio"
    );
    for &state in &[4 * 1024usize, 64 * 1024] {
        let (cow_bytes, t_cow) = time_it(|| {
            let mut w = gossip_world(4, 3, state, false);
            let mut tm = TimeMachine::new(
                4,
                TimeMachineConfig {
                    policy: CheckpointPolicy::EveryReceive,
                    page_size: 256,
                },
            );
            tm.run(&mut w, 1_000_000);
            tm.total_checkpoint_bytes()
        });
        let (eager_bytes, t_eager) = time_it(|| {
            let mut w = gossip_world(4, 3, state, false);
            let mut fb = FlashbackCheckpointer::new(4);
            while let Some(ev) = w.peek() {
                if let EventKind::Deliver { msg } = &ev.kind {
                    fb.take(&w, msg.dst);
                }
                if w.step().is_none() {
                    break;
                }
            }
            fb.bytes_held()
        });
        println!(
            "{:<12} {:>10.2?} {:>10.2?} {:>12} {:>12} {:>7.1}x",
            state,
            t_cow,
            t_eager,
            cow_bytes,
            eager_bytes,
            eager_bytes as f64 / cow_bytes as f64
        );
    }
}

fn ring_factory(n: usize) -> impl Fn() -> Vec<Box<dyn Program>> + Send + Sync {
    move || {
        (0..n)
            .map(|i| -> Box<dyn Program> {
                if i == 2 {
                    Box::new(RingNode::buggy(5))
                } else {
                    Box::new(RingNode::correct())
                }
            })
            .collect()
    }
}

fn f3_investigator() {
    println!("\n==============================================================");
    println!("F3 (Fig. 3, §2.1): Investigator state-space growth and orders");
    println!("==============================================================");
    println!("state-space growth (all-to-all broadcast, cap 200k):");
    for n in 3..=7 {
        let (report, t) = time_it(|| {
            ModelD::from_initial(1, NetModel::reliable(), fixd_bench::shouter_factory(n))
                .config(ExploreConfig {
                    max_states: 200_000,
                    stop_at_first_violation: false,
                    max_violations: 10_000,
                    ..ExploreConfig::default()
                })
                .run()
        });
        println!(
            "  n={n}: {:>8} states {:>9} transitions in {:>8.2?}{}",
            report.states,
            report.transitions,
            t,
            if report.truncated {
                "  << the §2.1 wall"
            } else {
                ""
            }
        );
    }
    println!("time to first mutual-exclusion violation (n=4):");
    for (name, order) in [
        ("bfs", SearchOrder::Bfs),
        ("dfs", SearchOrder::Dfs),
        ("random", SearchOrder::Random { seed: 3 }),
    ] {
        let (report, t) = time_it(|| {
            ModelD::from_initial(1, NetModel::reliable(), ring_factory(4))
                .invariant(token_ring::mutex_monitor().invariant())
                .config(ExploreConfig {
                    order: order.clone(),
                    stop_at_first_violation: true,
                    max_states: 2_000_000,
                    ..ExploreConfig::default()
                })
                .run()
        });
        println!(
            "  {name:<7}: {:>8} states, trail depth {:>3}, {:>8.2?}",
            report.states,
            report.violations.first().map_or(0, |v| v.depth),
            t
        );
    }
    println!("ablation — sleep-set partial-order reduction (broadcast n=4, DFS):");
    for (name, use_reduction) in [("full", false), ("sleep-sets", true)] {
        let (report, t) = time_it(|| {
            ModelD::from_initial(1, NetModel::reliable(), fixd_bench::shouter_factory(4))
                .config(ExploreConfig {
                    order: SearchOrder::Dfs,
                    use_reduction,
                    max_states: 100_000,
                    ..ExploreConfig::default()
                })
                .run()
        });
        println!(
            "  {name:<11}: {:>8} states {:>9} transitions in {:>8.2?}",
            report.states, report.transitions, t
        );
    }
    println!("parallel workers (n=4, cap 30k):");
    for threads in [1usize, 2, 4] {
        let (states, t) = time_it(|| {
            ModelD::from_initial(1, NetModel::reliable(), ring_factory(4))
                .config(ExploreConfig {
                    max_states: 30_000,
                    ..ExploreConfig::default()
                })
                .run_parallel(threads)
                .states
        });
        println!("  {threads} worker(s): {states:>8} states in {t:>8.2?}");
    }
}

fn f4_response() {
    println!("\n==============================================================");
    println!("F4 (Fig. 4): FixD fault response vs CMC whole-history checking");
    println!("==============================================================");
    let script = kvstore::script(12, 5);
    let mut manifested = None;
    let (_, t_detect) = time_it(|| {
        for seed in 0..200u64 {
            let mut w = kvstore::kv_world(seed, script.clone(), (1, 80));
            let mut fixd = Fixd::new(3, FixdConfig::seeded(seed)).monitor(kvstore::gap_monitor());
            let out = fixd.supervise(&mut w, 100_000);
            if let Some(fault) = out.fault {
                manifested = Some((seed, w, fixd, fault));
                return;
            }
        }
    });
    let (seed, mut w, mut fixd, fault) = manifested.expect("bug manifests");
    println!("fault manifested on seed {seed} (search took {t_detect:.2?})");
    let (outcome, t_respond) = time_it(|| fixd.respond(&mut w, &fault).unwrap());
    println!(
        "respond (rollback+assemble): {:.2?}; line breadth {}, {} replayed",
        t_respond, outcome.rollback.procs_rolled, outcome.rollback.msgs_replayed
    );
    let (inv_report, t_inv) = time_it(|| fixd.investigate(outcome.state));
    println!(
        "investigate from checkpoint: {:>6} states in {:.2?}, {} trail(s)",
        inv_report.states,
        t_inv,
        inv_report.violations.len()
    );
    for ops in [4usize, 6, 8] {
        let s = kvstore::script(ops, 5);
        let (cmc, t_cmc) = time_it(|| {
            Cmc::new(1, NetModel::reliable(), move || {
                vec![
                    Box::new(kvstore::Client { script: s.clone() }) as Box<dyn Program>,
                    Box::new(kvstore::Primary::default()),
                    Box::new(kvstore::BackupV1::default()),
                ]
            })
            .config(ExploreConfig {
                max_states: 500_000,
                ..ExploreConfig::default()
            })
            .run()
        });
        println!(
            "CMC from initial (ops={ops}): {:>6} states in {:.2?}, {} violation(s){}{}",
            cmc.states,
            t_cmc,
            cmc.violations.len(),
            if cmc.violations.is_empty() {
                "  << reordering is outside CMC's model; the bug is invisible"
            } else {
                ""
            },
            if cmc.truncated { " (truncated)" } else { "" }
        );
    }
}

fn f5_healer() {
    println!("\n==============================================================");
    println!("F5 (Fig. 5, §3.4): update-from-checkpoint vs restart-from-scratch");
    println!("==============================================================");
    const COST: u64 = 5_000;
    println!(
        "{:>6} {:>16} {:>16} {:>10} {:>10}",
        "items", "update time", "restart time", "salvaged", "redone"
    );
    for &n_items in &[16u64, 64, 256] {
        let detect = || {
            let mut world = pipeline::pipeline_world(2, n_items, COST, Some(n_items - 2));
            let mut fixd = Fixd::new(2, FixdConfig::seeded(2)).monitor(pipeline::results_monitor());
            let out = fixd.supervise(&mut world, 1_000_000);
            (world, fixd, out.fault.expect("detected"))
        };
        let patch = pipeline::cruncher_patch(COST);
        let (mut world, mut fixd, _) = detect();
        let (salvaged, t_update) = time_it(|| {
            let heal = fixd.heal_update(&mut world, Pid(1), &patch).unwrap();
            fixd.supervise(&mut world, 1_000_000);
            heal.salvaged_events
        });
        let (mut world2, mut fixd2, _) = detect();
        let (_, t_restart) = time_it(|| {
            fixd2.heal_restart(&mut world2, &patch, &[Pid(1)]);
            let src = Patch::code_only("src", 1, 2, move || Box::new(pipeline::Source { n_items }));
            fixd2.heal_restart(&mut world2, &src, &[Pid(0)]);
            fixd2.supervise(&mut world2, 1_000_000);
        });
        println!(
            "{:>6} {:>16.2?} {:>16.2?} {:>10} {:>10}",
            n_items, t_update, t_restart, salvaged, n_items
        );
    }
}

fn f6_recovery_lines() {
    println!("\n==============================================================");
    println!("F6 (Fig. 6): safe recovery lines (CIC) vs the domino effect");
    println!("==============================================================");
    println!(
        "{:<10} {:>4} {:>14} {:>13} {:>9} {:>9}",
        "policy", "n", "events undone", "procs rolled", "purged", "replayed"
    );
    for &n in &[4usize, 6, 8] {
        for (name, policy) in [
            ("CIC", CheckpointPolicy::EveryReceive),
            ("periodic", CheckpointPolicy::Periodic { every: 30 }),
        ] {
            let mut w = gossip_world(n, 13, 1024, false);
            let mut tm = TimeMachine::new(
                n,
                TimeMachineConfig {
                    policy,
                    page_size: 256,
                },
            );
            tm.run(&mut w, 400);
            let fail = (0..n)
                .map(|i| Pid(i as u32))
                .max_by_key(|&p| tm.interval(p))
                .unwrap();
            let target = tm.interval(fail).saturating_sub(1);
            let r = tm.rollback(&mut w, fail, target).expect("rollback");
            println!(
                "{:<10} {:>4} {:>14} {:>13} {:>9} {:>9}",
                name, n, r.events_undone, r.procs_rolled, r.msgs_purged, r.msgs_replayed
            );
        }
    }
}

fn f7_modeld() {
    println!("\n==============================================================");
    println!("F7 (Fig. 7): ModelD front-end + back-end (see fig7_modeld_demo)");
    println!("==============================================================");
    // Abbreviated functional check; the full demo is its own binary.
    let votes = vec![true, false];
    let report = ModelD::from_initial(1, NetModel::reliable(), tpc::tpc_factory(votes, true))
        .invariant(tpc::atomicity_monitor().invariant())
        .run();
    println!(
        "guarded-command engine over real 2PC code: {} states, {} violation(s) — {}",
        report.states,
        report.violations.len(),
        if report.violations.is_empty() {
            "UNEXPECTED"
        } else {
            "bug found"
        }
    );
}

fn f8_matrix() {
    println!("\n==============================================================");
    println!("F8 (Fig. 8): characteristics matrix");
    println!("==============================================================");
    print!("{}", fixd_core::render_matrix());
}
