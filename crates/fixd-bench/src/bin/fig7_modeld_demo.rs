//! **Experiment F7** (paper Fig. 7, §4.3): the two components of ModelD —
//! front-end DSL and back-end guarded-command engine — plus the dynamic
//! action-set change that lets the engine "run the actual implementation
//! of a process involved in a distributed application".
//!
//! Run: `cargo run -p fixd-bench --bin fig7_modeld_demo`

use fixd_investigator::{
    Action, ExploreConfig, Explorer, GuardedSystemBuilder, Invariant, ModelD, NetModel, SearchOrder,
};
use fixd_runtime::{Context, Message, Pid, Program};

fn main() {
    println!("== ModelD front-end: the guarded-command DSL (Fig. 7 front-end) ==");
    // A tiny elevator: floor 0..3, door open/closed.
    let mut sys = GuardedSystemBuilder::new((0u8, false))
        .action("up", |s: &(u8, bool)| !s.1 && s.0 < 3, |s| s.0 += 1)
        .action("down", |s: &(u8, bool)| !s.1 && s.0 > 0, |s| s.0 -= 1)
        .action("open", |s: &(u8, bool)| !s.1, |s| s.1 = true)
        .action("close", |s: &(u8, bool)| s.1, |s| s.1 = false)
        .build();
    let report = Explorer::new(&sys, ExploreConfig::default())
        .invariant(Invariant::new("door-closed-while-moving", |_s| true))
        .run();
    println!("elevator reachability: {}", report.summary());
    assert_eq!(report.states, 8); // 4 floors × door open/closed

    println!("\n== back-end feature: dynamic action-set change (§4.3/§4.4) ==");
    // Inject an updated "up" that skips floors (the Healer's injection
    // mechanism, shown on the abstract model).
    sys.replace_action(
        "up",
        Action::new("up", |s: &(u8, bool)| !s.1 && s.0 == 0, |s| s.0 = 3),
    );
    let report2 = Explorer::new(&sys, ExploreConfig::default()).run();
    println!("after action swap: {}", report2.summary());
    assert!(
        report2.transitions < report.transitions,
        "the express elevator has fewer transitions"
    );

    println!("\n== back-end feature: customizable search order ==");
    for (name, order) in [
        ("bfs", SearchOrder::Bfs),
        ("dfs", SearchOrder::Dfs),
        ("random", SearchOrder::Random { seed: 7 }),
    ] {
        let r = Explorer::new(
            &sys,
            ExploreConfig {
                order,
                ..ExploreConfig::default()
            },
        )
        .run();
        println!(
            "  {name:<7}: {} states (same set, different order)",
            r.states
        );
    }

    println!("\n== checking a real implementation (the §4.3 example) ==");
    // An event-based protocol: the *actual* Program code runs inside the
    // model checker; network actions are the modeled environment.
    struct Counter {
        n: u8,
    }
    impl Program for Counter {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                ctx.send(Pid(1), 1, vec![1]);
                ctx.send(Pid(1), 1, vec![2]);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context, msg: &Message) {
            self.n = self.n.wrapping_add(msg.payload[0]);
        }
        fn snapshot(&self) -> Vec<u8> {
            vec![self.n]
        }
        fn restore(&mut self, b: &[u8]) {
            self.n = b[0];
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Counter { n: self.n })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    let md = ModelD::from_initial(1, NetModel::reliable(), || {
        vec![
            Box::new(Counter { n: 0 }) as Box<dyn Program>,
            Box::new(Counter { n: 0 }),
        ]
    })
    .invariant(Invariant::new(
        "sum-bounded",
        |s: &fixd_investigator::WorldState| s.program::<Counter>(Pid(1)).is_none_or(|c| c.n <= 3),
    ));
    let r = md.run();
    println!("real-code check (FIFO env model): {}", r.summary());

    // Swap the environment model: a duplicating network breaks the bound.
    let mut md2 = ModelD::from_initial(1, NetModel::reliable(), || {
        vec![
            Box::new(Counter { n: 0 }) as Box<dyn Program>,
            Box::new(Counter { n: 0 }),
        ]
    })
    .invariant(Invariant::new(
        "sum-bounded",
        |s: &fixd_investigator::WorldState| s.program::<Counter>(Pid(1)).is_none_or(|c| c.n <= 3),
    ));
    md2.set_net(NetModel::duplicating());
    let r2 = md2.run();
    println!("after env-model swap (duplicating net): {}", r2.summary());
    assert!(!r2.violations.is_empty(), "duplication breaks the bound");
    println!("\nModelD demo OK");
}
