//! Sharded-world throughput benchmark: an active-heavy gossip workload
//! (256 eager processes, compute-heavy handlers, every pid busy) run at
//! shard counts 1 → 8.
//!
//! Two claims, one gate:
//!
//! * **determinism** — the trace fingerprint must be identical at every
//!   shard count; a speedup that changes the execution is worthless.
//!   Asserted directly.
//! * **throughput** — 8 shards must run the workload ≥ 2x faster than
//!   1 shard (`MIN_SPEEDUP`). On machines with at least 8 cores the
//!   gate uses measured wall-clock steps/sec; on smaller hosts (CI
//!   containers are often 1-2 cores) the wall clock cannot show a
//!   parallel speedup, so the gate falls back to the **modelled** rate
//!   `steps / (coordinator + critical_path)` from
//!   [`fixd_runtime::ShardTiming`] — the run's own measured per-shard
//!   busy time, combined as a perfectly-scheduled parallel machine
//!   would. The JSON labels which mode gated.
//!
//! Emits `BENCH_shard.json`; exits non-zero on gate failure (the CI
//! bench job runs this).
//!
//! Run: `cargo run -p fixd-bench --bin shard_demo --release`

use std::hint::black_box;

use fixd_runtime::wire::fnv_mix;
use fixd_runtime::{
    clock::INLINE_PAIRS, Context, EventKind, Message, Pid, Program, ShardedWorld, TimerId, World,
    WorldConfig,
};

/// Eager processes — every one of them active the whole run.
const N: usize = 256;
/// Hops each gossip seed survives (fan-out 2 per hop).
const TTL: u8 = 5;
/// Deterministic compute per delivery, the "application work" being
/// parallelized: FNV mixing iterations over the payload.
const WORK_ITERS: u64 = 4_000;
/// Shard counts swept; the gate compares the first and last.
const SHARD_COUNTS: &[usize] = &[1, 2, 4, 8];
/// Timed rounds per shard count; the median rate is reported.
const ROUNDS: usize = 3;
/// Gate: 8 shards must beat 1 shard by at least this factor.
const MIN_SPEEDUP: f64 = 2.0;

/// Gossip with heavy deterministic compute per delivery: each process
/// seeds two chains on start; every delivery burns `WORK_ITERS` of hash
/// work, then forwards to two neighbors until the TTL dies.
struct Churn {
    acc: u64,
    seen: u64,
}

fn work(payload: &[u8], acc: u64) -> u64 {
    let mut h = acc ^ 0x9E37_79B9_7F4A_7C15;
    for i in 0..WORK_ITERS {
        h = fnv_mix(h, i);
        for &b in payload {
            h = fnv_mix(h, u64::from(b));
        }
    }
    h
}

impl Program for Churn {
    fn on_start(&mut self, ctx: &mut Context) {
        let me = ctx.pid().0;
        let n = ctx.world_size() as u32;
        ctx.send(Pid((me + 1) % n), 1, vec![TTL, me as u8]);
        ctx.send(Pid((me + 7) % n), 1, vec![TTL, me as u8]);
    }
    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        self.seen += 1;
        self.acc = work(&msg.payload, self.acc);
        let ttl = msg.payload[0];
        if ttl > 1 {
            let me = ctx.pid().0;
            let n = ctx.world_size() as u32;
            ctx.send(Pid((me + 3) % n), 1, vec![ttl - 1, msg.payload[1]]);
            ctx.send(Pid((me + 11) % n), 1, vec![ttl - 1, msg.payload[1]]);
        }
    }
    fn on_timer(&mut self, _ctx: &mut Context, _t: TimerId) {}
    fn snapshot(&self) -> Vec<u8> {
        let mut b = self.acc.to_le_bytes().to_vec();
        b.extend_from_slice(&self.seen.to_le_bytes());
        b
    }
    fn restore(&mut self, b: &[u8]) {
        self.acc = u64::from_le_bytes(b[0..8].try_into().unwrap());
        self.seen = u64::from_le_bytes(b[8..16].try_into().unwrap());
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Churn {
            acc: self.acc,
            seen: self.seen,
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Order-dependent fingerprint over the full record sequence.
fn trace_fp(w: &ShardedWorld) -> u64 {
    let mut h = 0x517E_u64;
    for r in w.trace().records() {
        h = fnv_mix(h, r.event.seq);
        h = fnv_mix(h, r.event.at);
        h = fnv_mix(h, r.effects.fingerprint());
    }
    h
}

struct RunResult {
    steps: u64,
    fp: u64,
    secs: f64,
    modelled_secs: f64,
}

fn run_once(shards: usize, seed: u64) -> RunResult {
    let mut w = ShardedWorld::new(WorldConfig::seeded(seed), shards);
    for _ in 0..N {
        w.add_process(Box::new(Churn { acc: 0, seen: 0 }));
    }
    let t0 = std::time::Instant::now();
    let report = w.run_to_quiescence(10_000_000);
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    assert!(report.quiescent, "workload must drain");
    let t = w.timing();
    let modelled_secs = (t.coordinator + t.critical).as_secs_f64().max(1e-9);
    RunResult {
        steps: report.steps,
        fp: trace_fp(&w),
        secs,
        modelled_secs,
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

struct ShardResult {
    shards: usize,
    steps: u64,
    measured: f64,
    modelled: f64,
}

fn main() {
    // The serial reference: identical workload on the plain World — the
    // sharded executor's fingerprints are checked against each other,
    // and its step count against the serial run.
    // The serial pass doubles as a clock-sparsity census (the sharded
    // runs execute the identical event sequence): how many delivered
    // messages' vector clocks still fit the inline representation.
    let (serial_steps, nnz_inline, nnz_total, nnz_max) = {
        let mut w = World::new(WorldConfig::seeded(0x5AAD));
        for _ in 0..N {
            w.add_process(Box::new(Churn { acc: 0, seen: 0 }));
        }
        let (mut steps, mut inline, mut total, mut max_nnz) = (0u64, 0u64, 0u64, 0usize);
        while let Some(rec) = w.step() {
            if let EventKind::Deliver { msg } = &rec.event.kind {
                let n = msg.vc.nnz();
                total += 1;
                if n <= INLINE_PAIRS {
                    inline += 1;
                }
                max_nnz = max_nnz.max(n);
            }
            steps += 1;
        }
        (steps, inline, total, max_nnz)
    };

    // Warm-up — not measured.
    black_box(run_once(2, 0x5AAD));

    let mut results: Vec<ShardResult> = Vec::new();
    let mut want_fp = None;
    for &shards in SHARD_COUNTS {
        let mut measured: Vec<f64> = Vec::new();
        let mut modelled: Vec<f64> = Vec::new();
        let mut steps = 0;
        for _ in 0..ROUNDS {
            let r = run_once(shards, 0x5AAD);
            assert_eq!(
                r.steps, serial_steps,
                "sharded step count must match serial at {shards} shards"
            );
            match want_fp {
                None => want_fp = Some(r.fp),
                Some(fp) => assert_eq!(
                    r.fp, fp,
                    "trace fingerprint drifted at {shards} shards — \
                     a speedup that changes the execution is a bug"
                ),
            }
            measured.push(r.steps as f64 / r.secs);
            modelled.push(r.steps as f64 / r.modelled_secs);
            steps = r.steps;
        }
        results.push(ShardResult {
            shards,
            steps,
            measured: median(&mut measured),
            modelled: median(&mut modelled),
        });
    }

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let max_shards = *SHARD_COUNTS.last().unwrap();
    // Wall clock can only exhibit an 8-way speedup with 8 cores to run
    // on; otherwise gate on the modelled rate (see module docs).
    let gate_mode = if cores >= max_shards {
        "measured"
    } else {
        "modelled"
    };
    let rate = |r: &ShardResult| {
        if gate_mode == "measured" {
            r.measured
        } else {
            r.modelled
        }
    };
    let speedup = rate(&results[results.len() - 1]) / rate(&results[0]).max(1e-9);

    println!(
        "shard churn: {N} procs, {} steps/run, ttl {TTL}, {WORK_ITERS} work iters/delivery, \
         {cores} cores → gating on {gate_mode} steps/sec",
        results[0].steps
    );
    println!(
        "{:>7} {:>16} {:>16}",
        "shards", "measured st/s", "modelled st/s"
    );
    for r in &results {
        println!("{:>7} {:>16.0} {:>16.0}", r.shards, r.measured, r.modelled);
    }
    println!(
        "speedup 1 → {max_shards} shards ({gate_mode}): {speedup:.2}x (gate ≥ {MIN_SPEEDUP}x)"
    );
    println!(
        "clock nnz per delivery: inline (≤{INLINE_PAIRS} pairs) covers {:.1}% of {} deliveries, \
         max nnz {}",
        100.0 * nnz_inline as f64 / nnz_total.max(1) as f64,
        nnz_total,
        nnz_max
    );

    let mut json = String::from("{\n  \"bench\": \"shard\",\n");
    json.push_str(&format!(
        "  \"procs\": {N},\n  \"steps\": {},\n  \"rounds\": {ROUNDS},\n  \
         \"cores\": {cores},\n  \"gate_mode\": \"{gate_mode}\",\n",
        results[0].steps
    ));
    json.push_str("  \"shard_counts\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"measured_steps_per_sec\": {:.1}, \
             \"modelled_steps_per_sec\": {:.1}}}{}\n",
            r.shards,
            r.measured,
            r.modelled,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_1_to_{max_shards}\": {speedup:.3},\n  \"min_speedup\": {MIN_SPEEDUP}\n}}\n"
    ));
    let path = "BENCH_shard.json";
    std::fs::write(path, &json).expect("write BENCH_shard.json");
    println!("wrote {path}");

    assert!(
        speedup >= MIN_SPEEDUP,
        "sharding regression: {max_shards} shards only {speedup:.2}x faster than 1 \
         ({gate_mode}; gate ≥ {MIN_SPEEDUP}x)"
    );
}
