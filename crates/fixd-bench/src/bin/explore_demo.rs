//! Work-stealing exploration benchmark: the frontier engine vs the
//! serial `Explorer` on a compute-heavy guarded system, plus the
//! content-hash dedup story and the adaptive-vs-uniform campaign seed
//! search.
//!
//! Three claims, three gates:
//!
//! * **determinism** — at every worker count the engine must report the
//!   serial explorer's exact state count, transition count, max depth,
//!   and violation verdicts `(depth, end fingerprint, invariant)`.
//!   Asserted directly; a speedup that changes the verdict is worthless.
//! * **throughput** — 8 workers must explore ≥ 2x faster than 1
//!   (`MIN_SPEEDUP`). On hosts with ≥ 8 cores the gate uses measured
//!   wall-clock states/sec; on smaller hosts the wall clock cannot show
//!   the speedup, so the gate falls back to the **modelled** rate
//!   `serial_rate / max_share` from [`FrontierMetrics`] — the busiest
//!   worker's share of processed nodes, i.e. the load balance the
//!   stealing actually achieved, which preemption cannot distort. The
//!   JSON labels which mode gated.
//! * **adaptive ≥ uniform** — on the seeded detection sweep (the buggy
//!   kvstore column among quiet ones), adaptive seed search must find at
//!   least as many violations as uniform allocation of the same budget.
//!
//! Emits `BENCH_explore.json`; exits non-zero on gate failure (the CI
//! bench job runs this).
//!
//! Run: `cargo run -p fixd-bench --bin explore_demo --release`

use std::hint::black_box;
use std::time::Instant;

use fixd_campaign::{
    kvstore_app, kvstore_buggy_app, run_adaptive, run_uniform, standard_cases, AdaptiveConfig,
    CampaignSpec,
};
use fixd_investigator::{
    explore_frontier, ExploreConfig, ExploreReport, Explorer, FingerprintStore, GuardedSystem,
    GuardedSystemBuilder, Invariant, PagedStateStore, StealQueue, TransitionSystem,
};
use fixd_runtime::wire::fnv_mix;

/// Counter caps: the space is Π(cap+1) = 9^4 = 6561 states.
const CAP: u8 = 8;
const DIMS: usize = 4;
/// Deterministic compute per generated successor — the "next-state
/// function" cost being parallelized.
const WORK_ITERS: u64 = 1_200;
/// Worker counts swept; the gate compares the first and last.
const WORKER_COUNTS: &[usize] = &[1, 2, 4, 8];
/// Timed rounds per worker count; the median rate is reported.
const ROUNDS: usize = 3;
/// Gate: 8 workers must beat 1 worker by at least this factor.
const MIN_SPEEDUP: f64 = 2.0;
/// Seed-search budget (cells) spent by each strategy.
const SEARCH_BUDGET: usize = 36;

/// Per-successor hash burn (pure; result is only black_boxed).
fn burn(s: &[u8; DIMS]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..WORK_ITERS {
        h = fnv_mix(h, i);
        for &b in s {
            h = fnv_mix(h, u64::from(b));
        }
    }
    h
}

/// The benchmark system: DIMS bounded counters, every increment paying
/// `WORK_ITERS` of hash work, with one violating corner state at depth
/// `DIMS * CAP` (so verdict equality is exercised, not just counts).
fn work_grid() -> GuardedSystem<[u8; DIMS]> {
    let mut b = GuardedSystemBuilder::new([0u8; DIMS]);
    for i in 0..DIMS {
        b = b.action(
            &format!("inc{i}"),
            move |s: &[u8; DIMS]| s[i] < CAP,
            move |s| {
                black_box(burn(s));
                s[i] += 1;
            },
        );
    }
    b.build()
}

fn corner_invariant() -> Invariant<[u8; DIMS]> {
    Invariant::new("corner", |s: &[u8; DIMS]| *s != [CAP; DIMS])
}

/// Canonical verdict set: sorted (depth, end fingerprint, invariant).
fn verdicts(
    r: &ExploreReport<fixd_investigator::guarded::GuardedLabel>,
) -> Vec<(usize, u64, String)> {
    let mut v: Vec<_> = r
        .violations
        .iter()
        .map(|t| (t.depth, t.end_fingerprint, t.violation.clone()))
        .collect();
    v.sort();
    v
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

struct WorkerResult {
    workers: usize,
    measured: f64,
    modelled: f64,
    max_share: f64,
    steals: u64,
}

fn main() {
    let sys = work_grid();
    let cfg = ExploreConfig::default();

    // Serial reference: the authority on states, transitions, and
    // verdicts — and the 1.0-share baseline for the modelled gate.
    let t0 = Instant::now();
    let serial = Explorer::new(&sys, cfg.clone())
        .invariant(corner_invariant())
        .run();
    let serial_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let serial_rate = serial.states as f64 / serial_secs;
    let serial_verdicts = verdicts(&serial);
    assert_eq!(serial.states, 9usize.pow(DIMS as u32), "space size");
    assert_eq!(serial_verdicts.len(), 1, "one corner violation");

    // Warm-up — not measured.
    {
        let store = FingerprintStore::new(|s: &[u8; DIMS]| sys.fingerprint(s));
        let queue = StealQueue::new(2);
        black_box(explore_frontier(
            &sys,
            &store,
            &queue,
            &[corner_invariant()],
            &cfg,
            2,
        ));
    }

    let mut results: Vec<WorkerResult> = Vec::new();
    for &workers in WORKER_COUNTS {
        let mut measured: Vec<f64> = Vec::new();
        let mut modelled: Vec<f64> = Vec::new();
        let mut max_share = 1.0f64;
        let mut steals = 0u64;
        for _ in 0..ROUNDS {
            let store = FingerprintStore::new(|s: &[u8; DIMS]| sys.fingerprint(s));
            let queue = StealQueue::new(workers);
            let t0 = Instant::now();
            let (report, metrics) =
                explore_frontier(&sys, &store, &queue, &[corner_invariant()], &cfg, workers);
            let secs = t0.elapsed().as_secs_f64().max(1e-9);

            // Determinism gate: byte-equal semantics at every count.
            assert_eq!(report.states, serial.states, "states at {workers} workers");
            assert_eq!(
                report.transitions, serial.transitions,
                "transitions at {workers} workers"
            );
            assert_eq!(
                report.max_depth_reached, serial.max_depth_reached,
                "depth at {workers} workers"
            );
            assert_eq!(
                verdicts(&report),
                serial_verdicts,
                "verdicts at {workers} workers"
            );

            measured.push(report.states as f64 / secs);
            let share = metrics.max_share();
            modelled.push(serial_rate / share.max(1e-9));
            max_share = share;
            steals = metrics.steals;
        }
        results.push(WorkerResult {
            workers,
            measured: median(&mut measured),
            modelled: median(&mut modelled),
            max_share,
            steals,
        });
    }

    // Content-hash dedup: the same space through the paged store — every
    // state encoded as a 64-byte image whose pages are interned in a
    // shared PageStore, so the visited set is content-addressed and
    // revisits are refcount bumps.
    let paged = PagedStateStore::with_page_size(
        fixd_store::PageStore::new(),
        |s: &[u8; DIMS], buf: &mut Vec<u8>| {
            // A redundant wide encoding (counters repeated across the
            // image) standing in for large real-world snapshots with
            // shared regions.
            for _ in 0..(64 / DIMS) {
                buf.extend_from_slice(s);
            }
        },
        16,
    );
    let queue = StealQueue::new(4);
    let (paged_report, paged_metrics) =
        explore_frontier(&sys, &paged, &queue, &[corner_invariant()], &cfg, 4);
    assert_eq!(paged_report.states, serial.states, "paged states");
    assert_eq!(
        paged_report.transitions, serial.transitions,
        "paged transitions"
    );
    let dedup = paged_metrics.dedup;
    let pages = paged.page_stats();
    // Every revisit of a known state must be a pure hash hit.
    assert_eq!(dedup.misses, serial.states as u64, "one miss per state");

    // Adaptive seed search vs uniform on the seeded detection sweep.
    let mut spec = CampaignSpec::new()
        .app(kvstore_app())
        .app(kvstore_buggy_app());
    for case in standard_cases() {
        if matches!(case.name, "clean" | "reorder" | "dup") {
            spec = spec.case(case);
        }
    }
    let search_cfg = AdaptiveConfig {
        total_budget: SEARCH_BUDGET,
        bootstrap: 2,
        batch: 3,
        ..AdaptiveConfig::default()
    };
    let adaptive = run_adaptive(&spec, &search_cfg);
    let uniform = run_uniform(&spec, &search_cfg);
    let gain = adaptive.violations as i64 - uniform.violations as i64;

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let max_workers = *WORKER_COUNTS.last().unwrap();
    let gate_mode = if cores >= max_workers {
        "measured"
    } else {
        "modelled"
    };
    let rate = |r: &WorkerResult| {
        if gate_mode == "measured" {
            r.measured
        } else {
            r.modelled
        }
    };
    let speedup = rate(&results[results.len() - 1]) / rate(&results[0]).max(1e-9);

    println!(
        "explore grid: {} states, {} transitions, {WORK_ITERS} work iters/successor, \
         {cores} cores → gating on {gate_mode} states/sec",
        serial.states, serial.transitions
    );
    println!("serial Explorer: {serial_rate:.0} states/sec");
    println!(
        "{:>8} {:>16} {:>16} {:>10} {:>8}",
        "workers", "measured st/s", "modelled st/s", "max share", "steals"
    );
    for r in &results {
        println!(
            "{:>8} {:>16.0} {:>16.0} {:>10.3} {:>8}",
            r.workers, r.measured, r.modelled, r.max_share, r.steals
        );
    }
    println!(
        "speedup 1 → {max_workers} workers ({gate_mode}): {speedup:.2}x (gate ≥ {MIN_SPEEDUP}x)"
    );
    println!(
        "paged dedup: {} hits / {} misses ({:.1}% hit rate), {} live pages, {} bytes deduped",
        dedup.hits,
        dedup.misses,
        100.0 * dedup.hit_rate(),
        pages.live_pages,
        pages.deduped_bytes
    );
    println!(
        "seed search ({SEARCH_BUDGET} cells each): adaptive {} violations vs uniform {} \
         (gain {gain:+})",
        adaptive.violations, uniform.violations
    );

    let mut json = String::from("{\n  \"bench\": \"explore\",\n");
    json.push_str(&format!(
        "  \"states\": {},\n  \"transitions\": {},\n  \"rounds\": {ROUNDS},\n  \
         \"cores\": {cores},\n  \"gate_mode\": \"{gate_mode}\",\n  \
         \"serial_states_per_sec\": {serial_rate:.1},\n",
        serial.states, serial.transitions
    ));
    json.push_str("  \"worker_counts\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"measured_states_per_sec\": {:.1}, \
             \"modelled_states_per_sec\": {:.1}, \"max_share\": {:.4}, \"steals\": {}}}{}\n",
            r.workers,
            r.measured,
            r.modelled,
            r.max_share,
            r.steals,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_1_to_{max_workers}\": {speedup:.3},\n  \"min_speedup\": {MIN_SPEEDUP},\n"
    ));
    json.push_str(&format!(
        "  \"dedup\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \
         \"live_pages\": {}, \"deduped_bytes\": {}}},\n",
        dedup.hits,
        dedup.misses,
        dedup.hit_rate(),
        pages.live_pages,
        pages.deduped_bytes
    ));
    json.push_str(&format!(
        "  \"adaptive\": {{\"budget\": {SEARCH_BUDGET}, \"adaptive_violations\": {}, \
         \"uniform_violations\": {}, \"adaptive_gain\": {gain}}}\n}}\n",
        adaptive.violations, uniform.violations
    ));
    let path = "BENCH_explore.json";
    std::fs::write(path, &json).expect("write BENCH_explore.json");
    println!("wrote {path}");

    assert!(
        speedup >= MIN_SPEEDUP,
        "work-stealing regression: {max_workers} workers only {speedup:.2}x faster than 1 \
         ({gate_mode}; gate ≥ {MIN_SPEEDUP}x)"
    );
    assert!(
        adaptive.violations >= uniform.violations,
        "adaptive seed search regression: {} violations vs uniform {} under the same \
         {SEARCH_BUDGET}-cell budget",
        adaptive.violations,
        uniform.violations
    );
}
