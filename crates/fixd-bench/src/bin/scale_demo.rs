//! Wide-world scale benchmark: a fixed 768-member Chord DHT (finger
//! lookups + stabilize rounds + crash/revive churn) embedded in worlds
//! of width 10^3 → 10^6. The member set, their ring, and every event
//! are **identical at every width** — members are pids `0..768`, the
//! ring oracle never consults `world_size()`, and the run asserts the
//! step counts match — so the sweep isolates exactly what world width
//! costs:
//!
//! * **throughput** — with sparse causality clocks and lazy process
//!   slots, stepping must not scale with width. Gate: steps/sec at
//!   10^5 processes within 2x of 10^3 (`MAX_SLOWDOWN`).
//! * **memory** — a dormant process is an 8-byte `Option<Box<_>>`
//!   slot. Gate: the marginal cost per added process between the two
//!   widest worlds stays under `MAX_IDLE_BYTES_PER_PROC` (64 B),
//!   measured by a counting global allocator.
//! * **arena residency** (reported, not gated) — the same workload on
//!   a sharded world at the widest width, with each shard's `StepArena`
//!   pool footprint (`ArenaStats::resident_bytes`) broken down per
//!   pool, so the 4096/1024/1024/1024 caps can be revisited with data.
//!
//! Emits `BENCH_scale.json` and exits non-zero on gate failure — the
//! CI `scale` job runs this, so million-process worlds are a gate, not
//! a claim.
//!
//! Run: `cargo run -p fixd-bench --bin scale_demo --release`

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use fixd_examples::chord::{chord_factory, ChordNode, ChordRing};
use fixd_runtime::{
    clock::INLINE_PAIRS, ArenaStats, EventKind, Pid, ShardedWorld, World, WorldConfig,
    EFF_POOL_CAP, MSG_POOL_CAP, RAND_POOL_CAP, REC_POOL_CAP,
};

/// Live (allocated − freed) heap bytes, maintained by [`Counting`].
static LIVE: AtomicUsize = AtomicUsize::new(0);

/// A counting wrapper over the system allocator so the benchmark can
/// read resident heap bytes portably (no /proc parsing, no estimates).
struct Counting;

// SAFETY: delegates every operation to `System` unchanged; only the
// byte counters are maintained on the side.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            LIVE.fetch_add(layout.size(), Ordering::Relaxed);
        }
        p
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            LIVE.fetch_add(layout.size(), Ordering::Relaxed);
        }
        p
    }
    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        System.dealloc(p, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let q = System.realloc(p, layout, new_size);
        if !q.is_null() {
            LIVE.fetch_add(new_size, Ordering::Relaxed);
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        }
        q
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Active Chord members (pids `0..MEMBERS`) — constant across widths.
const MEMBERS: usize = 768;
/// World widths swept. The throughput gate compares the first and the
/// second-to-last; the memory gate uses the marginal cost between the
/// last two.
const WIDTHS: &[usize] = &[1_000, 10_000, 100_000, 1_000_000];
/// Stabilize rounds per member.
const STABILIZE_ROUNDS: u32 = 6;
/// Lookups issued per member.
const LOOKUPS_PER_MEMBER: u32 = 6;
/// Members crashed (and later revived) by the churn schedule.
const CHURN_VICTIMS: usize = 8;
/// Step at which the victims crash / come back.
const CRASH_AT: u64 = 10_000;
const REVIVE_AT: u64 = 30_000;
/// Timed rounds per width; the median rate is reported.
const ROUNDS: usize = 3;
/// Gate: steps/sec at 10^5 must be within this factor of 10^3.
const MAX_SLOWDOWN: f64 = 2.0;
/// Gate: marginal heap bytes per added (idle) process.
const MAX_IDLE_BYTES_PER_PROC: f64 = 64.0;

/// Labels for the per-delivery clock-sparsity histogram: the nonzero
/// component count (`nnz`) of every delivered message's vector clock.
/// The first [`INLINE_PAIRS`] buckets are the allocation-free inline
/// cases; everything past them spilled to a heap vector.
const NNZ_LABELS: &[&str] = &["1", "2", "3", "4", "5-8", "9-16", "17-32", "33+"];

fn nnz_bucket(nnz: usize) -> usize {
    match nnz {
        0..=4 => nnz.saturating_sub(1),
        5..=8 => 4,
        9..=16 => 5,
        17..=32 => 6,
        _ => 7,
    }
}

/// Shards in the per-shard arena census leg at the widest world.
const ARENA_SHARDS: usize = 8;
/// Trace bound for the census leg: recycling only happens when the
/// world sees last references, i.e. on trace eviction — an unbounded
/// trace pins every shell and the pools (correctly) report ~0 resident
/// bytes. The bounded trace is the steady-state regime the pool caps
/// were sized for.
const ARENA_TRACE_CAP: usize = 4096;

struct RunResult {
    steps: u64,
    secs: f64,
    build_bytes: u64,
    lookups_ok: u64,
    lookups_bad: u64,
    arena: ArenaStats,
}

/// Build a width-`width` world with the 768-member Chord ring active
/// and every other process dormant, run it to quiescence with the
/// deterministic churn schedule, and report steps, time, and memory.
/// When `nnz_hist` is given, tally each delivered message's clock nnz
/// (the event stream is width-invariant, so one tallied run describes
/// every width).
fn run_once(width: usize, seed: u64, mut nnz_hist: Option<&mut [u64]>) -> RunResult {
    let members: Vec<Pid> = (0..MEMBERS as u32).map(Pid).collect();
    let ring = Arc::new(ChordRing::new(&members));

    let before = live_bytes();
    let mut w = World::new(WorldConfig::seeded(seed));
    w.add_lazy_processes(
        width,
        chord_factory(Arc::clone(&ring), STABILIZE_ROUNDS, LOOKUPS_PER_MEMBER),
    );
    for &m in &members {
        w.schedule_start(m);
    }
    let build_bytes = live_bytes().saturating_sub(before) as u64;

    let victims: Vec<Pid> = (0..CHURN_VICTIMS as u32)
        .map(|i| Pid((i + 1) * (MEMBERS as u32 / (CHURN_VICTIMS as u32 + 1))))
        .collect();

    let t0 = std::time::Instant::now();
    let mut steps = 0u64;
    while let Some(rec) = w.step() {
        black_box(&rec);
        if let Some(hist) = nnz_hist.as_deref_mut() {
            if let EventKind::Deliver { msg } = &rec.event.kind {
                hist[nnz_bucket(msg.vc.nnz())] += 1;
            }
        }
        steps += 1;
        if steps == CRASH_AT {
            for &v in &victims {
                w.crash_now(v);
            }
        }
        if steps == REVIVE_AT {
            for &v in &victims {
                w.revive(v);
                w.schedule_start(v);
            }
        }
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);

    assert!(
        w.materialized_procs() <= MEMBERS,
        "only members may materialize: {} > {MEMBERS}",
        w.materialized_procs()
    );
    let mut lookups_ok = 0u64;
    let mut lookups_bad = 0u64;
    for &m in &members {
        if let Some(node) = w.program::<ChordNode>(m) {
            lookups_ok += node.stats.ok;
            lookups_bad += node.stats.bad;
        }
    }
    RunResult {
        steps,
        secs,
        build_bytes,
        lookups_ok,
        lookups_bad,
        arena: w.arena_stats(),
    }
}

/// Run the same (churn-free) Chord workload on a [`ShardedWorld`] at
/// `width` and return the coordinator's and every shard's arena
/// counters after quiescence — the per-shard resident-bytes data that
/// informs the pool caps (4096/1024/1024/1024) at 10^6-wide worlds.
fn sharded_arena_census(width: usize, seed: u64) -> (ArenaStats, Vec<ArenaStats>) {
    let members: Vec<Pid> = (0..MEMBERS as u32).map(Pid).collect();
    let ring = Arc::new(ChordRing::new(&members));

    let mut cfg = WorldConfig::seeded(seed);
    cfg.trace_cap = Some(ARENA_TRACE_CAP);
    let mut w = ShardedWorld::new(cfg, ARENA_SHARDS);
    w.add_lazy_processes(
        width,
        chord_factory(Arc::clone(&ring), STABILIZE_ROUNDS, LOOKUPS_PER_MEMBER),
    );
    for &m in &members {
        w.schedule_start(m);
    }
    let report = w.run_to_quiescence(10_000_000);
    assert!(report.quiescent, "sharded census workload must drain");
    assert!(
        w.materialized_procs() <= MEMBERS,
        "only members may materialize in the sharded census"
    );
    (w.arena_stats(), w.shard_arena_stats())
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

struct WidthResult {
    width: usize,
    steps: u64,
    steps_per_sec: f64,
    build_bytes: u64,
    lookups_ok: u64,
    lookups_bad: u64,
    arena_resident: usize,
}

/// One arena's counters as a JSON object (fixed key order).
fn arena_json(a: &ArenaStats) -> String {
    format!(
        "{{\"msgs_pooled\": {}, \"records_pooled\": {}, \"effects_pooled\": {}, \
         \"randoms_pooled\": {}, \"msg_bytes\": {}, \"record_bytes\": {}, \
         \"effect_bytes\": {}, \"random_bytes\": {}, \"resident_bytes\": {}}}",
        a.msgs_pooled,
        a.records_pooled,
        a.effects_pooled,
        a.randoms_pooled,
        a.msg_bytes,
        a.record_bytes,
        a.effect_bytes,
        a.random_bytes,
        a.resident_bytes()
    )
}

fn main() {
    // Warm-up (page in code + allocator arenas) — not measured; it
    // doubles as the clock-sparsity census run.
    let mut nnz_hist = vec![0u64; NNZ_LABELS.len()];
    black_box(run_once(1_000, 1, Some(&mut nnz_hist)));

    let mut results: Vec<WidthResult> = Vec::new();
    for &width in WIDTHS {
        let mut rates: Vec<f64> = Vec::new();
        let mut last = None;
        for round in 0..ROUNDS {
            let r = run_once(width, 100 + round as u64, None);
            rates.push(r.steps as f64 / r.secs);
            last = Some(r);
        }
        let r = last.expect("rounds ran");
        results.push(WidthResult {
            width,
            steps: r.steps,
            steps_per_sec: median(&mut rates),
            build_bytes: r.build_bytes,
            lookups_ok: r.lookups_ok,
            lookups_bad: r.lookups_bad,
            arena_resident: r.arena.resident_bytes(),
        });
    }

    // Width invariance: the same workload must produce the same event
    // count at every width — otherwise the rate comparison is vacuous.
    for r in &results[1..] {
        assert_eq!(
            r.steps, results[0].steps,
            "event sequence must not depend on world width"
        );
    }
    for r in &results {
        assert!(
            r.lookups_ok > 0,
            "lookups must resolve at width {}",
            r.width
        );
        assert!(
            r.lookups_ok >= 10 * r.lookups_bad.max(1),
            "stale lookups must be rare at width {}: {} ok vs {} bad",
            r.width,
            r.lookups_ok,
            r.lookups_bad
        );
    }

    let narrow = &results[0];
    let wide = results
        .iter()
        .find(|r| r.width == 100_000)
        .expect("10^5 width in sweep");
    let slowdown = narrow.steps_per_sec / wide.steps_per_sec.max(1e-9);

    let (a, b) = (&results[results.len() - 2], &results[results.len() - 1]);
    let idle_bytes_per_proc =
        (b.build_bytes.saturating_sub(a.build_bytes)) as f64 / (b.width - a.width) as f64;

    println!(
        "chord scale: {MEMBERS} members, {} steps/run, churn {CHURN_VICTIMS} crash+revive",
        narrow.steps
    );
    println!(
        "{:>10} {:>14} {:>16} {:>12} {:>8}",
        "width", "steps/sec", "build bytes", "bytes/proc", "lookups"
    );
    for r in &results {
        println!(
            "{:>10} {:>14.0} {:>16} {:>12.1} {:>8}",
            r.width,
            r.steps_per_sec,
            r.build_bytes,
            r.build_bytes as f64 / r.width as f64,
            r.lookups_ok
        );
    }
    println!(
        "slowdown 10^3 → 10^5: {slowdown:.2}x (gate ≤ {MAX_SLOWDOWN}x)\n\
         marginal idle bytes/proc ({} → {}): {idle_bytes_per_proc:.2} \
         (gate < {MAX_IDLE_BYTES_PER_PROC})",
        a.width, b.width
    );

    let deliveries: u64 = nnz_hist.iter().sum();
    let inline_hits: u64 = nnz_hist[..INLINE_PAIRS].iter().sum();
    let inline_pct = 100.0 * inline_hits as f64 / deliveries.max(1) as f64;
    let hist_line = NNZ_LABELS
        .iter()
        .zip(&nnz_hist)
        .map(|(l, n)| format!("{l}:{n}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!(
        "clock nnz per delivery: {hist_line}\n\
         inline (≤{INLINE_PAIRS} pairs) covers {inline_pct:.1}% of deliveries"
    );

    // Per-shard arena census at the widest world: what the recycling
    // pools actually pin at 10^6 processes, shard by shard — the data
    // for revisiting the MSG/REC/EFF/RAND pool caps.
    let widest = *WIDTHS.last().expect("widths non-empty");
    let (coord_arena, shard_arenas) = sharded_arena_census(widest, 7);
    let shard_resident_total: usize = shard_arenas.iter().map(ArenaStats::resident_bytes).sum();
    let arena_total = coord_arena.resident_bytes() + shard_resident_total;
    assert!(
        arena_total > 0,
        "arena pools must retain shells after a {widest}-wide run"
    );
    println!(
        "arena census at width {widest} ({ARENA_SHARDS} shards, trace cap \
         {ARENA_TRACE_CAP}, caps msg={MSG_POOL_CAP} rec={REC_POOL_CAP} \
         eff={EFF_POOL_CAP} rand={RAND_POOL_CAP}):"
    );
    println!(
        "  coordinator: {} B ({} msgs, {} records pooled)",
        coord_arena.resident_bytes(),
        coord_arena.msgs_pooled,
        coord_arena.records_pooled
    );
    for (i, a) in shard_arenas.iter().enumerate() {
        println!(
            "  shard {i}: {} B (msg {} B, rec {} B, eff {} B, rand {} B)",
            a.resident_bytes(),
            a.msg_bytes,
            a.record_bytes,
            a.effect_bytes,
            a.random_bytes
        );
    }
    println!("  total resident: {arena_total} B");

    let mut json = String::from("{\n  \"bench\": \"scale\",\n");
    json.push_str(&format!(
        "  \"members\": {MEMBERS},\n  \"steps\": {},\n  \"rounds\": {ROUNDS},\n",
        narrow.steps
    ));
    json.push_str("  \"widths\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"processes\": {}, \"steps_per_sec\": {:.1}, \"build_bytes\": {}, \
             \"bytes_per_proc\": {:.2}, \"lookups_ok\": {}, \"lookups_bad\": {}, \
             \"arena_resident_bytes\": {}}}{}\n",
            r.width,
            r.steps_per_sec,
            r.build_bytes,
            r.build_bytes as f64 / r.width as f64,
            r.lookups_ok,
            r.lookups_bad,
            r.arena_resident,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"arena\": {{\n    \"width\": {widest},\n    \"shards\": {ARENA_SHARDS},\n    \
         \"trace_cap\": {ARENA_TRACE_CAP},\n    \
         \"pool_caps\": {{\"msgs\": {MSG_POOL_CAP}, \"records\": {REC_POOL_CAP}, \
         \"effects\": {EFF_POOL_CAP}, \"randoms\": {RAND_POOL_CAP}}},\n    \
         \"serial_resident_bytes\": {},\n    \"coordinator\": {},\n",
        results.last().map(|r| r.arena_resident).unwrap_or_default(),
        arena_json(&coord_arena)
    ));
    json.push_str("    \"per_shard\": [\n");
    for (i, a) in shard_arenas.iter().enumerate() {
        json.push_str(&format!(
            "      {}{}\n",
            arena_json(a),
            if i + 1 < shard_arenas.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "    ],\n    \"total_resident_bytes\": {arena_total}\n  }},\n"
    ));
    json.push_str(&format!(
        "  \"clock_nnz\": {{{}}},\n  \"inline_pairs\": {INLINE_PAIRS},\n  \
         \"inline_clock_pct\": {inline_pct:.1},\n",
        NNZ_LABELS
            .iter()
            .zip(&nnz_hist)
            .map(|(l, n)| format!("\"{l}\": {n}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "  \"slowdown_1e3_to_1e5\": {slowdown:.3},\n  \"max_slowdown\": {MAX_SLOWDOWN},\n  \
         \"idle_bytes_per_proc\": {idle_bytes_per_proc:.2},\n  \
         \"max_idle_bytes_per_proc\": {MAX_IDLE_BYTES_PER_PROC}\n}}\n"
    ));
    let path = "BENCH_scale.json";
    std::fs::write(path, &json).expect("write BENCH_scale.json");
    println!("wrote {path}");

    assert!(
        slowdown <= MAX_SLOWDOWN,
        "wide-world regression: 10^5 processes run {slowdown:.2}x slower than 10^3 \
         (gate ≤ {MAX_SLOWDOWN}x)"
    );
    assert!(
        idle_bytes_per_proc < MAX_IDLE_BYTES_PER_PROC,
        "dormant processes cost {idle_bytes_per_proc:.2} B each \
         (gate < {MAX_IDLE_BYTES_PER_PROC} B)"
    );
}
