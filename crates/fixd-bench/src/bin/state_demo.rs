//! Content-addressed state-store demo: the two storage claims of the
//! tentpole, measured and gated.
//!
//! 1. **Checkpoint dedup** — run the standard campaign matrix with every
//!    cell's Time Machine interning checkpoint pages into ONE shared
//!    [`PageStore`], and compare the store's resident footprint against
//!    the per-process baseline (each process's history deduplicated only
//!    against itself — what the pre-store `PagedImage` could do at
//!    best). Gate: ≥ 1.5x reduction.
//! 2. **Bounded scroll residency** — supervise a 10x-length run with
//!    scroll spilling enabled and sample the resident-entry-bytes curve.
//!    Gates: resident bytes stay below `threshold × width` at every
//!    sample, and the spilled store re-reads to byte-identical wire
//!    segments (same `encode_segment` output as a fully resident
//!    control run).
//!
//! Emits `BENCH_state.json` and exits non-zero when a gate fails, so the
//! CI `state-bench` step turns both claims into regressions tests.
//!
//! Run: `cargo run -p fixd-bench --bin state_demo --release`

use fixd_core::{Fixd, FixdConfig};
use fixd_runtime::{Context, Message, PageStore, Pid, Program, SharedDisk, World, WorldConfig};
use fixd_scroll::SpillConfig;

/// Minimum required cross-process/cross-cell dedup ratio.
const MIN_DEDUP_RATIO: f64 = 1.5;
/// Scroll spill threshold (bytes of resident entries per process).
const SPILL_THRESHOLD: usize = 4096;
/// Ring width for the long-run scroll measurement.
const RING: usize = 4;
/// Baseline hop count; the measured run is 10x this.
const BASE_HOPS: u64 = 200;

/// A long-running ring pump with a payload big enough that scroll
/// residency is dominated by entries, not fixed overhead.
struct Pump {
    count: u64,
}
impl Program for Pump {
    fn on_start(&mut self, ctx: &mut Context) {
        if ctx.pid() == Pid(0) {
            let mut payload = vec![0u8; 64];
            payload[..8].copy_from_slice(&(BASE_HOPS * 10).to_le_bytes());
            ctx.send(Pid(1), 1, payload);
        }
    }
    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        self.count += 1;
        let hops = u64::from_le_bytes(msg.payload[..8].try_into().unwrap());
        if hops > 0 {
            let mut payload = msg.payload.to_vec();
            payload[..8].copy_from_slice(&(hops - 1).to_le_bytes());
            let next = Pid(((ctx.pid().0 as usize + 1) % ctx.world_size()) as u32);
            ctx.send(next, 1, payload);
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        self.count.to_le_bytes().to_vec()
    }
    fn restore(&mut self, b: &[u8]) {
        self.count = u64::from_le_bytes(b.try_into().unwrap());
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Pump { count: self.count })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn pump_world(seed: u64) -> World {
    let mut w = World::new(WorldConfig::seeded(seed));
    for _ in 0..RING {
        w.add_process(Box::new(Pump { count: 0 }));
    }
    w
}

/// Part 1: the standard campaign matrix, one shared page store.
fn measure_dedup() -> (usize, usize, usize, f64) {
    let seeds: Vec<u64> = (0..5).collect();
    let spec = fixd_campaign::standard_matrix(&seeds);
    let shared = PageStore::new();
    // Keep every cell's supervisor alive so its checkpoints pin their
    // pages — the store footprint at the end is the real cost of holding
    // the whole matrix's checkpoint state at once.
    let mut supervisors = Vec::new();
    for cell in spec.cells() {
        let app = &spec.apps[cell.app];
        let case = &spec.cases[cell.case];
        let mut wcfg = WorldConfig::seeded(cell.seed);
        wcfg.net = case.net.clone();
        let mut world = (app.build)(wcfg);
        let n = world.num_procs();
        world.set_fault_plan((case.plan)(n, cell.seed));
        let mut cfg = FixdConfig::seeded(cell.seed);
        cfg.page_store = Some(shared.clone());
        let mut fixd = Fixd::new(n, cfg);
        for m in (app.monitors)() {
            fixd = fixd.monitor(m);
        }
        let out = fixd.supervise(&mut world, spec.max_steps);
        assert!(out.fault.is_none(), "standard matrix must stay clean");
        supervisors.push(fixd);
    }
    // Per-process baseline: each process history deduplicated against
    // itself only (the strongest layout the pre-store code could reach;
    // the historical identity-based COW held strictly more bytes, so
    // the reported ratio is conservative).
    let mut baseline = 0usize;
    for fixd in &mut supervisors {
        let tm = fixd.time_machine();
        for pid in 0..tm.width() as u32 {
            baseline += tm.store(Pid(pid)).unique_bytes();
        }
    }
    let shared_bytes = shared.unique_bytes();
    let ratio = baseline as f64 / shared_bytes.max(1) as f64;
    (supervisors.len(), baseline, shared_bytes, ratio)
}

/// Part 2: 10x-length supervised run with scroll spilling.
#[allow(clippy::type_complexity)]
fn measure_scroll() -> (u64, usize, usize, usize, usize, bool, Vec<(u64, usize)>) {
    let disk = SharedDisk::new();
    let mut cfg = FixdConfig::seeded(42);
    cfg.scroll_spill = Some(SpillConfig::new(disk.clone(), SPILL_THRESHOLD));
    let mut fixd = Fixd::new(RING, cfg);
    let mut world = pump_world(42);

    let mut control = Fixd::new(RING, FixdConfig::seeded(42));
    let mut control_world = pump_world(42);

    let mut curve = Vec::new();
    let mut resident_max = 0usize;
    let mut steps = 0u64;
    loop {
        let out = fixd.supervise(&mut world, 64);
        steps += out.steps;
        let resident = fixd.scroll().resident_bytes();
        resident_max = resident_max.max(resident);
        if curve.len() < 64 {
            curve.push((steps, resident));
        }
        if out.quiescent {
            break;
        }
    }
    while !control.supervise(&mut control_world, 4096).quiescent {}

    // The spilled store must re-read to the identical wire bytes.
    let mut wire_identical = true;
    for pid in 0..RING as u32 {
        if fixd.scroll().encode_segment(Pid(pid)) != control.scroll().encode_segment(Pid(pid)) {
            wire_identical = false;
        }
    }
    assert_eq!(
        fixd.scroll().total_entries(),
        control.scroll().total_entries()
    );
    (
        steps,
        resident_max,
        fixd.scroll().spilled_segments(),
        fixd.scroll().spilled_bytes(),
        fixd.scroll().resident_entries(),
        wire_identical,
        curve,
    )
}

fn main() {
    let t0 = std::time::Instant::now();
    let (cells, baseline_bytes, shared_bytes, dedup_ratio) = measure_dedup();
    let (
        steps,
        resident_max,
        spilled_segments,
        spilled_bytes,
        resident_entries,
        wire_identical,
        curve,
    ) = measure_scroll();
    let wall = t0.elapsed();
    let resident_bound = SPILL_THRESHOLD * RING;

    println!(
        "checkpoint dedup: {cells} cells, per-process baseline {baseline_bytes} B \
         -> shared store {shared_bytes} B ({dedup_ratio:.2}x)"
    );
    println!(
        "scroll residency: {steps} steps (10x run), resident max {resident_max} B \
         (bound {resident_bound} B), {spilled_segments} segments / {spilled_bytes} B spilled, \
         {resident_entries} entries resident, wire identical: {wire_identical}"
    );

    let curve_json: Vec<String> = curve.iter().map(|(s, b)| format!("[{s}, {b}]")).collect();
    let bench = format!(
        "{{\n  \"bench\": \"state\",\n  \"wall_ms\": {},\n  \"cells\": {},\n  \
         \"baseline_bytes\": {},\n  \"shared_bytes\": {},\n  \"dedup_ratio\": {:.3},\n  \
         \"min_dedup_ratio\": {:.1},\n  \"scroll_steps\": {},\n  \"spill_threshold\": {},\n  \
         \"width\": {},\n  \"resident_max\": {},\n  \"resident_bound\": {},\n  \
         \"resident_entries\": {},\n  \"spilled_segments\": {},\n  \"spilled_bytes\": {},\n  \
         \"wire_identical\": {},\n  \"resident_curve\": [{}]\n}}\n",
        wall.as_millis(),
        cells,
        baseline_bytes,
        shared_bytes,
        dedup_ratio,
        MIN_DEDUP_RATIO,
        steps,
        SPILL_THRESHOLD,
        RING,
        resident_max,
        resident_bound,
        resident_entries,
        spilled_segments,
        spilled_bytes,
        wire_identical,
        curve_json.join(", "),
    );
    let path = "BENCH_state.json";
    std::fs::write(path, &bench).expect("write BENCH_state.json");
    println!("wrote {path}");

    assert!(
        dedup_ratio >= MIN_DEDUP_RATIO,
        "cross-process checkpoint dedup {dedup_ratio:.2}x below the required {MIN_DEDUP_RATIO}x"
    );
    assert!(
        resident_max < resident_bound,
        "scroll resident bytes {resident_max} breached the bound {resident_bound}"
    );
    assert!(spilled_segments > 0, "the 10x run must have spilled");
    assert!(
        wire_identical,
        "spilled scroll segments must re-read to identical wire bytes"
    );
}
