//! Zero-copy payload demo: run the standard campaign matrix and measure
//! how many payload bytes are *physically copied* per delivered message
//! versus how many are *aliased* (shared `Arc<[u8]>` reference-count
//! bumps that, before the `Payload` refactor, were `Vec<u8>` memcpys).
//!
//! Emits `BENCH_payload.json` and **fails** (non-zero exit) if the
//! copied-bytes-per-delivered-message figure regresses above the
//! baseline, or if the before/after ratio drops below 2x — so the CI
//! `payload-bench` step turns the zero-copy property into a gate, not a
//! claim.
//!
//! Run: `cargo run -p fixd-bench --bin payload_demo --release`

use fixd_campaign::{run_campaign, standard_matrix};

/// Copied bytes per delivered message above which the bench fails.
/// Measured headroom: the standard matrix sits around 3–4 bytes/msg
/// (payloads are materialized once at send and split once per actual
/// corruption); the pre-refactor code paid the full payload on every
/// send, deliver, record, and checkpoint observation.
const MAX_COPIED_PER_DELIVERED: f64 = 8.0;

/// Minimum required reduction (modelled pre-refactor bytes / measured).
const MIN_RATIO: f64 = 2.0;

fn main() {
    let seeds: Vec<u64> = (0..16).collect();
    let spec = standard_matrix(&seeds);

    let t0 = std::time::Instant::now();
    let report = run_campaign(&spec);
    let wall = t0.elapsed();

    assert_eq!(report.total_cells(), spec.expected_cells());
    assert_eq!(report.violations(), 0, "standard matrix must stay clean");
    assert_eq!(report.check_failures(), 0, "app postconditions must hold");

    let delivered: u64 = report.cells.iter().map(|c| c.delivered).sum();
    let deliveries_per_sec = delivered as f64 / wall.as_secs_f64().max(1e-9);
    // Per-cell payload accounting (thread-local counters snapshotted by
    // each cell's world) summed over the matrix — exact for any worker
    // thread count, unlike the old process-global counters that forced a
    // single-threaded run. `copied` is what the zero-copy path still
    // pays (one materialization per send plus one CoW split per actual
    // corruption). `aliased` is what each observation point — delivery
    // duplication, trace records, scroll entries, in-flight checkpoint
    // capture — *would have copied* when `Message.payload` was `Vec<u8>`.
    let copied: u64 = report.cells.iter().map(|c| c.payload_copied).sum();
    let aliased: u64 = report.cells.iter().map(|c| c.payload_aliased).sum();
    let copied_per_msg = copied as f64 / delivered.max(1) as f64;
    let before_per_msg = (copied + aliased) as f64 / delivered.max(1) as f64;
    let ratio = before_per_msg / copied_per_msg.max(1e-9);

    println!("{}", report.summary());
    println!(
        "delivered: {delivered} msgs in {wall:.2?} ({deliveries_per_sec:.0}/sec)\n\
         payload bytes copied:  {} ({copied_per_msg:.2}/msg)\n\
         payload bytes aliased: {} (would-have-copied)\n\
         bytes/msg before {before_per_msg:.2} -> after {copied_per_msg:.2} ({ratio:.1}x reduction)",
        copied, aliased,
    );

    let bench = format!(
        "{{\n  \"bench\": \"payload\",\n  \"total_cells\": {},\n  \"delivered\": {},\n  \"wall_ms\": {},\n  \"deliveries_per_sec\": {:.1},\n  \"bytes_copied\": {},\n  \"bytes_aliased\": {},\n  \"bytes_copied_per_delivered\": {:.3},\n  \"bytes_before_per_delivered\": {:.3},\n  \"reduction_ratio\": {:.2},\n  \"max_copied_per_delivered\": {:.1},\n  \"min_ratio\": {:.1}\n}}\n",
        report.total_cells(),
        delivered,
        wall.as_millis(),
        deliveries_per_sec,
        copied,
        aliased,
        copied_per_msg,
        before_per_msg,
        ratio,
        MAX_COPIED_PER_DELIVERED,
        MIN_RATIO,
    );
    let path = "BENCH_payload.json";
    std::fs::write(path, &bench).expect("write BENCH_payload.json");
    println!("wrote {path}");

    assert!(
        copied_per_msg <= MAX_COPIED_PER_DELIVERED,
        "zero-copy regression: {copied_per_msg:.2} bytes copied per delivered message \
         (baseline {MAX_COPIED_PER_DELIVERED})"
    );
    assert!(
        ratio >= MIN_RATIO,
        "reduction ratio {ratio:.2}x below the required {MIN_RATIO}x"
    );
}
