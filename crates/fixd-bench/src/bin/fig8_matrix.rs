//! **Experiment F8** (paper Fig. 8): regenerate the characteristics
//! matrix of techniques and tools.
//!
//! Run: `cargo run -p fixd-bench --bin fig8_matrix`

fn main() {
    println!("Figure 8. The characteristics of the techniques and tools discussed in this paper.");
    println!();
    print!("{}", fixd_core::render_matrix());
    println!();
    println!("(√ = provides the service, − = does not; sections and cell values");
    println!(" reproduce the paper's Figure 8 exactly — see fixd-core::characteristics");
    println!(" for the per-row rationale, including why a tool's row is not simply");
    println!(" the union of its techniques' rows.)");
}
