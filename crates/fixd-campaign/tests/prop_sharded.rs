//! Property: a campaign cell run on a [`fixd_runtime::ShardedWorld`]
//! produces the **identical** [`fixd_campaign::CellOutcome`] as the
//! serial driver path at every shard count — under random heterogeneous
//! per-link latencies and random fault plans.
//!
//! This is the report-level half of the shard-equivalence property; the
//! StepRecord-level half lives in `fixd-runtime/tests/sharded_worlds.rs`.

use std::sync::Arc;

use fixd_campaign::{
    kvstore_app, run_cell, run_cell_sharded, token_ring_app, CampaignSpec, Cell, FaultCase,
    Pathology,
};
use fixd_runtime::{DeliveryPolicy, FaultPlan, NetworkConfig, Partition, Pid};
use proptest::prelude::*;

/// Build a one-app, one-case spec from random network/fault parameters.
/// The case mixes a jittery default policy with one concrete FIFO edge
/// and one wildcard RandomDelay column, so the per-edge conservative
/// window genuinely differs per link.
fn spec_for(
    app_idx: usize,
    base_min: u64,
    base_max: u64,
    fifo_latency: u64,
    wild_min: u64,
    fault_kind: u8,
) -> CampaignSpec {
    let net = NetworkConfig::jittery(base_min, base_max)
        .with_link(
            Some(Pid(0)),
            Some(Pid(1)),
            DeliveryPolicy::Fifo {
                latency: fifo_latency,
            },
        )
        .with_link(
            None,
            Some(Pid(2)),
            DeliveryPolicy::RandomDelay {
                min: wild_min,
                max: wild_min + 10,
            },
        );
    let mut case = FaultCase::net_only("prop-hetero", Pathology::Reorder, net);
    case.plan = match fault_kind {
        1 => Arc::new(|n, _seed| FaultPlan::none().crash(Pid(n as u32 - 1), 40)),
        2 => Arc::new(|n, _seed| {
            let left: Vec<Pid> = (0..n as u32 / 2).map(Pid).collect();
            let right: Vec<Pid> = (n as u32 / 2..n as u32).map(Pid).collect();
            FaultPlan::none().partition(30, Partition::split(n, &[&left, &right]), Some(90))
        }),
        _ => case.plan,
    };
    let app = if app_idx == 0 {
        token_ring_app()
    } else {
        kvstore_app()
    };
    CampaignSpec::new().app(app).case(case).seeds([0])
}

proptest! {
    // Each case is four full supervised runs of a real app; keep the
    // case count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cell_outcome_is_shard_count_invariant(
        seed in 0u64..1_000,
        app_idx in 0usize..2,
        base_min in 1u64..5,
        spread in 0u64..20,
        fifo_latency in 1u64..8,
        wild_min in 1u64..30,
        fault_kind in 0u8..3,
    ) {
        let spec = spec_for(
            app_idx,
            base_min,
            base_min + spread,
            fifo_latency,
            wild_min,
            fault_kind,
        );
        let cell = Cell { index: 0, app: 0, case: 0, seed };
        let serial = run_cell(&spec, &cell);
        for shards in [2usize, 4, 8] {
            let sharded = run_cell_sharded(&spec, &cell, shards);
            prop_assert_eq!(&serial, &sharded, "shards={}", shards);
        }
    }
}
