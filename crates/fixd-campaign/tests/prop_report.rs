//! Property: [`CampaignReport`] aggregation is completion-order
//! independent — shuffling the order in which cells finish (what thread
//! interleaving does in the real driver) produces the identical report,
//! byte for byte.

use fixd_campaign::{run_campaign_with_threads, standard_matrix, CampaignReport, CellOutcome};
use fixd_runtime::DetRng;
use proptest::prelude::*;

/// A deterministic pool of outcomes to permute: one real single-threaded
/// run of a small standard matrix (computed once, shared by all cases).
fn outcome_pool() -> &'static [CellOutcome] {
    static POOL: std::sync::OnceLock<Vec<CellOutcome>> = std::sync::OnceLock::new();
    POOL.get_or_init(|| {
        let spec = standard_matrix(&[3, 11]);
        run_campaign_with_threads(&spec, 1).cells
    })
}

/// Fisher–Yates with the workspace's deterministic RNG.
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = DetRng::derive(seed, 0x5E);
    for i in (1..items.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn report_aggregation_is_order_independent(shuffle_seed in 0u64..10_000) {
        let pool = outcome_pool();
        let baseline: Vec<(usize, CellOutcome)> =
            pool.iter().cloned().enumerate().collect();
        let mut permuted = baseline.clone();
        shuffle(&mut permuted, shuffle_seed);

        let a = CampaignReport::from_cells(baseline);
        let b = CampaignReport::from_cells(permuted);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.to_json(), b.to_json());
        prop_assert_eq!(a.summary(), b.summary());
    }
}
