//! Campaign specifications: the cartesian scenario matrix.
//!
//! A [`CampaignSpec`] is `apps × fault cases × seeds`, filtered by each
//! app's supported pathologies. Cells are enumerated in a stable order
//! (app-major, then case, then seed) so the driver's aggregation is
//! deterministic no matter how many threads execute it.

use std::sync::Arc;

use fixd_core::{DetectedFault, Monitor};
use fixd_runtime::{FaultPlan, NetworkConfig, ProcHost, World, WorldConfig};

/// Coarse label of what a fault case stresses; used for coverage
/// accounting in the report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pathology {
    /// No injected faults, default network.
    Clean,
    /// Crash-stop process failures.
    Crash,
    /// Probabilistic message loss.
    Loss,
    /// Probabilistic message duplication.
    Duplication,
    /// Latency jitter (message reordering).
    Reorder,
    /// In-flight payload corruption.
    Corruption,
    /// Timed network partitions.
    Partition,
}

impl Pathology {
    /// Stable lowercase name (used in JSON and summaries).
    pub fn as_str(self) -> &'static str {
        match self {
            Pathology::Clean => "clean",
            Pathology::Crash => "crash",
            Pathology::Loss => "loss",
            Pathology::Duplication => "duplication",
            Pathology::Reorder => "reorder",
            Pathology::Corruption => "corruption",
            Pathology::Partition => "partition",
        }
    }
}

/// Result of an app's post-run verdict over one cell.
#[derive(Clone, Debug, Default)]
pub struct CellCheck {
    /// `Some(reason)` when an app-specific postcondition failed.
    pub failure: Option<String>,
    /// App-specific counters (sorted by the app for stable output).
    pub metrics: Vec<(String, u64)>,
}

impl CellCheck {
    /// A passing verdict with metrics.
    pub fn pass(metrics: Vec<(String, u64)>) -> Self {
        Self {
            failure: None,
            metrics,
        }
    }

    /// A failing verdict.
    pub fn fail(reason: impl Into<String>, metrics: Vec<(String, u64)>) -> Self {
        Self {
            failure: Some(reason.into()),
            metrics,
        }
    }
}

/// Builds a world for one cell (the config already carries the cell's
/// seed and the case's network pathology).
pub type WorldFactory = Arc<dyn Fn(WorldConfig) -> World + Send + Sync>;
/// Populates any [`ProcHost`] with one cell's processes (`seed` is the
/// cell seed — scripts and workloads may derive from it). This is the
/// shard-capable entry point: the driver builds the serial *and* the
/// sharded world for a cell from the same closure, so the topologies
/// cannot drift apart.
pub type PopulateFn = Arc<dyn Fn(&mut dyn ProcHost, u64) + Send + Sync>;
/// Produces the app's fault monitors (fresh per cell).
pub type MonitorFactory = Arc<dyn Fn() -> Vec<Monitor> + Send + Sync>;
/// App-specific postcondition over the finished world.
pub type CheckFn =
    Arc<dyn Fn(&World, &FaultCase, Option<&DetectedFault>) -> CellCheck + Send + Sync>;
/// Builds the fault plan for a case, given world size and cell seed.
pub type PlanFn = Arc<dyn Fn(usize, u64) -> FaultPlan + Send + Sync>;

/// One application column of the matrix.
#[derive(Clone)]
pub struct AppSpec {
    /// Stable app name (appears in cells and coverage sets).
    pub name: &'static str,
    /// Pathologies this app's assertions are sound under.
    pub supports: &'static [Pathology],
    /// World builder (serial). Derived from [`AppSpec::populate`] when
    /// the app is built via [`AppSpec::from_populate`].
    pub build: WorldFactory,
    /// Host-agnostic process population — what lets the driver run the
    /// cell on a [`fixd_runtime::ShardedWorld`].
    pub populate: PopulateFn,
    /// Fault monitors supervised during the run.
    pub monitors: MonitorFactory,
    /// Post-run verdict.
    pub check: CheckFn,
}

impl AppSpec {
    /// Build an app column whose serial [`WorldFactory`] is derived from
    /// `populate`, so the serial and sharded constructions of a cell are
    /// the same code path by construction.
    pub fn from_populate(
        name: &'static str,
        supports: &'static [Pathology],
        populate: impl Fn(&mut dyn ProcHost, u64) + Send + Sync + 'static,
        monitors: MonitorFactory,
        check: CheckFn,
    ) -> Self {
        let populate: PopulateFn = Arc::new(populate);
        let p = Arc::clone(&populate);
        Self {
            name,
            supports,
            build: Arc::new(move |cfg: WorldConfig| {
                let seed = cfg.seed;
                let mut w = World::new(cfg);
                p(&mut w, seed);
                w
            }),
            populate,
            monitors,
            check,
        }
    }
}

/// One fault-scenario row of the matrix: a network pathology plus a
/// fault plan.
#[derive(Clone)]
pub struct FaultCase {
    /// Stable case name (appears in cells and summaries).
    pub name: &'static str,
    /// Coverage label.
    pub pathology: Pathology,
    /// Network behaviour for every cell of this case.
    pub net: NetworkConfig,
    /// Fault plan builder (`(world_size, seed)` → plan).
    pub plan: PlanFn,
    /// True when the case can never lose a message (no drops, no
    /// crashes, partitions that heal before traffic crosses them).
    /// App verdicts assert full liveness — not just safety — under
    /// lossless cases.
    pub lossless: bool,
    /// Secondary pathologies a combined case also stresses (e.g. a
    /// loss+dup case labels [`Pathology::Duplication`] primarily and
    /// `[Loss, Reorder]` here). Apps must support *all* labels to run
    /// the case, and coverage accounting counts every label.
    pub also: &'static [Pathology],
}

impl FaultCase {
    /// A case with no injected fault plan.
    pub fn net_only(name: &'static str, pathology: Pathology, net: NetworkConfig) -> Self {
        Self {
            name,
            pathology,
            net,
            plan: Arc::new(|_, _| FaultPlan::none()),
            lossless: false,
            also: &[],
        }
    }

    /// A case with a fault plan over the default network.
    pub fn planned(
        name: &'static str,
        pathology: Pathology,
        plan: impl Fn(usize, u64) -> FaultPlan + Send + Sync + 'static,
    ) -> Self {
        Self {
            name,
            pathology,
            net: NetworkConfig::default(),
            plan: Arc::new(plan),
            lossless: false,
            also: &[],
        }
    }

    /// Mark this case as lossless (builder style): apps additionally
    /// assert full completion, not just safety.
    pub fn lossless(mut self) -> Self {
        self.lossless = true;
        self
    }

    /// Attach secondary pathology labels (builder style).
    pub fn also(mut self, also: &'static [Pathology]) -> Self {
        self.also = also;
        self
    }

    /// Every pathology this case stresses: primary first, then the
    /// secondary labels.
    pub fn pathologies(&self) -> impl Iterator<Item = Pathology> + '_ {
        std::iter::once(self.pathology).chain(self.also.iter().copied())
    }

    /// Can `app` soundly run this case? Requires support for the
    /// primary *and* every secondary pathology.
    pub fn supported_by(&self, app: &AppSpec) -> bool {
        self.pathologies().all(|p| app.supports.contains(&p))
    }
}

/// One concrete cell of the matrix (indices into the spec's vectors).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Position in the spec's stable enumeration order.
    pub index: usize,
    /// Index into [`CampaignSpec::apps`].
    pub app: usize,
    /// Index into [`CampaignSpec::cases`].
    pub case: usize,
    /// The cell's world/supervision seed.
    pub seed: u64,
}

/// The full campaign: a cartesian scenario matrix plus run limits.
#[derive(Clone)]
pub struct CampaignSpec {
    /// Application columns.
    pub apps: Vec<AppSpec>,
    /// Fault-scenario rows.
    pub cases: Vec<FaultCase>,
    /// Seeds swept per (app, case) pair.
    pub seeds: Vec<u64>,
    /// Per-cell supervision budget.
    pub max_steps: u64,
}

impl CampaignSpec {
    /// An empty spec with the default step budget.
    pub fn new() -> Self {
        Self {
            apps: Vec::new(),
            cases: Vec::new(),
            seeds: Vec::new(),
            max_steps: 100_000,
        }
    }

    /// Add an app column (builder style).
    pub fn app(mut self, app: AppSpec) -> Self {
        self.apps.push(app);
        self
    }

    /// Add a fault-case row (builder style).
    pub fn case(mut self, case: FaultCase) -> Self {
        self.cases.push(case);
        self
    }

    /// Sweep these seeds (builder style).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Enumerate every cell in the stable order (app-major, then case,
    /// then seed), skipping unsupported (app, pathology) pairs.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::new();
        for (ai, app) in self.apps.iter().enumerate() {
            for (ci, case) in self.cases.iter().enumerate() {
                if !case.supported_by(app) {
                    continue;
                }
                for &seed in &self.seeds {
                    out.push(Cell {
                        index: out.len(),
                        app: ai,
                        case: ci,
                        seed,
                    });
                }
            }
        }
        out
    }

    /// Number of cells the matrix expands to. Campaign jobs compare the
    /// report's cell count against this so silently skipped sweeps fail
    /// loudly (the skip would have to happen in the *driver*; this count
    /// shares [`CampaignSpec::cells`] so the two cannot drift apart).
    pub fn expected_cells(&self) -> usize {
        self.cells().len()
    }
}

impl Default for CampaignSpec {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_app(name: &'static str, supports: &'static [Pathology]) -> AppSpec {
        AppSpec {
            name,
            supports,
            build: Arc::new(World::new),
            populate: Arc::new(|_, _| {}),
            monitors: Arc::new(Vec::new),
            check: Arc::new(|_, _, _| CellCheck::default()),
        }
    }

    #[test]
    fn cells_enumerate_in_stable_order_and_respect_support() {
        let spec = CampaignSpec::new()
            .app(dummy_app("a", &[Pathology::Clean, Pathology::Loss]))
            .app(dummy_app("b", &[Pathology::Clean]))
            .case(FaultCase::net_only(
                "clean",
                Pathology::Clean,
                NetworkConfig::default(),
            ))
            .case(FaultCase::net_only(
                "loss",
                Pathology::Loss,
                NetworkConfig::lossy(0.1),
            ))
            .seeds(0..3);
        let cells = spec.cells();
        assert_eq!(cells.len(), spec.expected_cells());
        assert_eq!(cells.len(), 9, "2+1 supported pairs × 3 seeds");
        // Stable, contiguous indices in app-major order.
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        assert_eq!((cells[0].app, cells[0].case, cells[0].seed), (0, 0, 0));
        assert_eq!((cells[8].app, cells[8].case, cells[8].seed), (1, 0, 2));
    }

    #[test]
    fn pathology_names_are_stable() {
        assert_eq!(Pathology::Clean.as_str(), "clean");
        assert_eq!(Pathology::Partition.as_str(), "partition");
    }
}
