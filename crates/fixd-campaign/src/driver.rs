//! The campaign driver: fan cells across cores, aggregate
//! deterministically.
//!
//! Cells are independent deterministic simulations, so the driver is an
//! embarrassingly parallel sharded work queue: scoped threads pull cell
//! indices from an atomic counter, run each cell to completion, and the
//! outcomes are re-sorted by spec index afterwards. The report is
//! therefore byte-identical for any thread count (see
//! `tests/campaign.rs::report_is_thread_count_invariant`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use fixd_core::{Fixd, FixdConfig};
use fixd_runtime::WorldConfig;

use crate::report::{CampaignReport, CellOutcome};
use crate::spec::{CampaignSpec, Cell};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "FIXD_CAMPAIGN_THREADS";

/// Parse a `FIXD_CAMPAIGN_THREADS` value: `Some(n)` only for a positive
/// integer (zero, overflow, garbage, and absence all fall back to
/// auto-detection). Delegates to [`fixd_core::knobs::parse_count`], the
/// same parser behind `FIXD_SHARDS`, so the two knobs accept identical
/// grammars.
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| fixd_core::knobs::parse_count(v).ok())
}

/// Worker threads used by [`run_campaign`]: `FIXD_CAMPAIGN_THREADS` if
/// set and positive, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    let env = std::env::var(THREADS_ENV).ok();
    parse_threads(env.as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    })
}

/// Run the whole matrix with [`default_threads`] workers.
pub fn run_campaign(spec: &CampaignSpec) -> CampaignReport {
    run_campaign_with_threads(spec, default_threads())
}

/// Run the whole matrix with an explicit worker count.
pub fn run_campaign_with_threads(spec: &CampaignSpec, threads: usize) -> CampaignReport {
    let cells = spec.cells();
    let threads = threads.clamp(1, cells.len().max(1));
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, CellOutcome)>> = Mutex::new(Vec::with_capacity(cells.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    local.push((i, run_cell(spec, cell)));
                }
                collected
                    .lock()
                    .expect("campaign worker poisoned the result lock")
                    .append(&mut local);
            });
        }
    });
    let outcomes = collected
        .into_inner()
        .expect("campaign worker poisoned the result lock");
    assert_eq!(
        outcomes.len(),
        cells.len(),
        "campaign driver lost cells: {} of {} completed",
        outcomes.len(),
        cells.len()
    );
    CampaignReport::from_cells(outcomes)
}

/// Execute one cell: build the world, install the case's fault plan,
/// supervise under the app's monitors, and render the outcome.
pub fn run_cell(spec: &CampaignSpec, cell: &Cell) -> CellOutcome {
    let app = &spec.apps[cell.app];
    let case = &spec.cases[cell.case];
    let mut cfg = WorldConfig::seeded(cell.seed);
    cfg.net = case.net.clone();
    let mut world = (app.build)(cfg);
    let n = world.num_procs();
    world.set_fault_plan((case.plan)(n, cell.seed));
    let mut fixd = Fixd::new(n, FixdConfig::seeded(cell.seed));
    for m in (app.monitors)() {
        fixd = fixd.monitor(m);
    }
    let out = fixd.supervise(&mut world, spec.max_steps);
    let check = (app.check)(&world, case, out.fault.as_ref());
    let net = world.stats();
    let sup = fixd.stats();
    // Exact per-cell payload accounting: the counters are thread-local
    // and this cell ran start-to-finish on this thread with no other
    // world interleaved, so the world's delta is the cell's delta.
    let pay = world.payload_stats();
    CellOutcome {
        app: app.name.to_string(),
        case: case.name.to_string(),
        pathology: case.pathology,
        also: case.also.to_vec(),
        seed: cell.seed,
        steps: out.steps,
        end_time: world.now(),
        quiescent: out.quiescent,
        violation: out.fault.map(|f| f.monitor),
        check_failure: check.failure,
        delivered: net.delivered,
        dropped: net.dropped,
        duplicated: net.duplicated,
        corrupted: net.corrupted,
        scroll_entries: sup.scroll_entries as u64,
        checkpoints: sup.checkpoints as u64,
        checkpoint_bytes: sup.checkpoint_bytes as u64,
        payload_copied: pay.copied,
        payload_aliased: pay.aliased,
        fingerprint: world.global_snapshot().fingerprint(),
        metrics: check.metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::standard_matrix;

    #[test]
    fn single_cell_runs_and_reports() {
        let spec = standard_matrix(&[1]);
        let cells = spec.cells();
        let out = run_cell(&spec, &cells[0]);
        assert!(out.steps > 0);
        assert!(out.quiescent);
        assert!(out.violation.is_none());
        assert!(out.check_failure.is_none(), "{:?}", out.check_failure);
    }

    #[test]
    fn driver_executes_every_cell_exactly_once() {
        let spec = standard_matrix(&[0, 1]);
        let report = run_campaign_with_threads(&spec, 3);
        assert_eq!(report.total_cells(), spec.expected_cells());
        // Spec enumeration order is preserved in the report.
        let cells = spec.cells();
        for (cell, out) in cells.iter().zip(&report.cells) {
            assert_eq!(spec.apps[cell.app].name, out.app);
            assert_eq!(spec.cases[cell.case].name, out.case);
            assert_eq!(cell.seed, out.seed);
        }
    }

    #[test]
    fn cells_report_exact_payload_accounting() {
        let spec = standard_matrix(&[3]);
        let report = run_campaign_with_threads(&spec, 4);
        // Every cell delivers mail, so every cell materialized payloads.
        for c in &report.cells {
            if c.delivered > 0 {
                assert!(
                    c.payload_copied > 0,
                    "{}/{} delivered {} msgs but copied 0 payload bytes",
                    c.app,
                    c.case,
                    c.delivered
                );
                assert!(
                    c.payload_aliased > c.payload_copied,
                    "observation points alias far more than the one send copy"
                );
            }
        }
        // Thread-local attribution makes the figures placement-invariant:
        // the same spec on one thread yields identical per-cell numbers.
        let single = run_campaign_with_threads(&spec, 1);
        for (a, b) in report.cells.iter().zip(&single.cells) {
            assert_eq!(a.payload_copied, b.payload_copied, "{}/{}", a.app, a.case);
            assert_eq!(a.payload_aliased, b.payload_aliased);
        }
    }

    #[test]
    fn thread_env_knob_parses() {
        // The pure parser (no process-env mutation: tests share it).
        assert_eq!(parse_threads(Some("3")), Some(3));
        assert_eq!(parse_threads(Some(" 12 ")), Some(12));
        assert_eq!(parse_threads(Some("0")), None, "zero falls back");
        assert_eq!(parse_threads(Some("-2")), None);
        assert_eq!(parse_threads(Some("many")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
        // Overflow is rejected, not wrapped: 2^64 > usize::MAX.
        assert_eq!(parse_threads(Some("18446744073709551616")), None);
        assert_eq!(parse_threads(Some("8 threads")), None);
        // And the fallback path always yields a usable worker count.
        assert!(default_threads() >= 1);
    }
}
