//! The campaign driver: fan cells across cores, aggregate
//! deterministically.
//!
//! Cells are independent deterministic simulations, so the driver is an
//! embarrassingly parallel sharded work queue: scoped threads pull cell
//! indices from an atomic counter, run each cell to completion, and the
//! outcomes are re-sorted by spec index afterwards. The report is
//! therefore byte-identical for any thread count (see
//! `tests/campaign.rs::report_is_thread_count_invariant`).
//!
//! ## Sharded cells
//!
//! With `FIXD_SHARDS` (or an explicit shard count) above 1, each cell
//! *executes* on a [`ShardedWorld`] and is then *supervised* by replaying
//! the captured step stream through the real [`Fixd`] loop on a serial
//! mirror world built from the same [`crate::spec::PopulateFn`]. The
//! Scroll, the Time Machine, the monitors and the payload ledger all see
//! exactly the step sequence the serial driver would have produced, so
//! the report is byte-identical to serial execution at any shard count —
//! `tests/campaign.rs` and the golden fixture pin this. Cells whose
//! supervision detects a fault (the serial run stops mid-stream) or
//! whose step budget is exhausted fall back to the canonical serial
//! path, keeping the equivalence unconditional.
//!
//! Worker threads are budgeted against the shard fan-out
//! ([`fixd_core::knobs::worker_budget`]): `threads × shards` never
//! exceeds the configured thread budget.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use fixd_core::{Fixd, FixdConfig};
use fixd_runtime::{ShardedWorld, World, WorldConfig};

use crate::report::{CampaignReport, CellOutcome};
use crate::spec::{CampaignSpec, Cell};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "FIXD_CAMPAIGN_THREADS";

/// Parse a `FIXD_CAMPAIGN_THREADS` value: `Some(n)` only for a positive
/// integer (zero, overflow, garbage, and absence all fall back to
/// auto-detection). Delegates to [`fixd_core::knobs::parse_count`], the
/// same parser behind `FIXD_SHARDS`, so the two knobs accept identical
/// grammars.
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| fixd_core::knobs::parse_count(v).ok())
}

/// Worker threads used by [`run_campaign`]: `FIXD_CAMPAIGN_THREADS` if
/// set and positive, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    let env = std::env::var(THREADS_ENV).ok();
    parse_threads(env.as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    })
}

/// Shards each cell executes on: the `FIXD_SHARDS` knob via
/// [`FixdConfig`] (the config's default is the knob's source of truth),
/// else 1 (inline serial execution).
pub fn default_shards() -> usize {
    FixdConfig::default().shards.max(1)
}

/// Run the whole matrix with [`default_threads`] workers and
/// [`default_shards`] shards per cell.
pub fn run_campaign(spec: &CampaignSpec) -> CampaignReport {
    run_campaign_sharded(spec, default_threads(), default_shards())
}

/// Run the whole matrix with an explicit worker count (shards per cell
/// still follow [`default_shards`], i.e. `FIXD_SHARDS`).
pub fn run_campaign_with_threads(spec: &CampaignSpec, threads: usize) -> CampaignReport {
    run_campaign_sharded(spec, threads, default_shards())
}

/// Run the whole matrix with explicit worker and per-cell shard counts.
///
/// `threads` is a *budget*: with `shards` worker threads inside every
/// cell, the outer pool is cut to `threads / shards` so the product
/// never oversubscribes the requested parallelism.
pub fn run_campaign_sharded(spec: &CampaignSpec, threads: usize, shards: usize) -> CampaignReport {
    let cells = spec.cells();
    let threads = fixd_core::knobs::worker_budget(threads, shards).clamp(1, cells.len().max(1));
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, CellOutcome)>> = Mutex::new(Vec::with_capacity(cells.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    local.push((i, run_cell_sharded(spec, cell, shards)));
                }
                collected
                    .lock()
                    .expect("campaign worker poisoned the result lock")
                    .append(&mut local);
            });
        }
    });
    let outcomes = collected
        .into_inner()
        .expect("campaign worker poisoned the result lock");
    assert_eq!(
        outcomes.len(),
        cells.len(),
        "campaign driver lost cells: {} of {} completed",
        outcomes.len(),
        cells.len()
    );
    CampaignReport::from_cells(outcomes)
}

/// Execute one cell: build the world, install the case's fault plan,
/// supervise under the app's monitors, and render the outcome.
pub fn run_cell(spec: &CampaignSpec, cell: &Cell) -> CellOutcome {
    let app = &spec.apps[cell.app];
    let case = &spec.cases[cell.case];
    let mut cfg = WorldConfig::seeded(cell.seed);
    cfg.net = case.net.clone();
    let mut world = (app.build)(cfg);
    let n = world.num_procs();
    world.set_fault_plan((case.plan)(n, cell.seed));
    let mut fixd = Fixd::new(n, FixdConfig::seeded(cell.seed));
    for m in (app.monitors)() {
        fixd = fixd.monitor(m);
    }
    let out = fixd.supervise(&mut world, spec.max_steps);
    let check = (app.check)(&world, case, out.fault.as_ref());
    let net = world.stats();
    let sup = fixd.stats();
    // Exact per-cell payload accounting: the counters are thread-local
    // and this cell ran start-to-finish on this thread with no other
    // world interleaved, so the world's delta is the cell's delta.
    let pay = world.payload_stats();
    CellOutcome {
        app: app.name.to_string(),
        case: case.name.to_string(),
        pathology: case.pathology,
        also: case.also.to_vec(),
        seed: cell.seed,
        steps: out.steps,
        end_time: world.now(),
        quiescent: out.quiescent,
        violation: out.fault.map(|f| f.monitor),
        check_failure: check.failure,
        delivered: net.delivered,
        dropped: net.dropped,
        duplicated: net.duplicated,
        corrupted: net.corrupted,
        scroll_entries: sup.scroll_entries as u64,
        checkpoints: sup.checkpoints as u64,
        checkpoint_bytes: sup.checkpoint_bytes as u64,
        payload_copied: pay.copied,
        payload_aliased: pay.aliased,
        fingerprint: world.global_snapshot().fingerprint(),
        metrics: check.metrics,
    }
}

/// Execute one cell on a [`ShardedWorld`] with `shards` workers, then
/// supervise the captured step stream on a serial mirror.
///
/// `shards <= 1` runs the cell inline via [`run_cell`] — the serial path
/// *is* the specification. Above 1:
///
/// 1. the cell's processes populate a sharded world (same
///    [`crate::spec::PopulateFn`], so identical pids/topology);
/// 2. the sharded executor runs to quiescence, capturing every step
///    record plus the acting process's post-state and vector clock;
/// 3. a serial mirror world replays that stream under the **real**
///    [`Fixd::supervise`] loop — Scroll entries, Time Machine
///    checkpoints and monitor evaluations are produced by the same code
///    the serial driver runs, over the same observable world;
/// 4. network and payload figures come from the sharded executor (whose
///    ledger compensates for serial-only clones), supervision figures
///    from the replay, and the fingerprint from the sharded world's
///    global snapshot.
///
/// Two outcomes force the canonical serial path instead: a step-budget
/// overrun (the sharded run may cut a window differently than a serial
/// step cap) and a detected fault (the serial run stops mid-stream, so
/// quiescent sharded state is not the state to report).
pub fn run_cell_sharded(spec: &CampaignSpec, cell: &Cell, shards: usize) -> CellOutcome {
    run_cell_sharded_timed(spec, cell, shards).0
}

/// Wall-clock decomposition of one cell run, for the campaign benchmark
/// (`campaign_demo`). On hosts with fewer cores than shards the wall
/// clock cannot exhibit a parallel speedup, so the bench gates on the
/// modelled figure `exec_secs + supervise_secs` — the run's own measured
/// per-shard busy time combined as a perfectly-scheduled parallel
/// machine would (the same convention as `BENCH_shard.json`).
#[derive(Clone, Copy, Debug)]
pub struct CellTiming {
    /// The execution phase: for sharded cells, the shard critical path
    /// plus the serial coordinator time from
    /// [`fixd_runtime::ShardTiming`]; for serial cells, the full
    /// measured wall clock (execution and supervision are one loop).
    pub exec_secs: f64,
    /// Measured replay-supervision time — serial in both modes, so it
    /// is counted at face value on top of the modelled parallel phase.
    /// Zero for serial cells (already inside `exec_secs`).
    pub supervise_secs: f64,
    /// The cell ran (or fell back to) the canonical serial path.
    pub serial: bool,
}

/// [`run_cell_sharded`] plus the cell's [`CellTiming`].
pub fn run_cell_sharded_timed(
    spec: &CampaignSpec,
    cell: &Cell,
    shards: usize,
) -> (CellOutcome, CellTiming) {
    let serial_timed = || {
        let t0 = std::time::Instant::now();
        let out = run_cell(spec, cell);
        let timing = CellTiming {
            exec_secs: t0.elapsed().as_secs_f64(),
            supervise_secs: 0.0,
            serial: true,
        };
        (out, timing)
    };
    if shards <= 1 {
        return serial_timed();
    }
    let app = &spec.apps[cell.app];
    let case = &spec.cases[cell.case];
    let mut cfg = WorldConfig::seeded(cell.seed);
    cfg.net = case.net.clone();
    let mut sw = ShardedWorld::new(cfg.clone(), shards);
    let mut mirror = World::new(cfg);
    {
        // One populate call spawns into both worlds: external resources
        // the closure creates (e.g. a `SharedDisk`) are shared between
        // executor and mirror, as they would be within one serial world.
        let mut host = fixd_runtime::DualHost::new(&mut sw, &mut mirror);
        (app.populate)(&mut host, cell.seed);
    }
    let n = sw.num_procs();
    sw.set_fault_plan((case.plan)(n, cell.seed));
    let (rep, stream) = sw.run_supervised(spec.max_steps);
    if !rep.quiescent {
        return serial_timed();
    }
    let t = sw.timing();
    let exec_secs = (t.coordinator + t.critical).as_secs_f64();
    let t_sup = std::time::Instant::now();
    mirror.begin_replay(stream);
    let mut fixd = Fixd::new(n, FixdConfig::seeded(cell.seed));
    for m in (app.monitors)() {
        fixd = fixd.monitor(m);
    }
    let out = fixd.supervise(&mut mirror, spec.max_steps);
    if out.fault.is_some() {
        return serial_timed();
    }
    let check = (app.check)(&mirror, case, out.fault.as_ref());
    let supervise_secs = t_sup.elapsed().as_secs_f64();
    let net = sw.stats();
    let sup = fixd.stats();
    // Payload accounting *after* replay supervision: the supervision-side
    // clones (peeked kinds, Scroll entries, Time Machine delivery log)
    // land on this thread and belong to the cell, exactly as they do on
    // the serial path.
    let pay = sw.payload_stats();
    let outcome = CellOutcome {
        app: app.name.to_string(),
        case: case.name.to_string(),
        pathology: case.pathology,
        also: case.also.to_vec(),
        seed: cell.seed,
        steps: out.steps,
        end_time: mirror.now(),
        quiescent: out.quiescent,
        violation: None,
        check_failure: check.failure,
        delivered: net.delivered,
        dropped: net.dropped,
        duplicated: net.duplicated,
        corrupted: net.corrupted,
        scroll_entries: sup.scroll_entries as u64,
        checkpoints: sup.checkpoints as u64,
        checkpoint_bytes: sup.checkpoint_bytes as u64,
        payload_copied: pay.copied,
        payload_aliased: pay.aliased,
        fingerprint: sw.global_snapshot().fingerprint(),
        metrics: check.metrics,
    };
    let timing = CellTiming {
        exec_secs,
        supervise_secs,
        serial: false,
    };
    (outcome, timing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::standard_matrix;

    #[test]
    fn single_cell_runs_and_reports() {
        let spec = standard_matrix(&[1]);
        let cells = spec.cells();
        let out = run_cell(&spec, &cells[0]);
        assert!(out.steps > 0);
        assert!(out.quiescent);
        assert!(out.violation.is_none());
        assert!(out.check_failure.is_none(), "{:?}", out.check_failure);
    }

    #[test]
    fn driver_executes_every_cell_exactly_once() {
        let spec = standard_matrix(&[0, 1]);
        let report = run_campaign_with_threads(&spec, 3);
        assert_eq!(report.total_cells(), spec.expected_cells());
        // Spec enumeration order is preserved in the report.
        let cells = spec.cells();
        for (cell, out) in cells.iter().zip(&report.cells) {
            assert_eq!(spec.apps[cell.app].name, out.app);
            assert_eq!(spec.cases[cell.case].name, out.case);
            assert_eq!(cell.seed, out.seed);
        }
    }

    #[test]
    fn cells_report_exact_payload_accounting() {
        let spec = standard_matrix(&[3]);
        let report = run_campaign_with_threads(&spec, 4);
        // Every cell delivers mail, so every cell materialized payloads.
        for c in &report.cells {
            if c.delivered > 0 {
                assert!(
                    c.payload_copied > 0,
                    "{}/{} delivered {} msgs but copied 0 payload bytes",
                    c.app,
                    c.case,
                    c.delivered
                );
                assert!(
                    c.payload_aliased > c.payload_copied,
                    "observation points alias far more than the one send copy"
                );
            }
        }
        // Thread-local attribution makes the figures placement-invariant:
        // the same spec on one thread yields identical per-cell numbers.
        let single = run_campaign_with_threads(&spec, 1);
        for (a, b) in report.cells.iter().zip(&single.cells) {
            assert_eq!(a.payload_copied, b.payload_copied, "{}/{}", a.app, a.case);
            assert_eq!(a.payload_aliased, b.payload_aliased);
        }
    }

    #[test]
    fn thread_env_knob_parses() {
        // The pure parser (no process-env mutation: tests share it).
        assert_eq!(parse_threads(Some("3")), Some(3));
        assert_eq!(parse_threads(Some(" 12 ")), Some(12));
        assert_eq!(parse_threads(Some("0")), None, "zero falls back");
        assert_eq!(parse_threads(Some("-2")), None);
        assert_eq!(parse_threads(Some("many")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
        // Overflow is rejected, not wrapped: 2^64 > usize::MAX.
        assert_eq!(parse_threads(Some("18446744073709551616")), None);
        assert_eq!(parse_threads(Some("8 threads")), None);
        // And the fallback path always yields a usable worker count.
        assert!(default_threads() >= 1);
    }
}
