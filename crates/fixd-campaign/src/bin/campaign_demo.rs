//! Campaign throughput demo: run the standard matrix wide, print the
//! deterministic summary, and emit `BENCH_campaign.json` so the perf
//! trajectory (cells/sec vs. core count) accumulates data points.
//!
//! The 560-cell matrix finishes in tens of milliseconds, so a single
//! round's `cells_per_sec` is mostly clock quantization noise. The demo
//! therefore runs several timed rounds and reports the **median**
//! rate — a stable figure CI can track — alongside the simulation-step
//! throughput (`steps_per_sec`) the allocation-free hot loop feeds.
//!
//! ## Sharded mode
//!
//! The second half benches the sharded cell driver on the *wide* matrix
//! ([`wide_matrix`]: one Chord column, many processes per cell — the
//! regime sharding targets) at shard counts 1 → 8, asserting the
//! outcomes stay identical and gating ≥ [`MIN_SPEEDUP`]x cell
//! throughput at 8 shards. On hosts with fewer than 8 cores the wall
//! clock cannot show a parallel speedup, so the gate falls back to the
//! **modelled** rate from [`fixd_campaign::CellTiming`] — the run's own
//! measured shard critical path + coordinator time, plus the (serial)
//! replay-supervision time, the same convention as `BENCH_shard.json`.
//! The JSON labels which mode gated.
//!
//! Run: `cargo run -p fixd-campaign --bin campaign_demo --release`

use fixd_campaign::{
    default_threads, run_campaign_with_threads, run_cell_sharded_timed, standard_matrix,
    wide_matrix_work, CellOutcome,
};

/// Timed rounds; the median rate is the reported figure.
const ROUNDS: usize = 7;
/// Processes per wide (Chord) cell in the sharded bench.
const WIDE_N: usize = 96;
/// Deterministic compute iterations each wide-cell delivery burns —
/// the handler-heavy regime sharding targets (cf. `shard_demo`'s
/// `WORK_ITERS`); the replay supervisor never re-executes handlers, so
/// this work parallelizes while supervision stays constant.
const WIDE_WORK: u64 = 2_000;
/// Seeds swept by the wide matrix (2 cases × seeds = cells).
const WIDE_SEEDS: &[u64] = &[0, 1];
/// Shard counts swept; the gate compares the first and last.
const SHARD_COUNTS: &[usize] = &[1, 2, 4, 8];
/// Timed rounds per shard count in the sharded bench.
const WIDE_ROUNDS: usize = 3;
/// Gate: 8 shards must beat 1 shard by at least this factor.
const MIN_SPEEDUP: f64 = 1.5;

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

struct ShardRow {
    shards: usize,
    measured: f64,
    modelled: f64,
}

/// Run every wide cell at `shards`, returning (outcomes, measured
/// cells/sec, modelled cells/sec) for one round.
fn wide_round(shards: usize) -> (Vec<CellOutcome>, f64, f64) {
    let spec = wide_matrix_work(WIDE_N, WIDE_SEEDS, WIDE_WORK);
    let cells = spec.cells();
    let t0 = std::time::Instant::now();
    let mut model_secs = 0.0;
    let mut outs = Vec::with_capacity(cells.len());
    for cell in &cells {
        let (out, t) = run_cell_sharded_timed(&spec, cell, shards);
        assert!(
            !t.serial || shards <= 1,
            "wide cell {}/{} fell back to the serial path at {shards} shards",
            out.app,
            out.case
        );
        model_secs += t.exec_secs + t.supervise_secs;
        outs.push(out);
    }
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    let n = cells.len() as f64;
    (outs, n / wall, n / model_secs.max(1e-9))
}

fn main() {
    let seeds: Vec<u64> = (0..16).collect();
    let spec = standard_matrix(&seeds);
    let expected = spec.expected_cells();
    let threads = default_threads();

    let mut cell_rates: Vec<f64> = Vec::with_capacity(ROUNDS);
    let mut step_rates: Vec<f64> = Vec::with_capacity(ROUNDS);
    let mut wall_ms: Vec<u128> = Vec::with_capacity(ROUNDS);
    let mut report = None;
    for _ in 0..ROUNDS {
        let t0 = std::time::Instant::now();
        let r = run_campaign_with_threads(&spec, threads);
        let wall = t0.elapsed();
        let secs = wall.as_secs_f64().max(1e-9);
        let steps: u64 = r.cells.iter().map(|c| c.steps).sum();
        cell_rates.push(r.total_cells() as f64 / secs);
        step_rates.push(steps as f64 / secs);
        wall_ms.push(wall.as_millis());
        if let Some(prev) = &report {
            assert_eq!(&r, prev, "campaign must be deterministic across rounds");
        }
        report = Some(r);
    }
    let report = report.expect("at least one round ran");
    let total_steps: u64 = report.cells.iter().map(|c| c.steps).sum();
    let cells_per_sec = median(&mut cell_rates);
    let steps_per_sec = median(&mut step_rates);

    println!("{}", report.summary());
    println!(
        "threads: {threads}, rounds: {ROUNDS}, wall per round: {wall_ms:?} ms\n\
         cells/sec (median): {cells_per_sec:.0}, steps/sec (median): {steps_per_sec:.0}"
    );
    assert_eq!(
        report.total_cells(),
        expected,
        "sweep regression: cells were silently skipped"
    );
    assert_eq!(report.violations(), 0, "standard matrix must stay clean");
    assert_eq!(report.check_failures(), 0, "app postconditions must hold");

    // ---- Sharded mode: wide cells, shard counts 1 → 8 ----------------

    // Warm-up — not measured.
    std::hint::black_box(wide_round(2));

    let wide_cells = wide_matrix_work(WIDE_N, WIDE_SEEDS, WIDE_WORK)
        .cells()
        .len();
    let mut rows: Vec<ShardRow> = Vec::new();
    let mut want: Option<Vec<CellOutcome>> = None;
    for &shards in SHARD_COUNTS {
        let mut measured: Vec<f64> = Vec::new();
        let mut modelled: Vec<f64> = Vec::new();
        for _ in 0..WIDE_ROUNDS {
            let (outs, m, md) = wide_round(shards);
            match &want {
                None => want = Some(outs),
                Some(w) => assert_eq!(
                    &outs, w,
                    "wide-cell outcomes drifted at {shards} shards — \
                     a speedup that changes the report is a bug"
                ),
            }
            measured.push(m);
            modelled.push(md);
        }
        rows.push(ShardRow {
            shards,
            measured: median(&mut measured),
            modelled: median(&mut modelled),
        });
    }

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let max_shards = *SHARD_COUNTS.last().unwrap();
    let gate_mode = if cores >= max_shards {
        "measured"
    } else {
        "modelled"
    };
    let rate = |r: &ShardRow| {
        if gate_mode == "measured" {
            r.measured
        } else {
            r.modelled
        }
    };
    let speedup = rate(&rows[rows.len() - 1]) / rate(&rows[0]).max(1e-9);

    println!(
        "wide cells: {wide_cells} × chord(n={WIDE_N}), {cores} cores → \
         gating on {gate_mode} cells/sec"
    );
    println!(
        "{:>7} {:>18} {:>18}",
        "shards", "measured cells/s", "modelled cells/s"
    );
    for r in &rows {
        println!("{:>7} {:>18.2} {:>18.2}", r.shards, r.measured, r.modelled);
    }
    println!(
        "speedup 1 → {max_shards} shards ({gate_mode}): {speedup:.2}x (gate ≥ {MIN_SPEEDUP}x)"
    );

    let walls: Vec<String> = wall_ms.iter().map(u128::to_string).collect();
    let mut bench = format!(
        "{{\n  \"bench\": \"campaign\",\n  \"total_cells\": {},\n  \"threads\": {},\n  \"rounds\": {},\n  \"wall_ms_per_round\": [{}],\n  \"cells_per_sec\": {:.1},\n  \"total_steps\": {},\n  \"steps_per_sec\": {:.1},\n  \"violations\": {},\n  \"check_failures\": {},\n  \"apps\": {},\n  \"pathologies\": {},\n",
        report.total_cells(),
        threads,
        ROUNDS,
        walls.join(", "),
        cells_per_sec,
        total_steps,
        steps_per_sec,
        report.violations(),
        report.check_failures(),
        report.apps_covered().len(),
        report.pathologies_covered().len(),
    );
    bench.push_str(&format!(
        "  \"sharded\": {{\n    \"app\": \"chord\",\n    \"procs_per_cell\": {WIDE_N},\n    \
         \"wide_cells\": {wide_cells},\n    \"rounds\": {WIDE_ROUNDS},\n    \
         \"cores\": {cores},\n    \"gate_mode\": \"{gate_mode}\",\n"
    ));
    bench.push_str("    \"shard_counts\": [\n");
    for (i, r) in rows.iter().enumerate() {
        bench.push_str(&format!(
            "      {{\"shards\": {}, \"measured_cells_per_sec\": {:.2}, \
             \"modelled_cells_per_sec\": {:.2}}}{}\n",
            r.shards,
            r.measured,
            r.modelled,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    bench.push_str("    ],\n");
    bench.push_str(&format!(
        "    \"speedup_1_to_{max_shards}\": {speedup:.3},\n    \
         \"min_speedup\": {MIN_SPEEDUP}\n  }}\n}}\n"
    ));
    let path = "BENCH_campaign.json";
    std::fs::write(path, &bench).expect("write BENCH_campaign.json");
    println!("wrote {path}");

    // The full deterministic report is the artifact campaign jobs diff.
    std::fs::write("BENCH_campaign_cells.json", report.to_json())
        .expect("write BENCH_campaign_cells.json");
    println!(
        "wrote BENCH_campaign_cells.json ({} cells)",
        report.total_cells()
    );

    assert!(
        speedup >= MIN_SPEEDUP,
        "sharded campaign regression: {max_shards} shards only {speedup:.2}x faster than \
         serial on wide cells ({gate_mode}; gate ≥ {MIN_SPEEDUP}x)"
    );
}
