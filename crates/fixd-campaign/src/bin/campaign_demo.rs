//! Campaign throughput demo: run the standard matrix wide, print the
//! deterministic summary, and emit `BENCH_campaign.json` so the perf
//! trajectory (cells/sec vs. core count) accumulates data points.
//!
//! Run: `cargo run -p fixd-campaign --bin campaign_demo --release`

use fixd_campaign::{default_threads, run_campaign_with_threads, standard_matrix};

fn main() {
    let seeds: Vec<u64> = (0..16).collect();
    let spec = standard_matrix(&seeds);
    let expected = spec.expected_cells();
    let threads = default_threads();

    let t0 = std::time::Instant::now();
    let report = run_campaign_with_threads(&spec, threads);
    let wall = t0.elapsed();

    println!("{}", report.summary());
    println!(
        "threads: {threads}, wall: {wall:.2?}, cells/sec: {:.0}",
        report.total_cells() as f64 / wall.as_secs_f64().max(1e-9)
    );
    assert_eq!(
        report.total_cells(),
        expected,
        "sweep regression: cells were silently skipped"
    );
    assert_eq!(report.violations(), 0, "standard matrix must stay clean");
    assert_eq!(report.check_failures(), 0, "app postconditions must hold");

    let bench = format!(
        "{{\n  \"bench\": \"campaign\",\n  \"total_cells\": {},\n  \"threads\": {},\n  \"wall_ms\": {},\n  \"cells_per_sec\": {:.1},\n  \"violations\": {},\n  \"check_failures\": {},\n  \"apps\": {},\n  \"pathologies\": {}\n}}\n",
        report.total_cells(),
        threads,
        wall.as_millis(),
        report.total_cells() as f64 / wall.as_secs_f64().max(1e-9),
        report.violations(),
        report.check_failures(),
        report.apps_covered().len(),
        report.pathologies_covered().len(),
    );
    let path = "BENCH_campaign.json";
    std::fs::write(path, &bench).expect("write BENCH_campaign.json");
    println!("wrote {path}");

    // The full deterministic report is the artifact campaign jobs diff.
    std::fs::write("BENCH_campaign_cells.json", report.to_json())
        .expect("write BENCH_campaign_cells.json");
    println!(
        "wrote BENCH_campaign_cells.json ({} cells)",
        report.total_cells()
    );
}
