//! Campaign throughput demo: run the standard matrix wide, print the
//! deterministic summary, and emit `BENCH_campaign.json` so the perf
//! trajectory (cells/sec vs. core count) accumulates data points.
//!
//! The 560-cell matrix finishes in tens of milliseconds, so a single
//! round's `cells_per_sec` is mostly clock quantization noise. The demo
//! therefore runs several timed rounds and reports the **median**
//! rate — a stable figure CI can track — alongside the simulation-step
//! throughput (`steps_per_sec`) the allocation-free hot loop feeds.
//!
//! Run: `cargo run -p fixd-campaign --bin campaign_demo --release`

use fixd_campaign::{default_threads, run_campaign_with_threads, standard_matrix};

/// Timed rounds; the median rate is the reported figure.
const ROUNDS: usize = 7;

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let seeds: Vec<u64> = (0..16).collect();
    let spec = standard_matrix(&seeds);
    let expected = spec.expected_cells();
    let threads = default_threads();

    let mut cell_rates: Vec<f64> = Vec::with_capacity(ROUNDS);
    let mut step_rates: Vec<f64> = Vec::with_capacity(ROUNDS);
    let mut wall_ms: Vec<u128> = Vec::with_capacity(ROUNDS);
    let mut report = None;
    for _ in 0..ROUNDS {
        let t0 = std::time::Instant::now();
        let r = run_campaign_with_threads(&spec, threads);
        let wall = t0.elapsed();
        let secs = wall.as_secs_f64().max(1e-9);
        let steps: u64 = r.cells.iter().map(|c| c.steps).sum();
        cell_rates.push(r.total_cells() as f64 / secs);
        step_rates.push(steps as f64 / secs);
        wall_ms.push(wall.as_millis());
        if let Some(prev) = &report {
            assert_eq!(&r, prev, "campaign must be deterministic across rounds");
        }
        report = Some(r);
    }
    let report = report.expect("at least one round ran");
    let total_steps: u64 = report.cells.iter().map(|c| c.steps).sum();
    let cells_per_sec = median(&mut cell_rates);
    let steps_per_sec = median(&mut step_rates);

    println!("{}", report.summary());
    println!(
        "threads: {threads}, rounds: {ROUNDS}, wall per round: {wall_ms:?} ms\n\
         cells/sec (median): {cells_per_sec:.0}, steps/sec (median): {steps_per_sec:.0}"
    );
    assert_eq!(
        report.total_cells(),
        expected,
        "sweep regression: cells were silently skipped"
    );
    assert_eq!(report.violations(), 0, "standard matrix must stay clean");
    assert_eq!(report.check_failures(), 0, "app postconditions must hold");

    let walls: Vec<String> = wall_ms.iter().map(u128::to_string).collect();
    let bench = format!(
        "{{\n  \"bench\": \"campaign\",\n  \"total_cells\": {},\n  \"threads\": {},\n  \"rounds\": {},\n  \"wall_ms_per_round\": [{}],\n  \"cells_per_sec\": {:.1},\n  \"total_steps\": {},\n  \"steps_per_sec\": {:.1},\n  \"violations\": {},\n  \"check_failures\": {},\n  \"apps\": {},\n  \"pathologies\": {}\n}}\n",
        report.total_cells(),
        threads,
        ROUNDS,
        walls.join(", "),
        cells_per_sec,
        total_steps,
        steps_per_sec,
        report.violations(),
        report.check_failures(),
        report.apps_covered().len(),
        report.pathologies_covered().len(),
    );
    let path = "BENCH_campaign.json";
    std::fs::write(path, &bench).expect("write BENCH_campaign.json");
    println!("wrote {path}");

    // The full deterministic report is the artifact campaign jobs diff.
    std::fs::write("BENCH_campaign_cells.json", report.to_json())
        .expect("write BENCH_campaign_cells.json");
    println!(
        "wrote BENCH_campaign_cells.json ({} cells)",
        report.total_cells()
    );
}
