//! # fixd-campaign — the parallel fault-injection campaign engine
//!
//! The paper's claim is statistical: the detect → diagnose → heal loop
//! must hold under *many* seeds, fault timings, and network pathologies,
//! not one lucky schedule. This crate turns that into a first-class
//! subsystem:
//!
//! * [`CampaignSpec`] — a cartesian scenario matrix: application columns
//!   ([`AppSpec`]) × fault-scenario rows ([`FaultCase`]: network
//!   pathology + [`fixd_runtime::FaultPlan`]) × seeds;
//! * [`run_campaign`] — fans cells across cores with scoped threads and
//!   a sharded work queue (`FIXD_CAMPAIGN_THREADS` overrides the worker
//!   count);
//! * [`CampaignReport`] — per-cell outcomes with violation counts,
//!   scroll/checkpoint stats, and app metrics, aggregated in spec order
//!   so the report (and its JSON) is byte-identical for any thread
//!   count;
//! * [`standard_matrix`] — all five example apps × crash, loss,
//!   duplication, reordering, corruption, and partition pathologies.
//!
//! ```
//! use fixd_campaign::{run_campaign_with_threads, standard_matrix};
//!
//! let spec = standard_matrix(&[1, 2]);
//! let report = run_campaign_with_threads(&spec, 2);
//! assert_eq!(report.total_cells(), spec.expected_cells());
//! assert_eq!(report.violations(), 0);
//! ```

pub mod adaptive;
pub mod apps;
pub mod driver;
pub mod report;
pub mod spec;

pub use adaptive::{run_adaptive, run_uniform, AdaptiveConfig, FamilyLedger, SearchOutcome};
pub use apps::{
    chord_app, chord_kv_app, kvstore_app, kvstore_buggy_app, kvstore_ck_app, pipeline_app,
    standard_cases, standard_matrix, standard_pathologies, token_ring_app, two_phase_commit_app,
    wal_counter_app, wide_matrix, wide_matrix_work,
};
pub use driver::{
    default_shards, default_threads, run_campaign, run_campaign_sharded, run_campaign_with_threads,
    run_cell, run_cell_sharded, run_cell_sharded_timed, CellTiming, THREADS_ENV,
};
pub use report::{CampaignReport, CellOutcome};
pub use spec::{AppSpec, CampaignSpec, Cell, CellCheck, FaultCase, Pathology, PopulateFn};
