//! Deterministic campaign reports.
//!
//! A [`CampaignReport`] aggregates per-cell outcomes into a stable,
//! thread-count-independent artifact: cells are keyed by their spec
//! index and sorted before any aggregate is computed, so a fixed spec
//! produces byte-identical JSON whether it ran on 1 thread or 64.

use std::collections::BTreeSet;

use crate::spec::Pathology;

/// Outcome of one matrix cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellOutcome {
    /// App name (from the spec).
    pub app: String,
    /// Fault-case name (from the spec).
    pub case: String,
    /// Primary coverage label of the case.
    pub pathology: Pathology,
    /// Secondary coverage labels (combined cases, e.g. loss+dup).
    pub also: Vec<Pathology>,
    /// The cell's seed.
    pub seed: u64,
    /// Events executed under supervision.
    pub steps: u64,
    /// Virtual time at the end of the run.
    pub end_time: u64,
    /// True if the world drained before the step budget.
    pub quiescent: bool,
    /// Name of the monitor that fired, if any.
    pub violation: Option<String>,
    /// App postcondition failure, if any.
    pub check_failure: Option<String>,
    /// Network counters.
    pub delivered: u64,
    pub dropped: u64,
    pub duplicated: u64,
    pub corrupted: u64,
    /// Scroll entries recorded while supervising this cell.
    pub scroll_entries: u64,
    /// Live Time Machine checkpoints at the end of the run.
    pub checkpoints: u64,
    /// Bytes held in checkpoint pages (after COW sharing).
    pub checkpoint_bytes: u64,
    /// Payload bytes physically copied while running this cell
    /// (per-world accounting; see `fixd_runtime::World::payload_stats`).
    pub payload_copied: u64,
    /// Payload bytes aliased (shared instead of copied) in this cell.
    pub payload_aliased: u64,
    /// Fingerprint of the final global state (replay anchor).
    pub fingerprint: u64,
    /// App-specific counters.
    pub metrics: Vec<(String, u64)>,
}

/// The aggregated, deterministic result of a campaign run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignReport {
    /// Per-cell outcomes in spec enumeration order.
    pub cells: Vec<CellOutcome>,
}

impl CampaignReport {
    /// Assemble from `(cell index, outcome)` pairs in *any* completion
    /// order; the report is identical for every permutation.
    pub fn from_cells(mut indexed: Vec<(usize, CellOutcome)>) -> Self {
        indexed.sort_by_key(|(i, _)| *i);
        for (pos, (i, _)) in indexed.iter().enumerate() {
            assert_eq!(
                *i, pos,
                "campaign cells skipped or duplicated (hole at index {pos})"
            );
        }
        Self {
            cells: indexed.into_iter().map(|(_, c)| c).collect(),
        }
    }

    /// Total cells executed.
    pub fn total_cells(&self) -> usize {
        self.cells.len()
    }

    /// Cells whose monitor fired.
    pub fn violations(&self) -> usize {
        self.cells.iter().filter(|c| c.violation.is_some()).count()
    }

    /// Cells whose app postcondition failed.
    pub fn check_failures(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.check_failure.is_some())
            .count()
    }

    /// Cells that drained before the step budget.
    pub fn quiescent_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.quiescent).count()
    }

    /// Distinct app names covered.
    pub fn apps_covered(&self) -> BTreeSet<&str> {
        self.cells.iter().map(|c| c.app.as_str()).collect()
    }

    /// Distinct pathologies covered (primary and secondary labels).
    pub fn pathologies_covered(&self) -> BTreeSet<Pathology> {
        self.cells
            .iter()
            .flat_map(|c| std::iter::once(c.pathology).chain(c.also.iter().copied()))
            .collect()
    }

    /// Sum of one metric across all cells carrying it.
    pub fn metric_total(&self, name: &str) -> u64 {
        self.cells
            .iter()
            .flat_map(|c| &c.metrics)
            .filter(|(k, _)| k == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Cells matching an `(app, case)` filter (empty string = any).
    pub fn select(&self, app: &str, case: &str) -> Vec<&CellOutcome> {
        self.cells
            .iter()
            .filter(|c| (app.is_empty() || c.app == app) && (case.is_empty() || c.case == case))
            .collect()
    }

    /// One-line human summary (printed by campaign jobs so regressions
    /// in cell counts are visible in CI logs).
    pub fn summary(&self) -> String {
        let paths: Vec<&str> = self
            .pathologies_covered()
            .into_iter()
            .map(Pathology::as_str)
            .collect();
        format!(
            "campaign: {} cells over {} apps, {} violations, {} check failures, {} quiescent, pathologies: [{}]",
            self.total_cells(),
            self.apps_covered().len(),
            self.violations(),
            self.check_failures(),
            self.quiescent_cells(),
            paths.join(", ")
        )
    }

    /// Serialize to JSON (hand-rolled: no serde in the offline build).
    /// Deterministic: field order is fixed, cells are in spec order, and
    /// no wall-clock data is included.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(self.cells.len() * 256 + 512);
        s.push_str("{\n");
        push_kv_u64(&mut s, 1, "total_cells", self.total_cells() as u64, true);
        push_kv_u64(&mut s, 1, "violations", self.violations() as u64, true);
        push_kv_u64(
            &mut s,
            1,
            "check_failures",
            self.check_failures() as u64,
            true,
        );
        push_kv_u64(
            &mut s,
            1,
            "quiescent_cells",
            self.quiescent_cells() as u64,
            true,
        );
        let apps: Vec<String> = self.apps_covered().into_iter().map(json_string).collect();
        s.push_str(&format!("  \"apps\": [{}],\n", apps.join(", ")));
        let paths: Vec<String> = self
            .pathologies_covered()
            .into_iter()
            .map(|p| json_string(p.as_str()))
            .collect();
        s.push_str(&format!("  \"pathologies\": [{}],\n", paths.join(", ")));
        for (key, total) in [
            (
                "delivered",
                self.cells.iter().map(|c| c.delivered).sum::<u64>(),
            ),
            ("dropped", self.cells.iter().map(|c| c.dropped).sum()),
            ("duplicated", self.cells.iter().map(|c| c.duplicated).sum()),
            ("corrupted", self.cells.iter().map(|c| c.corrupted).sum()),
            (
                "scroll_entries",
                self.cells.iter().map(|c| c.scroll_entries).sum(),
            ),
            (
                "checkpoints",
                self.cells.iter().map(|c| c.checkpoints).sum(),
            ),
        ] {
            push_kv_u64(&mut s, 1, key, total, true);
        }
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"app\": {}, ", json_string(&c.app)));
            s.push_str(&format!("\"case\": {}, ", json_string(&c.case)));
            s.push_str(&format!(
                "\"pathology\": {}, ",
                json_string(c.pathology.as_str())
            ));
            let also: Vec<String> = c.also.iter().map(|p| json_string(p.as_str())).collect();
            s.push_str(&format!("\"also\": [{}], ", also.join(", ")));
            s.push_str(&format!("\"seed\": {}, ", c.seed));
            s.push_str(&format!("\"steps\": {}, ", c.steps));
            s.push_str(&format!("\"end_time\": {}, ", c.end_time));
            s.push_str(&format!("\"quiescent\": {}, ", c.quiescent));
            s.push_str(&format!("\"violation\": {}, ", json_opt(&c.violation)));
            s.push_str(&format!(
                "\"check_failure\": {}, ",
                json_opt(&c.check_failure)
            ));
            s.push_str(&format!("\"delivered\": {}, ", c.delivered));
            s.push_str(&format!("\"dropped\": {}, ", c.dropped));
            s.push_str(&format!("\"duplicated\": {}, ", c.duplicated));
            s.push_str(&format!("\"corrupted\": {}, ", c.corrupted));
            s.push_str(&format!("\"scroll_entries\": {}, ", c.scroll_entries));
            s.push_str(&format!("\"checkpoints\": {}, ", c.checkpoints));
            s.push_str(&format!("\"checkpoint_bytes\": {}, ", c.checkpoint_bytes));
            s.push_str(&format!("\"payload_copied\": {}, ", c.payload_copied));
            s.push_str(&format!("\"payload_aliased\": {}, ", c.payload_aliased));
            s.push_str(&format!("\"fingerprint\": {}, ", c.fingerprint));
            let metrics: Vec<String> = c
                .metrics
                .iter()
                .map(|(k, v)| format!("{}: {}", json_string(k), v))
                .collect();
            s.push_str(&format!("\"metrics\": {{{}}}", metrics.join(", ")));
            s.push('}');
            if i + 1 < self.cells.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn push_kv_u64(s: &mut String, indent: usize, key: &str, v: u64, comma: bool) {
    s.push_str(&"  ".repeat(indent));
    s.push_str(&format!("\"{key}\": {v}"));
    if comma {
        s.push(',');
    }
    s.push('\n');
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub fn json_string(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for ch in raw.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt(v: &Option<String>) -> String {
    match v {
        Some(s) => json_string(s),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn outcome(i: u64) -> CellOutcome {
        CellOutcome {
            app: format!("app{}", i % 3),
            case: "clean".into(),
            pathology: Pathology::Clean,
            also: Vec::new(),
            seed: i,
            steps: 10 + i,
            end_time: 100,
            quiescent: true,
            violation: None,
            check_failure: None,
            delivered: i,
            dropped: 0,
            duplicated: 0,
            corrupted: 0,
            scroll_entries: i * 2,
            checkpoints: i,
            checkpoint_bytes: i * 64,
            payload_copied: i * 3,
            payload_aliased: i * 30,
            fingerprint: 0xFEED ^ i,
            metrics: vec![("m".into(), i)],
        }
    }

    #[test]
    fn from_cells_sorts_any_completion_order() {
        let a: Vec<(usize, CellOutcome)> = (0..6).map(|i| (i, outcome(i as u64))).collect();
        let mut b = a.clone();
        b.reverse();
        b.swap(1, 4);
        let ra = CampaignReport::from_cells(a);
        let rb = CampaignReport::from_cells(b);
        assert_eq!(ra, rb);
        assert_eq!(ra.to_json(), rb.to_json());
    }

    #[test]
    #[should_panic(expected = "skipped or duplicated")]
    fn holes_fail_loudly() {
        let cells = vec![(0, outcome(0)), (2, outcome(2))];
        let _ = CampaignReport::from_cells(cells);
    }

    #[test]
    fn aggregates_and_json_shape() {
        let r = CampaignReport::from_cells((0..4).map(|i| (i, outcome(i as u64))).collect());
        assert_eq!(r.total_cells(), 4);
        assert_eq!(r.violations(), 0);
        assert_eq!(r.metric_total("m"), 6);
        assert_eq!(r.apps_covered().len(), 3);
        let j = r.to_json();
        assert!(j.contains("\"total_cells\": 4"));
        assert!(j.contains("\"pathologies\": [\"clean\"]"));
        assert!(j.contains("\"metrics\": {\"m\": 3}"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    /// Strict inverse of [`json_string`], for round-trip testing only:
    /// panics on anything a conforming decoder would reject.
    fn json_unstring(s: &str) -> String {
        let inner = s
            .strip_prefix('"')
            .and_then(|t| t.strip_suffix('"'))
            .expect("quoted");
        let mut out = String::new();
        let mut it = inner.chars();
        while let Some(c) = it.next() {
            assert!((c as u32) >= 0x20, "raw control char leaked: {c:?}");
            if c != '\\' {
                out.push(c);
                continue;
            }
            match it.next().expect("dangling escape") {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = (0..4).map(|_| it.next().expect("short \\u")).collect();
                    let v = u32::from_str_radix(&code, 16).expect("hex escape");
                    out.push(char::from_u32(v).expect("scalar value"));
                }
                e => panic!("unknown escape \\{e}"),
            }
        }
        out
    }

    /// Satellite regression: app/case names (and failure strings) with
    /// quotes, backslashes, newlines, and raw control characters must
    /// encode to valid JSON and decode back byte-for-byte.
    #[test]
    fn json_string_round_trips_adversarial_names() {
        for raw in [
            "plain",
            "",
            "quo\"te",
            "back\\slash",
            "new\nline and\ttab\r",
            "\u{1}\u{1f}\u{7f}",
            "emoji 🦀 ünïcode",
            "pre-escaped-looking a\\\"b\\nc",
            "{\"json\": [\"inside\"]}",
        ] {
            let enc = json_string(raw);
            assert_eq!(json_unstring(&enc), raw, "round-trip broke for {raw:?}");
        }
    }

    /// A report whose names need escaping renders an artifact with no
    /// raw control characters and with every name recoverable.
    #[test]
    fn report_with_hostile_names_renders_and_round_trips() {
        let mut c = outcome(0);
        c.app = "app\"x\\y".into();
        c.case = "case\nz\t{".into();
        c.check_failure = Some("fail \"reason\"\n".into());
        c.metrics = vec![("k\"ey".into(), 7)];
        let r = CampaignReport::from_cells(vec![(0, c)]);
        let j = r.to_json();
        assert!(j.contains(&json_string("app\"x\\y")));
        assert!(j.contains(&json_string("case\nz\t{")));
        assert!(j.contains(&json_string("fail \"reason\"\n")));
        assert!(j.contains(&json_string("k\"ey")));
        // Only the structural newlines survive unescaped.
        assert!(!j.chars().any(|ch| (ch as u32) < 0x20 && ch != '\n'));
    }
}
