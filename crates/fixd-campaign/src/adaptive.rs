//! Adaptive seed search: spend the campaign budget where cells are
//! interesting.
//!
//! Uniform matrices give every `(app, case)` family the same number of
//! seeds, so most of the budget re-confirms quiet cells. The adaptive
//! searcher keeps a **coverage ledger** per family — novel end-state
//! fingerprints, violations, near-violations (failed checks and armed
//! detection metrics), and rare-pathology interleavings — and, after a
//! uniform bootstrap round, allocates each further seed batch to the
//! family with the highest interest-per-run. Everything is seeded and
//! tie-broken by family index, so for a given spec and budget the
//! outcome (and its JSON) is byte-deterministic; [`run_uniform`] spends
//! the identical budget round-robin with the identical per-family seed
//! sequences, making the two directly comparable.

use std::collections::HashSet;

use crate::driver::run_cell;
use crate::report::{json_string, CellOutcome};
use crate::spec::{CampaignSpec, Cell};

/// Knobs of one adaptive (or uniform) search.
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// Total cell runs to spend (both strategies use exactly this many,
    /// unless fewer than one bootstrap round fits).
    pub total_budget: usize,
    /// Seeds every family receives up front (the exploration floor —
    /// without it a family can starve before showing anything).
    pub bootstrap: usize,
    /// Seeds allocated per adaptive round to the current best family.
    pub batch: usize,
    /// Base of the deterministic per-family seed sequences.
    pub seed_base: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            total_budget: 48,
            bootstrap: 2,
            batch: 4,
            seed_base: 0x5EED_C0DE,
        }
    }
}

/// Per-family coverage ledger entry.
#[derive(Clone, Debug)]
pub struct FamilyLedger {
    /// Index into the spec's app list.
    pub app: usize,
    /// Index into the spec's case list.
    pub case: usize,
    /// App column name.
    pub app_name: String,
    /// Case row name.
    pub case_name: String,
    /// Seeds spent here.
    pub runs: u64,
    /// Monitor violations observed.
    pub violations: u64,
    /// Near-violations: failed cell checks, or armed detection metrics
    /// (`detected`/`bad`/`rejected` > 0) on runs without a violation.
    pub near: u64,
    /// Runs that ended in a previously unseen end-state fingerprint.
    pub novel: u64,
    /// Runs that produced a novel end state while stressing several
    /// pathologies at once (the case's secondary labels are non-empty) —
    /// the rare-interleaving signal.
    pub rare: u64,
    seen: HashSet<u64>,
}

impl FamilyLedger {
    /// Interest accumulated so far (the score numerator): violations
    /// weigh 3, near-violations 2, novel end states 1, rare
    /// interleavings 1.
    pub fn interest(&self) -> u64 {
        3 * self.violations + 2 * self.near + self.novel + self.rare
    }

    fn absorb(&mut self, out: &CellOutcome, rare_case: bool) {
        self.runs += 1;
        let violated = out.violation.is_some();
        if violated {
            self.violations += 1;
        } else {
            let armed = out
                .metrics
                .iter()
                .any(|(k, v)| *v > 0 && matches!(k.as_str(), "detected" | "bad" | "rejected"));
            if out.check_failure.is_some() || armed {
                self.near += 1;
            }
        }
        if self.seen.insert(out.fingerprint) {
            self.novel += 1;
            if rare_case {
                self.rare += 1;
            }
        }
    }
}

/// What one search strategy found with its budget.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// `"adaptive"` or `"uniform"`.
    pub strategy: String,
    /// The configured budget.
    pub budget: usize,
    /// Runs actually executed (== budget unless the spec is empty).
    pub runs: u64,
    /// Total monitor violations found.
    pub violations: u64,
    /// Total near-violations.
    pub near: u64,
    /// Distinct end-state fingerprints across all families.
    pub distinct_end_states: usize,
    /// Final per-family ledgers, in spec family order.
    pub families: Vec<FamilyLedger>,
}

impl SearchOutcome {
    /// Deterministic JSON rendering (same discipline as the campaign
    /// report: fixed key order, no floats that depend on timing).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"strategy\": {},\n  \"budget\": {},\n  \"runs\": {},\n  \"violations\": {},\n  \"near_violations\": {},\n  \"distinct_end_states\": {},\n  \"families\": [",
            json_string(&self.strategy),
            self.budget,
            self.runs,
            self.violations,
            self.near,
            self.distinct_end_states,
        );
        for (i, f) in self.families.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{\"app\": {}, \"case\": {}, \"runs\": {}, \"violations\": {}, \"near\": {}, \"novel\": {}, \"rare\": {}}}",
                if i == 0 { "" } else { "," },
                json_string(&f.app_name),
                json_string(&f.case_name),
                f.runs,
                f.violations,
                f.near,
                f.novel,
                f.rare,
            );
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// splitmix64 — the deterministic per-family seed sequence.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The `k`-th seed of family `f`: shared between strategies so runs
/// overlap exactly where allocations overlap.
fn family_seed(base: u64, family: usize, k: u64) -> u64 {
    mix64(base ^ mix64(family as u64 + 1) ^ k.wrapping_mul(0xA5A5_A5A5_A5A5_A5A5))
}

/// The supported `(app, case)` families of a spec, in stable app-major
/// order (the adaptive tie-break order).
fn families(spec: &CampaignSpec) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (ai, app) in spec.apps.iter().enumerate() {
        for (ci, case) in spec.cases.iter().enumerate() {
            if case.supported_by(app) {
                out.push((ai, ci));
            }
        }
    }
    out
}

fn fresh_ledgers(spec: &CampaignSpec) -> Vec<FamilyLedger> {
    families(spec)
        .into_iter()
        .map(|(app, case)| FamilyLedger {
            app,
            case,
            app_name: spec.apps[app].name.to_string(),
            case_name: spec.cases[case].name.to_string(),
            runs: 0,
            violations: 0,
            near: 0,
            novel: 0,
            rare: 0,
            seen: HashSet::new(),
        })
        .collect()
}

fn run_one(spec: &CampaignSpec, cfg: &AdaptiveConfig, ledger: &mut FamilyLedger, index: usize) {
    let cell = Cell {
        index,
        app: ledger.app,
        case: ledger.case,
        seed: family_seed(
            cfg.seed_base,
            ledger.app * spec.cases.len() + ledger.case,
            ledger.runs,
        ),
    };
    let rare_case = !spec.cases[ledger.case].also.is_empty();
    let out = run_cell(spec, &cell);
    ledger.absorb(&out, rare_case);
}

fn finish(strategy: &str, cfg: &AdaptiveConfig, ledgers: Vec<FamilyLedger>) -> SearchOutcome {
    let mut all = HashSet::new();
    for l in &ledgers {
        all.extend(l.seen.iter().copied());
    }
    SearchOutcome {
        strategy: strategy.to_string(),
        budget: cfg.total_budget,
        runs: ledgers.iter().map(|l| l.runs).sum(),
        violations: ledgers.iter().map(|l| l.violations).sum(),
        near: ledgers.iter().map(|l| l.near).sum(),
        distinct_end_states: all.len(),
        families: ledgers,
    }
}

/// Spend `cfg.total_budget` runs adaptively: a `cfg.bootstrap`-deep
/// uniform round first, then repeated `cfg.batch`-sized allocations to
/// the family with the highest interest-per-run (ties: lowest family
/// index). Deterministic for a given spec + config.
pub fn run_adaptive(spec: &CampaignSpec, cfg: &AdaptiveConfig) -> SearchOutcome {
    let mut ledgers = fresh_ledgers(spec);
    if ledgers.is_empty() {
        return finish("adaptive", cfg, ledgers);
    }
    let mut remaining = cfg.total_budget;
    let mut index = 0usize;
    'bootstrap: for _ in 0..cfg.bootstrap {
        for ledger in &mut ledgers {
            if remaining == 0 {
                break 'bootstrap;
            }
            run_one(spec, cfg, ledger, index);
            index += 1;
            remaining -= 1;
        }
    }
    while remaining > 0 {
        // argmax of interest/runs via cross-multiplication (exact, no
        // floats); unvisited families rank above everything.
        let mut best = 0usize;
        for f in 1..ledgers.len() {
            let (a, b) = (&ledgers[f], &ledgers[best]);
            let better = match (a.runs, b.runs) {
                (0, 0) => false, // keep lower index
                (0, _) => true,
                (_, 0) => false,
                _ => {
                    (a.interest() as u128) * (b.runs as u128)
                        > (b.interest() as u128) * (a.runs as u128)
                }
            };
            if better {
                best = f;
            }
        }
        for _ in 0..cfg.batch.min(remaining).max(1) {
            run_one(spec, cfg, &mut ledgers[best], index);
            index += 1;
            remaining -= 1;
        }
    }
    finish("adaptive", cfg, ledgers)
}

/// Spend the identical budget uniformly: round-robin over the families
/// with the same per-family seed sequences. The comparison baseline.
pub fn run_uniform(spec: &CampaignSpec, cfg: &AdaptiveConfig) -> SearchOutcome {
    let mut ledgers = fresh_ledgers(spec);
    if ledgers.is_empty() {
        return finish("uniform", cfg, ledgers);
    }
    let mut remaining = cfg.total_budget;
    let mut index = 0usize;
    while remaining > 0 {
        for ledger in &mut ledgers {
            if remaining == 0 {
                break;
            }
            run_one(spec, cfg, ledger, index);
            index += 1;
            remaining -= 1;
        }
    }
    finish("uniform", cfg, ledgers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{kvstore_app, kvstore_buggy_app, standard_cases};

    /// The seeded detection sweep: the buggy backup column against the
    /// clean control and the reordering case it is vulnerable to, plus
    /// the fixed kvstore as a quiet column soaking uniform budget.
    fn detection_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::new()
            .app(kvstore_app())
            .app(kvstore_buggy_app());
        for case in standard_cases() {
            if matches!(case.name, "clean" | "reorder" | "dup") {
                spec = spec.case(case);
            }
        }
        spec
    }

    fn cfg(budget: usize) -> AdaptiveConfig {
        AdaptiveConfig {
            total_budget: budget,
            bootstrap: 2,
            batch: 3,
            ..AdaptiveConfig::default()
        }
    }

    #[test]
    fn adaptive_beats_or_matches_uniform_on_detection_sweep() {
        let spec = detection_spec();
        let cfg = cfg(30);
        let adaptive = run_adaptive(&spec, &cfg);
        let uniform = run_uniform(&spec, &cfg);
        assert_eq!(adaptive.runs, 30);
        assert_eq!(uniform.runs, 30);
        assert!(
            adaptive.violations >= uniform.violations,
            "adaptive {} < uniform {}",
            adaptive.violations,
            uniform.violations
        );
        // The budget visibly concentrated on the hot family
        // (kvstore_buggy x reorder).
        let hot = adaptive
            .families
            .iter()
            .find(|f| f.app_name == "kvstore_buggy" && f.case_name == "reorder")
            .expect("hot family present");
        let hot_uniform = uniform
            .families
            .iter()
            .find(|f| f.app_name == "kvstore_buggy" && f.case_name == "reorder")
            .unwrap();
        assert!(
            hot.runs > hot_uniform.runs,
            "adaptive {} runs vs uniform {} on the hot family",
            hot.runs,
            hot_uniform.runs
        );
    }

    #[test]
    fn deterministic_for_a_given_budget() {
        let spec = detection_spec();
        let cfg = cfg(18);
        let a = run_adaptive(&spec, &cfg);
        let b = run_adaptive(&spec, &cfg);
        assert_eq!(a.to_json(), b.to_json());
        let u1 = run_uniform(&spec, &cfg);
        let u2 = run_uniform(&spec, &cfg);
        assert_eq!(u1.to_json(), u2.to_json());
    }

    #[test]
    fn budget_respected_exactly() {
        let spec = detection_spec();
        for budget in [1usize, 5, 13] {
            let a = run_adaptive(&spec, &cfg(budget));
            assert_eq!(a.runs as usize, budget, "adaptive budget {budget}");
            let u = run_uniform(&spec, &cfg(budget));
            assert_eq!(u.runs as usize, budget, "uniform budget {budget}");
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let spec = detection_spec();
        let out = run_adaptive(&spec, &cfg(8));
        let json = out.to_json();
        assert!(json.contains("\"strategy\": \"adaptive\""));
        assert!(json.contains("\"families\": ["));
        assert!(json.contains("\"app\": \"kvstore_buggy\""));
    }
}
