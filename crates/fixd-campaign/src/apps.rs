//! The standard scenario matrix over the five example applications.
//!
//! Every app column carries its own safety postcondition (sound under
//! every pathology it opts into) plus liveness postconditions for the
//! cases marked [`FaultCase::lossless`] — the ones where nothing can be
//! lost. An app opts out of pathologies that break
//! its protocol assumptions — e.g. the token ring is not idempotent, so
//! network duplication would mint a second token and "violate" mutual
//! exclusion by design, which is the bug the *buggy* ring variant
//! already covers elsewhere.

use std::sync::Arc;

use fixd_examples::chord::ChordNode;
use fixd_examples::token_ring::RingNode;
use fixd_examples::two_phase_commit::{Coordinator, Participant};
use fixd_examples::wal_counter::WalCounter;
use fixd_examples::{chord, kvstore, pipeline, token_ring, two_phase_commit, wal_counter};
use fixd_runtime::{DeliveryPolicy, FaultPlan, NetworkConfig, Partition, Pid, SharedDisk, World};

use crate::spec::{
    AppSpec, CampaignSpec, CellCheck, FaultCase,
    Pathology::{self, Clean, Corruption, Crash, Duplication, Loss, Partition as Part, Reorder},
};

/// Split `n` processes into two halves (the standard partition shape).
fn half_split(n: usize) -> Partition {
    let first: Vec<Pid> = (0..n / 2).map(|i| Pid(i as u32)).collect();
    let second: Vec<Pid> = (n / 2..n).map(|i| Pid(i as u32)).collect();
    Partition::split(n, &[&first, &second])
}

/// The standard fault-case rows: crash × loss × dup × reorder ×
/// corruption × partition (early-heal and mid-run), plus the clean
/// control row and the combined loss+dup stressor.
///
/// The `partition-early-heal` window `[6, 9)` is chosen to miss every
/// send instant of the FIFO-latency-10 apps (sends land at t ∈ {0, 5,
/// 10, 20, ...}), so the partition heals before any message would cross
/// it: the run must then complete exactly like the clean one —
/// the heal-after-merge property.
pub fn standard_cases() -> Vec<FaultCase> {
    vec![
        FaultCase::net_only("clean", Clean, NetworkConfig::default()).lossless(),
        FaultCase::planned("crash", Crash, |n, seed| {
            let victim = Pid((seed % n as u64) as u32);
            FaultPlan::none().crash(victim, 5 + (seed % 13) * 3)
        }),
        FaultCase::net_only("loss", Loss, NetworkConfig::lossy(0.1)),
        FaultCase::net_only("dup", Duplication, NetworkConfig::duplicating(0.2)).lossless(),
        FaultCase::net_only("reorder", Reorder, NetworkConfig::jittery(1, 50)).lossless(),
        FaultCase::net_only("corruption", Corruption, NetworkConfig::corrupting(0.25)),
        FaultCase::net_only(
            "loss+dup",
            Duplication,
            NetworkConfig {
                policy: DeliveryPolicy::RandomDelay { min: 1, max: 50 },
                drop_prob: 0.1,
                dup_prob: 0.2,
                ..NetworkConfig::default()
            },
        )
        .also(&[Loss, Reorder]),
        FaultCase::planned("partition-early-heal", Part, |n, _| {
            FaultPlan::none().partition(6, half_split(n), Some(9))
        })
        .lossless(),
        FaultCase::planned("partition-mid", Part, |n, _| {
            FaultPlan::none().partition(20, half_split(n), Some(60))
        }),
    ]
}

/// Token ring (4 correct nodes): mutual exclusion must hold under every
/// supported pathology; the full 3n+1 critical-section count under the
/// lossless cases.
pub fn token_ring_app() -> AppSpec {
    const N: usize = 4;
    AppSpec::from_populate(
        "token_ring",
        &[Clean, Crash, Loss, Reorder, Part],
        |host, _seed| token_ring::ring_populate(host, N, None),
        Arc::new(|| vec![token_ring::mutex_monitor()]),
        Arc::new(|w, case, fault| {
            let entries: u64 = (0..N)
                .map(|i| w.program::<RingNode>(Pid(i as u32)).unwrap().entries)
                .sum();
            let full = 3 * N as u64 + 1;
            let metrics = vec![("entries".to_string(), entries)];
            if let Some(f) = fault {
                return CellCheck::fail(format!("unexpected violation: {}", f.monitor), metrics);
            }
            if entries > full {
                return CellCheck::fail(
                    format!("too many CS entries: {entries} > {full}"),
                    metrics,
                );
            }
            if case.lossless && entries != full {
                return CellCheck::fail(format!("ring incomplete: {entries} != {full}"), metrics);
            }
            CellCheck::pass(metrics)
        }),
    )
}

/// The shared primary/backup postconditions, over either kv pair:
/// gap-free applied sequence, never ahead of the primary, byte-identical
/// stores once caught up, and full catch-up under lossless cases.
/// Returns the first failure.
fn kv_postconditions(
    applied: u64,
    applied_count: u64,
    seq: u64,
    stores_equal: bool,
    lossless: bool,
) -> Option<String> {
    if applied != applied_count {
        return Some("gap in applied sequence".to_string());
    }
    if applied > seq {
        return Some("backup ahead of primary".to_string());
    }
    if applied == seq && !stores_equal {
        return Some("caught-up backup diverged from primary".to_string());
    }
    if lossless && applied != seq {
        return Some(format!("backup incomplete: {applied} != {seq}"));
    }
    None
}

/// Primary/backup KV store with the fixed (hold-back) backup: the
/// applied sequence is always gap-free, never ahead of the primary, and
/// byte-identical to the primary once caught up.
pub fn kvstore_app() -> AppSpec {
    AppSpec::from_populate(
        "kvstore",
        &[Clean, Crash, Loss, Duplication, Reorder],
        |host, seed| kvstore::kv_populate_v2(host, kvstore::script(10, seed)),
        Arc::new(|| vec![kvstore::gap_monitor()]),
        Arc::new(|w, case, fault| {
            let p = w.program::<kvstore::Primary>(Pid(1)).unwrap();
            let b = w.program::<kvstore::BackupV2>(Pid(2)).unwrap();
            let metrics = vec![
                ("applied".to_string(), b.applied),
                ("seq".to_string(), p.seq),
            ];
            if let Some(f) = fault {
                return CellCheck::fail(format!("unexpected violation: {}", f.monitor), metrics);
            }
            if let Some(failure) = kv_postconditions(
                b.applied,
                b.applied_count,
                p.seq,
                b.store == p.store,
                case.lossless,
            ) {
                return CellCheck::fail(failure, metrics);
            }
            CellCheck::pass(metrics)
        }),
    )
}

/// Primary/backup KV store with the **buggy** arrival-order backup
/// ([`fixd_examples::kvstore::BackupV1`]) — the detection-power column.
///
/// Unlike every other app spec, a monitor violation here is the
/// *expected* outcome: under reordering the backup applies stale REPLs
/// and the gap monitor must catch it in a healthy fraction of cells.
/// The cell check records `detected` (0/1) as a metric and only *fails*
/// when detection happens somewhere it cannot (the clean FIFO control,
/// where arrival order equals send order and the bug is unreachable).
/// `tests/campaign.rs::buggy_backup_detection_rate` asserts the
/// aggregate detection fraction, so detection power is
/// regression-tested rather than assumed.
pub fn kvstore_buggy_app() -> AppSpec {
    AppSpec::from_populate(
        "kvstore_buggy",
        &[Clean, Reorder],
        |host, seed| kvstore::kv_populate_v1(host, kvstore::script(12, seed)),
        Arc::new(|| vec![kvstore::gap_monitor()]),
        Arc::new(|w, case, fault| {
            let detected = u64::from(fault.is_some());
            let metrics = vec![("detected".to_string(), detected)];
            if case.pathology == Clean && detected == 1 {
                // The clean FIFO control cannot reorder: a "detection"
                // there is a false positive of the monitor.
                return CellCheck::fail("violation on the clean control", metrics);
            }
            // Sanity on undetected (run-to-completion) cells: the
            // primary itself stays sound. Detected cells stop at the
            // violation, so the stream may legitimately be unfinished.
            if detected == 0 {
                let p = w.program::<kvstore::Primary>(Pid(1)).unwrap();
                if p.seq != 12 {
                    return CellCheck::fail(format!("primary lost PUTs: {}", p.seq), metrics);
                }
            }
            CellCheck::pass(metrics)
        }),
    )
}

/// Checksummed KV pair: everything the fixed backup guarantees, plus
/// corruption survival — a corrupted REPL is rejected (counted in the
/// `rejected` metric) instead of poisoning the store.
pub fn kvstore_ck_app() -> AppSpec {
    AppSpec::from_populate(
        "kvstore_ck",
        &[Clean, Loss, Duplication, Reorder, Corruption],
        |host, seed| kvstore::kv_populate_ck(host, kvstore::script(10, seed)),
        Arc::new(|| vec![kvstore::gap_monitor()]),
        Arc::new(|w, case, fault| {
            let p = w.program::<kvstore::PrimaryV2>(Pid(1)).unwrap();
            let b = w.program::<kvstore::BackupV3>(Pid(2)).unwrap();
            let metrics = vec![
                ("applied".to_string(), b.applied),
                ("seq".to_string(), p.seq),
                ("rejected".to_string(), b.rejected),
            ];
            if let Some(f) = fault {
                return CellCheck::fail(format!("unexpected violation: {}", f.monitor), metrics);
            }
            if let Some(failure) = kv_postconditions(
                b.applied,
                b.applied_count,
                p.seq,
                b.store == p.store,
                case.lossless,
            ) {
                return CellCheck::fail(failure, metrics);
            }
            if case.lossless && b.rejected != 0 {
                return CellCheck::fail("clean network rejected REPLs", metrics);
            }
            CellCheck::pass(metrics)
        }),
    )
}

/// Source → cruncher pipeline (correct cruncher): every recorded result
/// matches the reference computation, under every pathology — a
/// corrupted work item is still crunched faithfully for whatever index
/// it decodes to.
pub fn pipeline_app() -> AppSpec {
    const N_ITEMS: u64 = 8;
    const COST: u64 = 50;
    AppSpec::from_populate(
        "pipeline",
        &[Clean, Crash, Loss, Duplication, Reorder, Corruption],
        |host, _seed| pipeline::pipeline_populate(host, N_ITEMS, COST, None),
        Arc::new(|| vec![pipeline::results_monitor()]),
        Arc::new(|w, case, fault| {
            let c = w.program::<pipeline::Cruncher>(Pid(1)).unwrap();
            let metrics = vec![("results".to_string(), c.results.len() as u64)];
            if let Some(f) = fault {
                return CellCheck::fail(format!("unexpected violation: {}", f.monitor), metrics);
            }
            if let Some(&(i, r)) = c
                .results
                .iter()
                .find(|&&(i, r)| r != pipeline::crunch(i, COST))
            {
                return CellCheck::fail(format!("wrong result for item {i}: {r}"), metrics);
            }
            // Duplication can only add deliveries; every other lossless
            // case must crunch the exact workload.
            let n = c.results.len() as u64;
            let can_duplicate = case.net.dup_prob > 0.0;
            if case.lossless && can_duplicate && n < N_ITEMS {
                return CellCheck::fail(format!("lost items under dup: {n}"), metrics);
            }
            if case.lossless && !can_duplicate && n != N_ITEMS {
                return CellCheck::fail(format!("incomplete pipeline: {n} != {N_ITEMS}"), metrics);
            }
            CellCheck::pass(metrics)
        }),
    )
}

/// Write-ahead-logged counter: the in-memory value always equals the
/// increments actually delivered, and the durable value never runs
/// ahead of it.
pub fn wal_counter_app() -> AppSpec {
    const N_OPS: u64 = 20;
    const SYNC_EVERY: u64 = 4;
    AppSpec::from_populate(
        "wal_counter",
        &[Clean, Crash, Loss, Reorder],
        // A fresh disk per cell: the closure runs once per world build.
        |host, _seed| wal_counter::wal_populate(host, N_OPS, SYNC_EVERY, SharedDisk::new()),
        Arc::new(Vec::new),
        Arc::new(|w: &World, case, fault| {
            let c = w.program::<WalCounter>(Pid(1)).unwrap();
            let durable = c.durable_value();
            let metrics = vec![
                ("value".to_string(), c.value),
                ("durable".to_string(), durable),
            ];
            if let Some(f) = fault {
                return CellCheck::fail(format!("unexpected violation: {}", f.monitor), metrics);
            }
            if c.value > N_OPS {
                return CellCheck::fail(format!("over-counted: {}", c.value), metrics);
            }
            if c.value != w.delivered_count(Pid(1)) {
                return CellCheck::fail("value drifted from delivered increments", metrics);
            }
            if durable > c.value {
                return CellCheck::fail("durable value ran ahead of memory", metrics);
            }
            if case.lossless && c.value != N_OPS {
                return CellCheck::fail(format!("lost increments: {}", c.value), metrics);
            }
            CellCheck::pass(metrics)
        }),
    )
}

/// Two-phase commit with the *fixed* coordinator and one NO voter:
/// atomicity holds everywhere, every participant that learns a decision
/// learns the coordinator's, and the lossless cases decide everywhere.
pub fn two_phase_commit_app() -> AppSpec {
    const VOTES: [bool; 3] = [true, false, true];
    AppSpec::from_populate(
        "two_phase_commit",
        &[Clean, Crash, Loss, Reorder, Part],
        |host, _seed| two_phase_commit::tpc_populate(host, &VOTES, false),
        Arc::new(|| vec![two_phase_commit::atomicity_monitor()]),
        Arc::new(|w, case, fault| {
            let c = w.program::<Coordinator>(Pid(0)).unwrap();
            let decided: Vec<Option<bool>> = (1..=VOTES.len() as u32)
                .map(|i| w.program::<Participant>(Pid(i)).unwrap().committed)
                .collect();
            let n_decided = decided.iter().filter(|d| d.is_some()).count() as u64;
            let metrics = vec![("decided".to_string(), n_decided)];
            if let Some(f) = fault {
                return CellCheck::fail(format!("unexpected violation: {}", f.monitor), metrics);
            }
            for (i, d) in decided.iter().enumerate() {
                if d.is_some() && *d != c.decided {
                    return CellCheck::fail(
                        format!("participant {} disagrees with coordinator", i + 1),
                        metrics,
                    );
                }
            }
            if case.lossless {
                if c.decided != Some(false) {
                    return CellCheck::fail("coordinator must abort (one NO vote)", metrics);
                }
                if n_decided != VOTES.len() as u64 {
                    return CellCheck::fail(
                        format!("only {n_decided} participants decided"),
                        metrics,
                    );
                }
            }
            CellCheck::pass(metrics)
        }),
    )
}

/// Chord DHT column for the **wide** matrix: `n` members stabilize and
/// issue lookups; every lookup must resolve (`bad == 0`), and the
/// lossless cases must complete the full lookup workload. Wide cells are
/// where sharded campaign execution pays off, so this column is used by
/// `campaign_demo --sharded` and the sharded-equality tests rather than
/// the standard (narrow) matrix — adding it there would redefine the
/// golden fixture for no coverage gain.
pub fn chord_app(n: usize, stabilize_rounds: u32, lookups: u32, work: u64) -> AppSpec {
    AppSpec::from_populate(
        "chord",
        &[Clean, Reorder],
        move |host, _seed| chord::chord_populate_work(host, n, stabilize_rounds, lookups, work),
        Arc::new(Vec::new),
        Arc::new(move |w, case, fault| {
            let (mut ok, mut bad) = (0u64, 0u64);
            for i in 0..n {
                let s = &w.program::<ChordNode>(Pid(i as u32)).unwrap().stats;
                ok += s.ok;
                bad += s.bad;
            }
            let metrics = vec![("ok".to_string(), ok), ("bad".to_string(), bad)];
            if let Some(f) = fault {
                return CellCheck::fail(format!("unexpected violation: {}", f.monitor), metrics);
            }
            if bad != 0 {
                return CellCheck::fail(format!("{bad} lookups resolved wrong"), metrics);
            }
            let want = n as u64 * lookups as u64;
            if case.lossless && ok != want {
                return CellCheck::fail(format!("incomplete lookups: {ok} != {want}"), metrics);
            }
            CellCheck::pass(metrics)
        }),
    )
}

/// The Chord keyed-storage column: every member issues `puts` writes
/// routed to their ring owners, replicated to the owner's successor,
/// and read back (on ack) against the value it wrote. Safety: no bad
/// reads, ever. Liveness (lossless cases): every write is acked, every
/// read-after-write succeeds, and replication actually happened.
/// Not part of [`standard_matrix`] — an extra column for seed-search
/// sweeps and exploration targets.
pub fn chord_kv_app(n: usize, stabilize_rounds: u32, puts: u32) -> AppSpec {
    AppSpec::from_populate(
        "chord_kv",
        &[Clean, Reorder],
        move |host, _seed| chord::chord_kv_populate(host, n, stabilize_rounds, puts),
        Arc::new(Vec::new),
        Arc::new(move |w, case, fault| {
            let mut t = fixd_examples::chord::KvStats::default();
            for i in 0..n {
                let s = w.program::<ChordNode>(Pid(i as u32)).unwrap().kv_stats;
                t.put_acked += s.put_acked;
                t.get_ok += s.get_ok;
                t.get_bad += s.get_bad;
                t.replicas += s.replicas;
            }
            let metrics = vec![
                ("put_acked".to_string(), t.put_acked),
                ("get_ok".to_string(), t.get_ok),
                ("bad".to_string(), t.get_bad),
                ("replicas".to_string(), t.replicas),
            ];
            if let Some(f) = fault {
                return CellCheck::fail(format!("unexpected violation: {}", f.monitor), metrics);
            }
            if t.get_bad != 0 {
                return CellCheck::fail(format!("{} bad keyed reads", t.get_bad), metrics);
            }
            let want = n as u64 * u64::from(puts);
            if case.lossless {
                if t.put_acked != want || t.get_ok != want {
                    return CellCheck::fail(
                        format!(
                            "incomplete kv workload: {}/{want} acked, {}/{want} read back",
                            t.put_acked, t.get_ok
                        ),
                        metrics,
                    );
                }
                if n > 1 && t.replicas == 0 {
                    return CellCheck::fail("no replica writes observed", metrics);
                }
            }
            CellCheck::pass(metrics)
        }),
    )
}

/// The wide matrix: one Chord column over clean + reorder cases. Cells
/// are wide (many processes) and handler-heavy, which is the regime the
/// sharded campaign driver targets.
pub fn wide_matrix(n: usize, seeds: &[u64]) -> CampaignSpec {
    wide_matrix_work(n, seeds, 0)
}

/// [`wide_matrix`] with a per-delivery compute burn on every Chord
/// member — the handler-heavy variant the sharded campaign bench
/// (`campaign_demo`) gates on.
pub fn wide_matrix_work(n: usize, seeds: &[u64], work: u64) -> CampaignSpec {
    CampaignSpec::new()
        .app(chord_app(n, 3, 2, work))
        .case(FaultCase::net_only("clean", Clean, NetworkConfig::default()).lossless())
        .case(FaultCase::net_only("reorder", Reorder, NetworkConfig::jittery(1, 50)).lossless())
        .seeds(seeds.iter().copied())
}

/// The full standard matrix: all five example apps × the standard fault
/// cases × the given seeds.
pub fn standard_matrix(seeds: &[u64]) -> CampaignSpec {
    let mut spec = CampaignSpec::new()
        .app(token_ring_app())
        .app(kvstore_app())
        .app(kvstore_ck_app())
        .app(pipeline_app())
        .app(wal_counter_app())
        .app(two_phase_commit_app())
        .seeds(seeds.iter().copied());
    spec.cases = standard_cases();
    spec
}

/// All pathologies the standard matrix exercises.
pub fn standard_pathologies() -> Vec<Pathology> {
    vec![Clean, Crash, Loss, Duplication, Reorder, Corruption, Part]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_matrix_shape() {
        let spec = standard_matrix(&[0, 1]);
        assert_eq!(spec.apps.len(), 6);
        assert_eq!(spec.cases.len(), 9);
        // Every case row is used by at least one app, and every app
        // supports the clean control case.
        for case in &spec.cases {
            assert!(
                spec.apps.iter().any(|a| case.supported_by(a)),
                "case {} unused",
                case.name
            );
        }
        for app in &spec.apps {
            assert!(app.supports.contains(&Clean), "{} lacks clean", app.name);
        }
        assert_eq!(spec.cells().len(), spec.expected_cells());
    }

    #[test]
    fn chord_kv_column_passes_clean_and_reorder() {
        use crate::driver::run_cell;
        let spec = CampaignSpec::new()
            .app(chord_kv_app(12, 2, 2))
            .case(FaultCase::net_only("clean", Clean, NetworkConfig::default()).lossless())
            .case(FaultCase::net_only("reorder", Reorder, NetworkConfig::jittery(1, 50)).lossless())
            .seeds([3, 4]);
        let cells = spec.cells();
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            let out = run_cell(&spec, cell);
            assert!(out.violation.is_none(), "cell {}: {:?}", cell.index, out);
            assert!(
                out.check_failure.is_none(),
                "cell {}: {:?}",
                cell.index,
                out
            );
            let bad = out.metrics.iter().find(|(k, _)| k == "bad").unwrap().1;
            assert_eq!(bad, 0, "bad keyed reads in cell {}", cell.index);
        }
    }

    #[test]
    fn early_heal_window_misses_all_send_instants() {
        // The FIFO apps send at t ∈ {0, 5, 10, 15, 20, ...}; the window
        // [6, 9) must contain none of them.
        for t in [0u64, 5, 10, 15, 20] {
            assert!(!(6..9).contains(&t));
        }
    }
}
