//! # fixd-baselines — the tools FixD is compared against
//!
//! The paper's §2 surveys existing techniques and §4 composes some of
//! them; Figure 8 compares FixD against the stand-alone tools. This crate
//! implements behavioral equivalents of those comparators over the same
//! substrate, so every benchmark comparison in `fixd-bench` runs real
//! code on both sides:
//!
//! * [`liblog`] — user-level logging + offline replay (Geels et al.,
//!   USENIX ATC 2006): "assumes ... that all processes involved in the
//!   distributed computation use the logging mechanism" (§2.3);
//! * [`cmc`] — CMC-style model checking of real code from the *initial*
//!   state, with generic checks (deadlocks) plus user invariants (§4.3);
//! * [`flashback`] — Flashback-style checkpointing; where our Time
//!   Machine uses COW pages, the baseline variant here takes **eager
//!   full copies** (the "certain types of traditional checkpointing"
//!   that §4.2 claims speculations beat);
//! * [`restart`] — classic whole-system restart recovery (§3.4 option 1);
//! * [`printf`] — the `printf` debugging the paper's introduction wants
//!   to replace: format-everything, keep-everything logging.

pub mod cmc;
pub mod flashback;
pub mod liblog;
pub mod printf;
pub mod restart;

pub use cmc::Cmc;
pub use flashback::FlashbackCheckpointer;
pub use liblog::Liblog;
pub use printf::PrintfLogger;
pub use restart::restart_all;
