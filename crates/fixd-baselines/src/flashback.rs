//! Flashback-style checkpointing with **eager full copies**.
//!
//! Flashback (§2.3) creates "lightweight 'shadow' processes that utilize
//! a copy-on-write mechanism" — in the kernel. The baseline we need for
//! experiment F2 is the *traditional* alternative the paper's §4.2
//! compares speculations against: checkpoints that copy the entire
//! process state each time. This module is that comparator; the COW
//! variant lives in `fixd-timemachine::page`.

use fixd_runtime::{Pid, ProcCheckpoint, VTime, World};

/// Eager full-copy checkpoint store for one world.
#[derive(Clone, Debug, Default)]
pub struct FlashbackCheckpointer {
    checkpoints: Vec<Vec<ProcCheckpoint>>,
    bytes_copied: u64,
}

impl FlashbackCheckpointer {
    /// A checkpointer for `n` processes.
    pub fn new(n: usize) -> Self {
        Self {
            checkpoints: vec![Vec::new(); n],
            bytes_copied: 0,
        }
    }

    /// Take an eager full checkpoint of `pid`. Returns its index.
    pub fn take(&mut self, world: &World, pid: Pid) -> u64 {
        let ck = world.checkpoint_process(pid);
        self.bytes_copied += ck.state.len() as u64;
        let v = &mut self.checkpoints[pid.idx()];
        v.push(ck);
        (v.len() - 1) as u64
    }

    /// Restore `pid` to checkpoint `index`, discarding later checkpoints.
    pub fn restore(&mut self, world: &mut World, pid: Pid, index: u64) -> bool {
        let v = &mut self.checkpoints[pid.idx()];
        let Some(ck) = v.get(index as usize) else {
            return false;
        };
        world.restore_checkpoint(ck);
        v.truncate(index as usize + 1);
        true
    }

    /// Latest checkpoint index of `pid`.
    pub fn latest_index(&self, pid: Pid) -> Option<u64> {
        let n = self.checkpoints[pid.idx()].len();
        n.checked_sub(1).map(|i| i as u64)
    }

    /// Total bytes copied across all takes (the eager cost metric F2
    /// compares against COW sharing).
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    /// Bytes currently held (every checkpoint stores a full copy).
    pub fn bytes_held(&self) -> usize {
        self.checkpoints
            .iter()
            .flat_map(|v| v.iter())
            .map(|c| c.state.len())
            .sum()
    }

    /// Number of checkpoints held for `pid`.
    pub fn count(&self, pid: Pid) -> usize {
        self.checkpoints[pid.idx()].len()
    }

    /// Virtual time of a checkpoint.
    pub fn taken_at(&self, pid: Pid, index: u64) -> Option<VTime> {
        self.checkpoints[pid.idx()]
            .get(index as usize)
            .map(|c| c.taken_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::{Context, Program, WorldConfig};

    struct Blob {
        data: Vec<u8>,
    }
    impl Program for Blob {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                for _ in 0..4 {
                    ctx.send(Pid(1), 1, vec![1]);
                }
            }
        }
        fn on_message(&mut self, _ctx: &mut Context, _msg: &fixd_runtime::Message) {
            self.data[0] = self.data[0].wrapping_add(1); // tiny mutation
        }
        fn snapshot(&self) -> Vec<u8> {
            self.data.clone()
        }
        fn restore(&mut self, b: &[u8]) {
            self.data = b.to_vec();
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Blob {
                data: self.data.clone(),
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn world() -> World {
        let mut w = World::new(WorldConfig::seeded(2));
        w.add_process(Box::new(Blob {
            data: vec![0; 4096],
        }));
        w.add_process(Box::new(Blob {
            data: vec![0; 4096],
        }));
        w
    }

    #[test]
    fn eager_cost_is_full_size_every_time() {
        let mut w = world();
        let mut fb = FlashbackCheckpointer::new(2);
        for _ in 0..3 {
            fb.take(&w, Pid(1));
            w.run_steps(2);
        }
        assert_eq!(fb.bytes_copied(), 3 * 4096);
        assert_eq!(fb.bytes_held(), 3 * 4096);
        assert_eq!(fb.count(Pid(1)), 3);
    }

    #[test]
    fn restore_roundtrip() {
        let mut w = world();
        let mut fb = FlashbackCheckpointer::new(2);
        w.run_steps(3);
        let fp = w.checkpoint_process(Pid(1)).fingerprint();
        let idx = fb.take(&w, Pid(1));
        w.run_to_quiescence(1_000);
        assert!(fb.restore(&mut w, Pid(1), idx));
        assert_eq!(w.checkpoint_process(Pid(1)).fingerprint(), fp);
        assert!(!fb.restore(&mut w, Pid(1), 99), "unknown index refused");
    }

    #[test]
    fn eager_holds_more_than_cow_for_small_mutations() {
        // The F2 claim in miniature: same checkpoint schedule, tiny
        // mutations => COW holds ~1 copy + deltas, eager holds N copies.
        let mut w = world();
        let mut fb = FlashbackCheckpointer::new(2);
        let mut store = fixd_timemachine::CheckpointStore::new(Pid(1), 256);
        for i in 0..5 {
            fb.take(&w, Pid(1));
            store.take(&w, i);
            w.run_steps(2);
        }
        let eager = fb.bytes_held();
        let cow = store.unique_bytes();
        assert!(
            cow < eager / 2,
            "COW ({cow} B) should be far below eager ({eager} B)"
        );
    }
}
