//! liblog-style logging and replay debugging.
//!
//! "liblog \[1\], uses logging and replay to identify bugs in distributed
//! applications and to present the user with a trace of the distributed
//! execution. The tool assumes though that all processes involved in the
//! distributed computation use the logging mechanism that they provide."
//! (§2.3) — i.e. diagnosis only: no rollback of the *live* system, no
//! treatment. Implemented over the Scroll substrate with full recording
//! (liblog intercepts every libc call, so drops are recorded too).

use fixd_runtime::{Pid, Program, RunReport, World};
use fixd_scroll::{
    merge_total_order, replay_process, Fidelity, RecordConfig, ScrollEntry, ScrollRecorder,
    ScrollStore,
};

/// The liblog comparator: record a run, then replay/inspect offline.
pub struct Liblog {
    store: ScrollStore,
    seed: u64,
    width: usize,
}

impl Liblog {
    /// Record `world` to quiescence (or `max_steps`). All processes log —
    /// liblog's stated requirement.
    pub fn record(world: &mut World, seed: u64, max_steps: u64) -> (Self, RunReport) {
        let mut rec = ScrollRecorder::new(world.num_procs(), RecordConfig { record_drops: true });
        let d0 = world.stats();
        let mut steps = 0;
        while steps < max_steps {
            let Some(step) = world.step() else { break };
            rec.observe(world, &step);
            steps += 1;
        }
        let d1 = world.stats();
        let report = RunReport {
            steps,
            delivered: d1.delivered - d0.delivered,
            dropped: d1.dropped - d0.dropped,
            end_time: world.now(),
            quiescent: steps < max_steps,
        };
        (
            Self {
                store: rec.into_store(),
                seed,
                width: world.num_procs(),
            },
            report,
        )
    }

    /// The recorded log.
    pub fn store(&self) -> &ScrollStore {
        &self.store
    }

    /// Present the user with "a trace of the distributed execution":
    /// the merged, causally consistent total order.
    pub fn global_trace(&self) -> Vec<ScrollEntry> {
        merge_total_order(&self.store)
    }

    /// Offline deterministic replay of one process against a fresh
    /// program instance. Returns whether the replay was exact.
    pub fn replay(&self, pid: Pid, fresh: &mut dyn Program) -> Fidelity {
        replay_process(pid, self.width, self.seed, fresh, &self.store.scroll(pid)).fidelity
    }

    /// Log size in bytes (the cost liblog pays for full recording).
    pub fn log_bytes(&self) -> usize {
        self.store.encoded_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::{Context, Message, WorldConfig};

    struct Echo {
        n: u64,
    }
    impl Program for Echo {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                ctx.send(Pid(1), 1, vec![3]);
            }
        }
        fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
            self.n += 1;
            if msg.payload[0] > 0 {
                ctx.send(msg.src, 1, vec![msg.payload[0] - 1]);
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            self.n.to_le_bytes().to_vec()
        }
        fn restore(&mut self, b: &[u8]) {
            self.n = u64::from_le_bytes(b.try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Echo { n: self.n })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn world(seed: u64) -> World {
        let mut w = World::new(WorldConfig::seeded(seed));
        w.add_process(Box::new(Echo { n: 0 }));
        w.add_process(Box::new(Echo { n: 0 }));
        w
    }

    #[test]
    fn records_and_merges_global_trace() {
        let mut w = world(9);
        let (ll, report) = Liblog::record(&mut w, 9, 10_000);
        assert!(report.quiescent);
        let trace = ll.global_trace();
        assert_eq!(trace.len(), ll.store().total_entries());
        assert!(ll.log_bytes() > 0);
        fixd_scroll::check_causal_consistency(&trace).unwrap();
    }

    #[test]
    fn replay_is_exact_with_same_program() {
        let mut w = world(9);
        let (ll, _) = Liblog::record(&mut w, 9, 10_000);
        let mut fresh = Echo { n: 0 };
        assert_eq!(ll.replay(Pid(1), &mut fresh), Fidelity::Exact);
        assert_eq!(fresh.n, w.program::<Echo>(Pid(1)).unwrap().n);
    }

    #[test]
    fn replay_detects_code_drift() {
        let mut w = world(9);
        let (ll, _) = Liblog::record(&mut w, 9, 10_000);
        struct Echo2;
        impl Program for Echo2 {
            fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
                // Drifted: always responds, even at 0.
                ctx.send(msg.src, 1, vec![0]);
            }
            fn snapshot(&self) -> Vec<u8> {
                vec![]
            }
            fn restore(&mut self, _b: &[u8]) {}
            fn clone_program(&self) -> Box<dyn Program> {
                Box::new(Echo2)
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        assert_ne!(ll.replay(Pid(1), &mut Echo2), Fidelity::Exact);
    }
}
