//! CMC-style model checking of real code from the initial state.
//!
//! "CMC \[2\] is a model checker that generates the state space of a
//! given application by executing the C or C++ source code. During the
//! state space exploration, CMC automatically checks for certain generic
//! properties such as memory leaks and invalid memory accesses. Also, CMC
//! reports any deadlock states ... To check for specific properties, the
//! user has to provide additional invariants." (§4.3)
//!
//! Behavioral equivalent here: ModelD exploration **from the initial
//! state** (no checkpoint head start) with deadlock detection on and a
//! generic resource-leak check (undeliverable mail addressed to crashed
//! processes — the message-queue analogue of a memory leak), plus user
//! invariants.

use fixd_investigator::{
    ExploreConfig, ExploreReport, Invariant, ModelAction, ModelD, NetModel, WorldState,
};
use fixd_runtime::{Pid, Program};

/// The CMC comparator.
pub struct Cmc {
    md: ModelD,
}

impl Cmc {
    /// Check an application from its initial state.
    pub fn new(
        seed: u64,
        net: NetModel,
        factory: impl Fn() -> Vec<Box<dyn Program>> + Send + Sync + 'static,
    ) -> Self {
        let md = ModelD::from_initial(seed, net, factory).invariant(Self::leak_check());
        Self { md }
    }

    /// CMC's generic "leak" check adapted to the substrate: mail
    /// addressed to a crashed process can never be consumed — a resource
    /// leak the application should not produce.
    pub fn leak_check() -> Invariant<WorldState> {
        Invariant::new("no-leaked-mail", |s: &WorldState| {
            for dst in 0..s.width() {
                if !s.is_crashed(Pid(dst as u32)) {
                    continue;
                }
                for src in 0..s.width() {
                    if !s.channel(Pid(src as u32), Pid(dst as u32)).is_empty() {
                        return false;
                    }
                }
            }
            true
        })
    }

    /// Add a user invariant (builder style).
    pub fn invariant(mut self, inv: Invariant<WorldState>) -> Self {
        self.md = self.md.invariant(inv);
        self
    }

    /// Set exploration limits.
    pub fn config(mut self, cfg: ExploreConfig) -> Self {
        // CMC reports deadlocks: force detection on.
        let cfg = ExploreConfig {
            detect_deadlocks: true,
            ..cfg
        };
        self.md = self.md.config(cfg);
        self
    }

    /// Run the exploration.
    pub fn run(&self) -> ExploreReport<ModelAction> {
        self.md.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::{Context, Message};

    /// Request/response pair where the server never answers the second
    /// request kind — a deadlock under "client waits" semantics is not
    /// modelled (message passing is async), but the leak check catches a
    /// client that mails a crashed server.
    struct Client;
    impl Program for Client {
        fn on_start(&mut self, ctx: &mut Context) {
            ctx.send(Pid(1), 1, vec![1]);
        }
        fn snapshot(&self) -> Vec<u8> {
            vec![]
        }
        fn restore(&mut self, _b: &[u8]) {}
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Client)
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    struct Server {
        served: u64,
    }
    impl Program for Server {
        fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
            self.served += 1;
            ctx.send(msg.src, 2, vec![]);
        }
        fn snapshot(&self) -> Vec<u8> {
            self.served.to_le_bytes().to_vec()
        }
        fn restore(&mut self, b: &[u8]) {
            self.served = u64::from_le_bytes(b.try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Server {
                served: self.served,
            })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn factory() -> Vec<Box<dyn Program>> {
        vec![
            Box::new(Client) as Box<dyn Program>,
            Box::new(Server { served: 0 }),
        ]
    }

    #[test]
    fn clean_protocol_passes() {
        let report = Cmc::new(1, NetModel::reliable(), factory)
            .config(ExploreConfig::default())
            .run();
        assert!(report.clean(), "{}", report.summary());
        assert!(report.states > 1);
    }

    #[test]
    fn leak_detected_under_crash_model() {
        // With a crash budget, some branch crashes the server while the
        // client's request is in flight => leaked mail.
        let report = Cmc::new(1, NetModel::crashy(1), factory)
            .config(ExploreConfig::default())
            .run();
        assert!(
            report
                .violations
                .iter()
                .any(|t| t.violation == "no-leaked-mail"),
            "{}",
            report.summary()
        );
    }

    #[test]
    fn user_invariants_compose() {
        let report = Cmc::new(1, NetModel::reliable(), factory)
            .invariant(Invariant::new("server-never-serves", |s: &WorldState| {
                s.program::<Server>(Pid(1)).is_none_or(|sv| sv.served == 0)
            }))
            .config(ExploreConfig::default())
            .run();
        assert!(!report.violations.is_empty());
    }
}
