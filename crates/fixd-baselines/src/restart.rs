//! Classic restart recovery: kill everything, start over.
//!
//! §3.4: "One option is for the new version of the program that contains
//! the corrected code to be restarted from the beginning. This is the
//! simplest option and is the one that is used classically after a
//! system failure." This baseline is what experiment F5 measures
//! update-from-checkpoint against.

use fixd_runtime::{Pid, Program, World};

/// What a whole-system restart cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestartReport {
    /// Processes reset.
    pub procs_reset: usize,
    /// Messages in flight that were thrown away.
    pub msgs_discarded: usize,
    /// Pending timers thrown away.
    pub timers_discarded: usize,
}

/// Restart every process from scratch on (possibly new) code: replace
/// all programs with `factory()` output, clear the network, schedule
/// fresh starts. All completed computation is discarded.
pub fn restart_all(
    world: &mut World,
    factory: impl Fn() -> Vec<Box<dyn Program>>,
) -> RestartReport {
    let fresh = factory();
    assert_eq!(
        fresh.len(),
        world.num_procs(),
        "factory must produce one program per process"
    );
    let msgs = world.inflight_messages().len();
    let timers = world.pending_timers().len();
    world.purge_events(|k| {
        matches!(
            k,
            fixd_runtime::EventKind::Deliver { .. } | fixd_runtime::EventKind::TimerFire { .. }
        )
    });
    let n = fresh.len();
    for (i, prog) in fresh.into_iter().enumerate() {
        let pid = Pid(i as u32);
        world.replace_program(pid, prog);
        world.revive(pid);
        world.schedule_start(pid);
    }
    RestartReport {
        procs_reset: n,
        msgs_discarded: msgs,
        timers_discarded: timers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::{Context, WorldConfig};

    struct Work {
        done: u64,
    }
    impl Program for Work {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                for _ in 0..6 {
                    ctx.send(Pid(1), 1, vec![]);
                }
            }
        }
        fn on_message(&mut self, _ctx: &mut Context, _m: &fixd_runtime::Message) {
            self.done += 1;
        }
        fn snapshot(&self) -> Vec<u8> {
            self.done.to_le_bytes().to_vec()
        }
        fn restore(&mut self, b: &[u8]) {
            self.done = u64::from_le_bytes(b.try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Work { done: self.done })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn factory() -> Vec<Box<dyn Program>> {
        vec![
            Box::new(Work { done: 0 }) as Box<dyn Program>,
            Box::new(Work { done: 0 }),
        ]
    }

    #[test]
    fn restart_discards_everything_and_reruns() {
        let mut w = World::new(WorldConfig::seeded(4));
        for p in factory() {
            w.add_process(p);
        }
        w.run_steps(5); // partway: some mail consumed, some in flight
        let inflight_before = w.inflight_messages().len();
        assert!(inflight_before > 0);
        let report = restart_all(&mut w, factory);
        assert_eq!(report.procs_reset, 2);
        assert_eq!(report.msgs_discarded, inflight_before);
        assert_eq!(w.program::<Work>(Pid(1)).unwrap().done, 0, "progress gone");
        // The rerun completes the protocol from scratch.
        w.run_to_quiescence(1_000);
        assert_eq!(w.program::<Work>(Pid(1)).unwrap().done, 6);
    }

    #[test]
    fn restart_revives_crashed_processes() {
        let mut w = World::new(WorldConfig::seeded(4));
        for p in factory() {
            w.add_process(p);
        }
        w.run_steps(3);
        w.crash_now(Pid(1));
        restart_all(&mut w, factory);
        assert_eq!(w.status(Pid(1)), fixd_runtime::ProcStatus::Running);
        w.run_to_quiescence(1_000);
        assert_eq!(w.program::<Work>(Pid(1)).unwrap().done, 6);
    }
}
