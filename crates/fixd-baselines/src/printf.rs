//! `printf` debugging, faithfully inefficient.
//!
//! The paper's introduction positions FixD as "a substitute for the
//! traditional printf logging and debugging mechanisms used extensively
//! during the final stages of development". This comparator is that
//! mechanism: format a human-readable line for *every* event and keep
//! them all. Experiment F1 compares its cost and size against the
//! Scroll's record-only-nondeterminism discipline.

use fixd_runtime::{EventKind, StepRecord, World};

/// Collects formatted log lines for every event.
#[derive(Clone, Debug, Default)]
pub struct PrintfLogger {
    lines: Vec<String>,
    bytes: usize,
}

impl PrintfLogger {
    /// An empty logger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Log one step, the way an `eprintln!` in every handler would.
    pub fn observe(&mut self, world: &World, step: &StepRecord) {
        let line = match &step.event.kind {
            EventKind::Start { pid } => {
                format!(
                    "[t={} seq={}] {pid}: started",
                    step.event.at, step.event.seq
                )
            }
            EventKind::Deliver { msg } => format!(
                "[t={} seq={}] {}: received tag={} ({} bytes) from {} (sent t={}), now vc={}",
                step.event.at,
                step.event.seq,
                msg.dst,
                msg.tag,
                msg.payload.len(),
                msg.src,
                msg.sent_at,
                world.proc_vc(msg.dst),
            ),
            EventKind::Drop { msg } => format!(
                "[t={} seq={}] network: DROPPED {}→{} tag={}",
                step.event.at, step.event.seq, msg.src, msg.dst, msg.tag
            ),
            EventKind::TimerFire { pid, timer } => format!(
                "[t={} seq={}] {pid}: timer {} fired",
                step.event.at, step.event.seq, timer.0
            ),
            EventKind::Crash { pid } => {
                format!(
                    "[t={} seq={}] {pid}: CRASHED",
                    step.event.at, step.event.seq
                )
            }
            EventKind::Restart { pid } => {
                format!(
                    "[t={} seq={}] {pid}: restarted",
                    step.event.at, step.event.seq
                )
            }
            EventKind::PartitionChange { .. } => {
                format!(
                    "[t={} seq={}] network: partition changed",
                    step.event.at, step.event.seq
                )
            }
        };
        // Also "print" every effect, as chatty handlers do.
        self.push(line);
        for m in &step.effects.sends {
            self.push(format!(
                "[t={}] {}: sending tag={} ({} bytes) to {}",
                step.event.at,
                m.src,
                m.tag,
                m.payload.len(),
                m.dst
            ));
        }
        for r in &step.effects.randoms {
            self.push(format!("[t={}] rng -> {r}", step.event.at));
        }
    }

    fn push(&mut self, line: String) {
        self.bytes += line.len() + 1;
        self.lines.push(line);
    }

    /// Number of log lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True if nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Total log size in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The raw lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Naive grep — the only query tool printf debugging has.
    pub fn grep(&self, needle: &str) -> Vec<&String> {
        self.lines.iter().filter(|l| l.contains(needle)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::{Context, Pid, Program, WorldConfig};

    struct Chat;
    impl Program for Chat {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                ctx.send(Pid(1), 1, vec![2]);
            }
        }
        fn on_message(&mut self, ctx: &mut Context, msg: &fixd_runtime::Message) {
            let _ = ctx.random();
            if msg.payload[0] > 0 {
                ctx.send(msg.src, 1, vec![msg.payload[0] - 1]);
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            vec![]
        }
        fn restore(&mut self, _b: &[u8]) {}
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Chat)
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn logs_every_event_and_effect() {
        let mut w = World::new(WorldConfig::seeded(1));
        w.add_process(Box::new(Chat));
        w.add_process(Box::new(Chat));
        let mut log = PrintfLogger::new();
        while let Some(step) = w.step() {
            log.observe(&w, &step);
        }
        // 2 starts + 3 deliveries, plus send lines and rng lines.
        assert!(log.len() > 5);
        assert!(log.bytes() > 100);
        assert_eq!(log.grep("started").len(), 2);
        assert_eq!(log.grep("received").len(), 3);
        assert_eq!(log.grep("rng ->").len(), 3);
        assert!(!log.is_empty());
    }

    #[test]
    fn printf_is_bulkier_than_the_scroll() {
        // Same run, both mechanisms: printf must cost more bytes.
        let build = || {
            let mut w = World::new(WorldConfig::seeded(1));
            w.add_process(Box::new(Chat));
            w.add_process(Box::new(Chat));
            w
        };
        let mut w1 = build();
        let mut log = PrintfLogger::new();
        while let Some(step) = w1.step() {
            log.observe(&w1, &step);
        }
        let mut w2 = build();
        let (store, _) =
            fixd_scroll::record::record_run(&mut w2, fixd_scroll::RecordConfig::default(), 1_000);
        assert!(
            log.bytes() > store.encoded_size(),
            "printf {}B vs scroll {}B",
            log.bytes(),
            store.encoded_size()
        );
    }
}
