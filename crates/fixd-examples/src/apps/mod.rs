//! Example application protocols (see crate docs).

pub mod chord;
pub mod kvstore;
pub mod pipeline;
pub mod token_ring;
pub mod two_phase_commit;
pub mod wal_counter;
