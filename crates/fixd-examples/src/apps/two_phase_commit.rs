//! Two-phase commit with a premature-commit bug.
//!
//! The coordinator collects votes from all participants and must commit
//! only if *everyone* voted YES. The buggy coordinator commits as soon as
//! the first YES arrives — an atomicity violation whose manifestation
//! depends on vote arrival order, i.e. exactly the "scheduling bugs and
//! corner cases" model checking is adept at (§2.1). The fixed version
//! waits for all votes.

use fixd_core::Monitor;
use fixd_healer::{migrate, Patch};
use fixd_runtime::{Context, Message, Pid, ProcHost, Program, World, WorldConfig};

/// Coordinator → participant: VOTE-REQ.
pub const VOTE_REQ: u16 = 20;
/// Participant → coordinator: VOTE (payload: 1 = yes, 0 = no).
pub const VOTE: u16 = 21;
/// Coordinator → participant: decision (payload: 1 = COMMIT, 0 = ABORT).
pub const DECISION: u16 = 22;

/// Coordinator (P0). `wait_for_all = false` is the bug.
pub struct Coordinator {
    pub yes_votes: u8,
    pub no_votes: u8,
    pub decided: Option<bool>,
    pub wait_for_all: bool,
}

impl Coordinator {
    /// The buggy coordinator (commits on the first YES).
    pub fn buggy() -> Self {
        Self {
            yes_votes: 0,
            no_votes: 0,
            decided: None,
            wait_for_all: false,
        }
    }

    /// The fixed coordinator.
    pub fn fixed() -> Self {
        Self {
            wait_for_all: true,
            ..Self::buggy()
        }
    }

    fn participants(ctx: &Context) -> u8 {
        (ctx.world_size() - 1) as u8
    }

    fn decide(&mut self, ctx: &mut Context, commit: bool) {
        self.decided = Some(commit);
        // One decision buffer, aliased by every participant's copy.
        let decision = fixd_runtime::Payload::from([u8::from(commit)]);
        for i in 1..ctx.world_size() as u32 {
            ctx.send(Pid(i), DECISION, decision.clone());
        }
        ctx.output(vec![b'D', u8::from(commit)]);
    }
}

impl Program for Coordinator {
    fn on_start(&mut self, ctx: &mut Context) {
        let req = fixd_runtime::Payload::empty();
        for i in 1..ctx.world_size() as u32 {
            ctx.send(Pid(i), VOTE_REQ, req.clone());
        }
    }

    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        if msg.tag != VOTE || self.decided.is_some() {
            return;
        }
        if msg.payload[0] == 1 {
            self.yes_votes += 1;
        } else {
            self.no_votes += 1;
        }
        let all = Self::participants(ctx);
        if self.no_votes > 0 {
            self.decide(ctx, false);
        } else if self.wait_for_all {
            if self.yes_votes == all {
                self.decide(ctx, true);
            }
        } else if self.yes_votes >= 1 {
            // BUG: premature commit without hearing everyone.
            self.decide(ctx, true);
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        vec![
            self.yes_votes,
            self.no_votes,
            match self.decided {
                None => 2,
                Some(false) => 0,
                Some(true) => 1,
            },
            u8::from(self.wait_for_all),
        ]
    }

    fn restore(&mut self, b: &[u8]) {
        self.yes_votes = b[0];
        self.no_votes = b[1];
        self.decided = match b[2] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        };
        self.wait_for_all = b[3] != 0;
    }

    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Self {
            yes_votes: self.yes_votes,
            no_votes: self.no_votes,
            decided: self.decided,
            wait_for_all: self.wait_for_all,
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &'static str {
        "2pc-coordinator"
    }
}

/// Participant (P1..): votes according to `will_vote`, obeys the decision.
pub struct Participant {
    pub will_vote: bool,
    pub committed: Option<bool>,
}

impl Participant {
    /// A participant that will vote `yes`.
    pub fn new(yes: bool) -> Self {
        Self {
            will_vote: yes,
            committed: None,
        }
    }
}

impl Program for Participant {
    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        match msg.tag {
            VOTE_REQ => ctx.send(Pid(0), VOTE, [u8::from(self.will_vote)]),
            DECISION => self.committed = Some(msg.payload[0] == 1),
            _ => {}
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        vec![
            u8::from(self.will_vote),
            match self.committed {
                None => 2,
                Some(false) => 0,
                Some(true) => 1,
            },
        ]
    }
    fn restore(&mut self, b: &[u8]) {
        self.will_vote = b[0] != 0;
        self.committed = match b[1] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        };
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Self {
            will_vote: self.will_vote,
            committed: self.committed,
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &'static str {
        "2pc-participant"
    }
}

/// Atomicity monitor: nobody may learn COMMIT if any participant will
/// vote NO.
pub fn atomicity_monitor() -> Monitor {
    let check = |committed: bool, any_no: bool| !(committed && any_no);
    Monitor::global(
        "2pc-atomicity",
        move |w| {
            let any_no = (1..w.num_procs()).any(|i| {
                w.program::<Participant>(Pid(i as u32))
                    .is_some_and(|p| !p.will_vote)
            });
            let committed = (1..w.num_procs()).any(|i| {
                w.program::<Participant>(Pid(i as u32))
                    .is_some_and(|p| p.committed == Some(true))
            });
            check(committed, any_no)
        },
        move |s| {
            let any_no = (1..s.width()).any(|i| {
                s.program::<Participant>(Pid(i as u32))
                    .is_some_and(|p| !p.will_vote)
            });
            let committed = (1..s.width()).any(|i| {
                s.program::<Participant>(Pid(i as u32))
                    .is_some_and(|p| p.committed == Some(true))
            });
            check(committed, any_no)
        },
    )
}

/// Build a 2PC world over an explicit [`WorldConfig`] (campaign matrices
/// inject network pathologies through the config).
pub fn tpc_world_cfg(cfg: WorldConfig, votes: &[bool], buggy: bool) -> World {
    let mut w = World::new(cfg);
    tpc_populate(&mut w, votes, buggy);
    w
}

/// Populate any [`ProcHost`] with the 2PC topology (shard-capable entry
/// point for the campaign driver).
pub fn tpc_populate(host: &mut dyn ProcHost, votes: &[bool], buggy: bool) {
    host.spawn(Box::new(if buggy {
        Coordinator::buggy()
    } else {
        Coordinator::fixed()
    }));
    for &v in votes {
        host.spawn(Box::new(Participant::new(v)));
    }
}

/// Build a 2PC world: coordinator + participants with the given votes.
pub fn tpc_world(seed: u64, votes: &[bool], buggy: bool) -> World {
    tpc_world_cfg(WorldConfig::seeded(seed), votes, buggy)
}

/// Program factory for the Investigator (same topology, from scratch).
pub fn tpc_factory(
    votes: Vec<bool>,
    buggy: bool,
) -> impl Fn() -> Vec<Box<dyn Program>> + Send + Sync {
    move || {
        let mut v: Vec<Box<dyn Program>> = vec![Box::new(if buggy {
            Coordinator::buggy()
        } else {
            Coordinator::fixed()
        })];
        for &y in &votes {
            v.push(Box::new(Participant::new(y)));
        }
        v
    }
}

/// The coordinator fix as a Healer patch (state layout unchanged except
/// the flag, which the migration flips).
pub fn coordinator_patch() -> Patch {
    Patch::code_only("2pc-wait-for-all", 1, 2, || Box::new(Coordinator::fixed()))
        .with_migration(migrate::from_fn(|old| {
            let mut b = old.to_vec();
            if b.len() != 4 {
                return Err(fixd_healer::MigrateError::Malformed(
                    "coordinator state".into(),
                ));
            }
            b[3] = 1; // wait_for_all = true
            Ok(b)
        }))
        .with_precondition(
            |old| old.len() == 4 && old[2] == 2, /* not yet decided */
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_coordinator_aborts_on_any_no() {
        let mut w = tpc_world(1, &[true, false, true], false);
        w.run_to_quiescence(10_000);
        let monitor = atomicity_monitor();
        assert!(monitor.violated_in(&w).is_none());
        let c = w.program::<Coordinator>(Pid(0)).unwrap();
        assert_eq!(c.decided, Some(false));
    }

    #[test]
    fn fixed_coordinator_commits_on_all_yes() {
        let mut w = tpc_world(1, &[true, true, true], false);
        w.run_to_quiescence(10_000);
        let c = w.program::<Coordinator>(Pid(0)).unwrap();
        assert_eq!(c.decided, Some(true));
        for i in 1..4 {
            assert_eq!(
                w.program::<Participant>(Pid(i)).unwrap().committed,
                Some(true)
            );
        }
    }

    #[test]
    fn buggy_coordinator_violates_atomicity_on_some_schedule() {
        // With FIFO the YES (from P1) may arrive before the NO —
        // manifestation depends on ordering; assert the violation is
        // reachable across seeds with jitter.
        let monitor = atomicity_monitor();
        let mut violated = false;
        for seed in 0..30 {
            let mut cfg = WorldConfig::seeded(seed);
            cfg.net = fixd_runtime::NetworkConfig::jittery(1, 60);
            let mut w = World::new(cfg);
            w.add_process(Box::new(Coordinator::buggy()));
            for &v in &[true, false] {
                w.add_process(Box::new(Participant::new(v)));
            }
            while w.step().is_some() {
                if monitor.violated_in(&w).is_some() {
                    violated = true;
                    break;
                }
            }
            if violated {
                break;
            }
        }
        assert!(violated);
    }

    #[test]
    fn patch_flips_the_flag_only_before_decision() {
        let patch = coordinator_patch();
        let undecided = Coordinator::buggy().snapshot();
        assert!(patch.applicable_to(&undecided));
        let prog = patch.instantiate(&undecided).unwrap();
        let c = prog.as_any().downcast_ref::<Coordinator>().unwrap();
        assert!(c.wait_for_all);
        // Already decided: precondition refuses (decision can't be unmade
        // by a code swap; rollback must go deeper).
        let mut decided = Coordinator::buggy();
        decided.decided = Some(true);
        assert!(!patch.applicable_to(&decided.snapshot()));
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut c = Coordinator::buggy();
        c.yes_votes = 2;
        c.decided = Some(true);
        let mut d = Coordinator::fixed();
        d.restore(&c.snapshot());
        assert_eq!(d.snapshot(), c.snapshot());
    }
}
