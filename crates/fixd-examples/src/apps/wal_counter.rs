//! A write-ahead-logged counter: crash-recovery over the disk model.
//!
//! The counter applies increments streamed by a driver and write-ahead
//! logs its value to a [`SharedDisk`], syncing every `sync_every`
//! operations. On a crash, unsynced progress is lost — but a restart
//! (the Healer's restart strategy with a factory capturing the same
//! disk) **recovers from the durable log**, losing at most
//! `sync_every − 1` operations instead of everything. This is the
//! classic durability/throughput trade-off, built on the paper's §4.5
//! "models of disk access".

use fixd_healer::Patch;
use fixd_runtime::{Context, Message, Pid, ProcHost, Program, SharedDisk, World, WorldConfig};

/// Driver → counter: one increment (payload: amount).
pub const INC: u16 = 40;

/// Streams `n_ops` increments of 1 to the counter (P1).
pub struct Driver {
    pub n_ops: u64,
}

impl Program for Driver {
    fn on_start(&mut self, ctx: &mut Context) {
        // One shared buffer for the whole increment stream: every INC
        // aliases the same allocation.
        let inc = fixd_runtime::Payload::from([1u8]);
        for _ in 0..self.n_ops {
            ctx.send(Pid(1), INC, inc.clone());
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        self.n_ops.to_le_bytes().to_vec()
    }
    fn restore(&mut self, b: &[u8]) {
        self.n_ops = u64::from_le_bytes(b.try_into().unwrap());
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Driver { n_ops: self.n_ops })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &'static str {
        "wal-driver"
    }
}

/// The durable counter (P1).
pub struct WalCounter {
    /// In-memory value (authoritative between syncs).
    pub value: u64,
    /// Sync the WAL every this many applied operations.
    pub sync_every: u64,
    ops_since_sync: u64,
    disk: SharedDisk,
}

/// Decode the counter value currently recoverable from `disk`.
pub fn durable_value(disk: &SharedDisk) -> u64 {
    disk.read(b"counter")
        .map(|v| u64::from_le_bytes(v.try_into().unwrap_or_default()))
        .unwrap_or(0)
}

impl WalCounter {
    /// Boot (or re-boot) from the durable log: recovers the last synced
    /// value.
    pub fn recover(disk: SharedDisk, sync_every: u64) -> Self {
        Self {
            value: durable_value(&disk),
            sync_every,
            ops_since_sync: 0,
            disk,
        }
    }

    /// The counter value currently recoverable from this counter's log.
    pub fn durable_value(&self) -> u64 {
        durable_value(&self.disk)
    }

    /// The disk handle (shared with the environment).
    pub fn disk(&self) -> &SharedDisk {
        &self.disk
    }
}

impl Program for WalCounter {
    fn on_message(&mut self, _ctx: &mut Context, msg: &Message) {
        if msg.tag != INC {
            return;
        }
        self.value += u64::from(msg.payload[0]);
        // Write-ahead: log the new value, sync on the configured cadence.
        self.disk.write(b"counter", &self.value.to_le_bytes());
        self.ops_since_sync += 1;
        if self.ops_since_sync >= self.sync_every {
            self.disk.sync();
            self.ops_since_sync = 0;
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        let mut b = self.value.to_le_bytes().to_vec();
        b.extend_from_slice(&self.sync_every.to_le_bytes());
        b.extend_from_slice(&self.ops_since_sync.to_le_bytes());
        b
    }
    fn restore(&mut self, b: &[u8]) {
        self.value = u64::from_le_bytes(b[0..8].try_into().unwrap());
        self.sync_every = u64::from_le_bytes(b[8..16].try_into().unwrap());
        self.ops_since_sync = u64::from_le_bytes(b[16..24].try_into().unwrap());
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(WalCounter {
            value: self.value,
            sync_every: self.sync_every,
            ops_since_sync: self.ops_since_sync,
            disk: self.disk.clone(),
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &'static str {
        "wal-counter"
    }
}

/// Build the world over an explicit [`WorldConfig`]: driver + counter
/// over `disk`, no implicit network override or fault plan (campaign
/// matrices inject both themselves).
pub fn wal_world_cfg(cfg: WorldConfig, n_ops: u64, sync_every: u64, disk: SharedDisk) -> World {
    let mut w = World::new(cfg);
    wal_populate(&mut w, n_ops, sync_every, disk);
    w
}

/// Populate any [`ProcHost`] with driver + WAL counter over `disk`
/// (shard-capable entry point for the campaign driver).
pub fn wal_populate(host: &mut dyn ProcHost, n_ops: u64, sync_every: u64, disk: SharedDisk) {
    host.spawn(Box::new(Driver { n_ops }));
    host.spawn(Box::new(WalCounter::recover(disk, sync_every)));
}

/// Build the world: driver + counter over `disk`, with an optional crash
/// of the counter at virtual time `crash_at`.
pub fn wal_world(
    seed: u64,
    n_ops: u64,
    sync_every: u64,
    disk: SharedDisk,
    crash_at: Option<u64>,
) -> World {
    let mut cfg = WorldConfig::seeded(seed);
    // Spread deliveries over virtual time so crashes land mid-stream.
    cfg.net = fixd_runtime::NetworkConfig::jittery(1, 100);
    let mut w = wal_world_cfg(cfg, n_ops, sync_every, disk);
    if let Some(at) = crash_at {
        w.set_fault_plan(fixd_runtime::FaultPlan::none().crash(Pid(1), at));
    }
    w
}

/// The "patch" used for crash recovery: same code, rebooted from the WAL
/// (restart-from-scratch with the factory capturing the shared disk).
pub fn recovery_patch(disk: SharedDisk, sync_every: u64) -> Patch {
    Patch::code_only("wal-recover", 1, 1, move || {
        Box::new(WalCounter::recover(disk.clone(), sync_every))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_core::{Fixd, FixdConfig};
    use fixd_healer::Healer;
    use fixd_timemachine::{TimeMachine, TimeMachineConfig};

    #[test]
    fn no_crash_counts_everything() {
        let disk = SharedDisk::new();
        let mut w = wal_world(1, 20, 4, disk.clone(), None);
        w.run_to_quiescence(10_000);
        assert_eq!(w.program::<WalCounter>(Pid(1)).unwrap().value, 20);
        // Durable value trails by < sync_every.
        let durable = u64::from_le_bytes(disk.read(b"counter").unwrap().try_into().unwrap());
        assert!(20 - durable < 4);
    }

    #[test]
    fn crash_loses_at_most_one_sync_window() {
        let disk = SharedDisk::new();
        let mut w = wal_world(1, 20, 4, disk.clone(), Some(15));
        w.run_to_quiescence(100_000);
        // Counter crashed mid-stream; disk crash semantics apply.
        disk.crash();
        let recovered = WalCounter::recover(disk.clone(), 4);
        let applied_before_crash = w.delivered_count(Pid(1));
        assert!(recovered.value <= applied_before_crash);
        assert!(
            applied_before_crash - recovered.value < 4,
            "lost {} ops, window is 4",
            applied_before_crash - recovered.value
        );
    }

    #[test]
    fn healer_restart_recovers_from_wal() {
        let disk = SharedDisk::new();
        let mut w = wal_world(1, 30, 5, disk.clone(), Some(60));
        let mut fixd = Fixd::new(2, FixdConfig::seeded(1));
        let out = fixd.supervise(&mut w, 100_000);
        assert!(out.quiescent, "crash leaves the world quiescent");
        // The counter is dead; some increments were dropped.
        assert_eq!(w.status(Pid(1)), fixd_runtime::ProcStatus::Crashed);
        disk.crash(); // its unsynced buffer dies with it
        let durable_at_crash =
            u64::from_le_bytes(disk.read(b"counter").unwrap().try_into().unwrap());
        // Heal by restart: the factory recovers from the WAL.
        let patch = recovery_patch(disk.clone(), 5);
        fixd.heal_restart(&mut w, &patch, &[Pid(1)]);
        let rebooted = w.program::<WalCounter>(Pid(1)).unwrap();
        assert_eq!(rebooted.value, durable_at_crash, "recovered from the log");
        assert!(rebooted.value > 0, "durable progress survived the crash");
    }

    #[test]
    fn tighter_sync_cadence_loses_less() {
        let loss_with = |sync_every: u64| {
            let disk = SharedDisk::new();
            let mut w = wal_world(1, 40, sync_every, disk.clone(), Some(50));
            w.run_to_quiescence(100_000);
            disk.crash();
            let applied = w.delivered_count(Pid(1));
            let durable = disk
                .read(b"counter")
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .unwrap_or(0);
            applied - durable
        };
        assert!(loss_with(1) == 0, "sync-every-op loses nothing");
        assert!(loss_with(8) >= loss_with(1));
        assert!(loss_with(8) < 8);
    }

    #[test]
    fn time_machine_rollback_composes_with_wal() {
        // Rollback rewinds the in-memory value; the WAL (environment
        // state) is ahead — recovery semantics still hold: durable value
        // never exceeds what was actually applied *somewhere*.
        let disk = SharedDisk::new();
        let mut w = wal_world(1, 12, 3, disk.clone(), None);
        let mut tm = TimeMachine::new(2, TimeMachineConfig::default());
        tm.run(&mut w, 8);
        let target = tm.interval(Pid(1)).saturating_sub(2);
        tm.rollback(&mut w, Pid(1), target).unwrap();
        tm.run(&mut w, 100_000);
        // Re-execution re-applies the increments; final value correct.
        assert_eq!(w.program::<WalCounter>(Pid(1)).unwrap().value, 12);
        let _ = Healer::new(); // silence unused-import lint paths
    }
}
