//! A source → cruncher work pipeline, for measuring salvaged
//! computation (experiment F5).
//!
//! The source streams `n_items` work items; the cruncher performs real
//! CPU work per item (iterated mixing) and records each result. The
//! buggy cruncher mis-handles items whose payload matches a poison
//! pattern (models the latent bug that fires deep into a long
//! computation). Recovery-strategy comparison:
//!
//! * restart-from-scratch recomputes *all* items;
//! * update-from-checkpoint salvages every item crunched before the
//!   poison and recomputes only the suffix.

use fixd_core::Monitor;
use fixd_healer::{migrate, Patch};
use fixd_runtime::wire::{fnv_mix, get_varint, put_varint};
use fixd_runtime::{Context, Message, Pid, ProcHost, Program, World, WorldConfig};

/// Source → cruncher: a work item (payload: item index as varint).
pub const WORK: u16 = 30;

/// Iterations of mixing per item — the knob for "how expensive is one
/// unit of computation".
pub const DEFAULT_COST: u64 = 1000;

/// The work source (P0).
pub struct Source {
    pub n_items: u64,
}

impl Program for Source {
    fn on_start(&mut self, ctx: &mut Context) {
        for i in 0..self.n_items {
            let mut p = Vec::new();
            put_varint(&mut p, i);
            ctx.send(Pid(1), WORK, p);
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        self.n_items.to_le_bytes().to_vec()
    }
    fn restore(&mut self, b: &[u8]) {
        self.n_items = u64::from_le_bytes(b.try_into().unwrap());
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Source {
            n_items: self.n_items,
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &'static str {
        "source"
    }
}

/// The real computation: `cost` rounds of 64-bit mixing.
pub fn crunch(item: u64, cost: u64) -> u64 {
    let mut h = item.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for i in 0..cost {
        h = fnv_mix(h, i);
    }
    h
}

/// Size of the cruncher's working-set buffer. Each item touches one
/// cell, so checkpoint deltas are sparse — the access pattern
/// copy-on-write checkpointing exploits (paper §4.2).
pub const SCRATCH_SIZE: usize = 8192;

/// The cruncher (P1). `poison_at`: the item index the buggy version
/// corrupts (produces 0 instead of the real result).
pub struct Cruncher {
    pub results: Vec<(u64, u64)>,
    pub cost: u64,
    pub poison_at: Option<u64>,
    /// Working memory; one cell mutated per item.
    pub scratch: Vec<u8>,
}

impl Cruncher {
    /// A correct cruncher.
    pub fn correct(cost: u64) -> Self {
        Self {
            results: Vec::new(),
            cost,
            poison_at: None,
            scratch: vec![0; SCRATCH_SIZE],
        }
    }

    /// A cruncher that corrupts item `poison_at`.
    pub fn buggy(cost: u64, poison_at: u64) -> Self {
        Self {
            poison_at: Some(poison_at),
            ..Self::correct(cost)
        }
    }
}

impl Program for Cruncher {
    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        if msg.tag != WORK {
            return;
        }
        let mut pos = 0;
        let item = get_varint(&msg.payload, &mut pos).unwrap_or(0);
        let result = if self.poison_at == Some(item) {
            0 // BUG: corrupted result
        } else {
            crunch(item, self.cost)
        };
        let cell = (item as usize).wrapping_mul(97) % self.scratch.len();
        self.scratch[cell] = self.scratch[cell].wrapping_add(result as u8);
        self.results.push((item, result));
        let mut out = Vec::new();
        put_varint(&mut out, item);
        put_varint(&mut out, result);
        ctx.output(out);
    }
    fn snapshot(&self) -> Vec<u8> {
        // Layout: fixed-width header + fixed-size scratch FIRST, growing
        // results tail LAST — so sparse scratch mutations and appends
        // dirty few pages (checkpoint-friendly, like a real heap image).
        let mut b = Vec::with_capacity(self.scratch.len() + self.results.len() * 10 + 32);
        b.extend_from_slice(&self.cost.to_le_bytes());
        match self.poison_at {
            Some(p) => {
                b.push(1);
                b.extend_from_slice(&p.to_le_bytes());
            }
            None => {
                b.push(0);
                b.extend_from_slice(&0u64.to_le_bytes());
            }
        }
        b.extend_from_slice(&(self.scratch.len() as u64).to_le_bytes());
        b.extend_from_slice(&self.scratch);
        put_varint(&mut b, self.results.len() as u64);
        for &(i, r) in &self.results {
            put_varint(&mut b, i);
            put_varint(&mut b, r);
        }
        b
    }
    fn restore(&mut self, b: &[u8]) {
        self.cost = u64::from_le_bytes(b[0..8].try_into().unwrap());
        let has_poison = b[8] == 1;
        let poison = u64::from_le_bytes(b[9..17].try_into().unwrap());
        self.poison_at = has_poison.then_some(poison);
        let slen = u64::from_le_bytes(b[17..25].try_into().unwrap()) as usize;
        self.scratch = b[25..25 + slen].to_vec();
        let mut pos = 25 + slen;
        let n = get_varint(b, &mut pos).unwrap_or(0);
        self.results.clear();
        for _ in 0..n {
            let i = get_varint(b, &mut pos).unwrap_or(0);
            let r = get_varint(b, &mut pos).unwrap_or(0);
            self.results.push((i, r));
        }
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Cruncher {
            results: self.results.clone(),
            cost: self.cost,
            poison_at: self.poison_at,
            scratch: self.scratch.clone(),
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &'static str {
        "cruncher"
    }
}

/// Correctness monitor: every recorded result matches the reference
/// computation.
pub fn results_monitor() -> Monitor {
    let ok = |c: &Cruncher| c.results.iter().all(|&(i, r)| r == crunch(i, c.cost));
    Monitor::local::<Cruncher>("results-correct", move |_, c| ok(c))
}

/// Build the 2-process pipeline world over an explicit [`WorldConfig`]
/// (campaign matrices inject network pathologies through the config).
pub fn pipeline_world_cfg(
    cfg: WorldConfig,
    n_items: u64,
    cost: u64,
    poison_at: Option<u64>,
) -> World {
    let mut w = World::new(cfg);
    pipeline_populate(&mut w, n_items, cost, poison_at);
    w
}

/// Populate any [`ProcHost`] with the source → cruncher pipeline
/// (shard-capable entry point for the campaign driver).
pub fn pipeline_populate(host: &mut dyn ProcHost, n_items: u64, cost: u64, poison_at: Option<u64>) {
    host.spawn(Box::new(Source { n_items }));
    host.spawn(Box::new(match poison_at {
        Some(p) => Cruncher::buggy(cost, p),
        None => Cruncher::correct(cost),
    }));
}

/// Build the 2-process pipeline world.
pub fn pipeline_world(seed: u64, n_items: u64, cost: u64, poison_at: Option<u64>) -> World {
    pipeline_world_cfg(WorldConfig::seeded(seed), n_items, cost, poison_at)
}

/// The fix: stop poisoning. State layout is identical; the migration
/// clears the poison flag.
pub fn cruncher_patch(cost: u64) -> Patch {
    Patch::code_only("cruncher-fix", 1, 2, move || {
        Box::new(Cruncher::correct(cost))
    })
    .with_migration(migrate::from_fn(|old| {
        // Re-encode with poison flag cleared: decode then re-encode.
        let mut c = Cruncher::correct(0);
        c.restore(old);
        c.poison_at = None;
        Ok(c.snapshot())
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_pipeline_produces_reference_results() {
        let mut w = pipeline_world(1, 8, 100, None);
        w.run_to_quiescence(10_000);
        let monitor = results_monitor();
        assert!(monitor.violated_in(&w).is_none());
        let c = w.program::<Cruncher>(Pid(1)).unwrap();
        assert_eq!(c.results.len(), 8);
    }

    #[test]
    fn poison_detected_by_monitor() {
        let mut w = pipeline_world(1, 8, 100, Some(5));
        let monitor = results_monitor();
        let mut fired_at = None;
        let mut steps = 0u64;
        while w.step().is_some() {
            steps += 1;
            if monitor.violated_in(&w).is_some() {
                fired_at = Some(steps);
                break;
            }
        }
        let fired_at = fired_at.expect("poison must be detected");
        // Items 0..=4 crunched fine before detection.
        let c = w.program::<Cruncher>(Pid(1)).unwrap();
        assert_eq!(
            c.results.len(),
            6,
            "detected right at item 5 (after {fired_at} steps)"
        );
    }

    #[test]
    fn patch_clears_poison_and_keeps_results() {
        let mut buggy = Cruncher::buggy(100, 3);
        buggy.results.push((0, crunch(0, 100)));
        let patch = cruncher_patch(100);
        let fixed = patch.instantiate(&buggy.snapshot()).unwrap();
        let c = fixed.as_any().downcast_ref::<Cruncher>().unwrap();
        assert_eq!(c.poison_at, None);
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.cost, 100);
    }

    #[test]
    fn crunch_is_deterministic_and_item_sensitive() {
        assert_eq!(crunch(3, 50), crunch(3, 50));
        assert_ne!(crunch(3, 50), crunch(4, 50));
        assert_ne!(crunch(3, 50), crunch(3, 51));
    }
}
