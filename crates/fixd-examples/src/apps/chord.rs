//! Chord distributed hash table (Stoica et al., SIGCOMM '01) — the
//! scale scenario for wide worlds.
//!
//! Each member hashes to a 64-bit identifier on a ring and owns the
//! keys in `(pred, self]`. Lookups route greedily through finger
//! tables (successors of `id + 2^k`), so resolution takes O(log n)
//! hops. Nodes run bounded stabilize/notify rounds (ask your successor
//! who its predecessor is; adopt a closer successor; notify it of
//! yourself) and issue random lookups, verifying each answer against
//! the membership oracle.
//!
//! Two properties matter for the scale benchmark
//! (`fixd-bench/src/bin/scale_demo.rs`):
//!
//! * **Width invariance** — a node's behaviour depends only on the
//!   [`ChordRing`] membership it is built with, never on
//!   `world_size()`. A 768-member ring embedded in a 10^3-process
//!   world and in a 10^6-process world produces byte-identical event
//!   sequences, which is what lets the benchmark compare steps/sec
//!   across widths on the *same* workload.
//! * **Bounded execution** — stabilize rounds and lookups are budgets,
//!   not periodic forever, so the world quiesces and `step()` drains.
//!
//! Churn is driven from outside: the harness calls
//! [`fixd_runtime::World::crash_now`], then
//! [`fixd_runtime::World::revive`] + `schedule_start`; `on_start`
//! re-seeds pointers from the ring oracle (a rejoin), and surviving
//! nodes' stabilize rounds absorb the transient.

use std::collections::BTreeMap;
use std::sync::Arc;

use fixd_runtime::wire::fnv_mix;
use fixd_runtime::{Context, Message, Pid, ProcHost, Program, TimerId, World, WorldConfig};

/// Route this lookup: `[key u64, origin u32, hops u8]`.
pub const LOOKUP_REQ: u16 = 1;
/// Lookup answer to the origin: `[key u64, owner u32, hops u8]`.
pub const LOOKUP_DONE: u16 = 2;
/// "Who is your predecessor?" (sent to our successor).
pub const STABILIZE: u16 = 3;
/// Stabilize answer: `[pred u32]`.
pub const STAB_REPLY: u16 = 4;
/// "I might be your predecessor" (src is the candidate).
pub const NOTIFY: u16 = 5;
/// Route a keyed write to its owner: `[key u64, val u64, origin u32, hops u8]`.
pub const PUT_REQ: u16 = 6;
/// Owner's write ack to the origin: `[key u64, val u64]`.
pub const PUT_ACK: u16 = 7;
/// Route a keyed read to its owner: `[key u64, origin u32, hops u8]`.
pub const GET_REQ: u16 = 8;
/// Owner's read answer to the origin: `[key u64, val u64, found u8]`.
pub const GET_REPLY: u16 = 9;
/// Owner → successor replica write: `[key u64, val u64]`.
pub const REPLICATE: u16 = 10;

/// First byte of a keyed-read output record (`[KV_READ_MARK, ok]`),
/// distinct from lookup outputs (`[ok, hops]`, ok ∈ {0, 1}) so model
/// invariants can pattern-match read outcomes.
pub const KV_READ_MARK: u8 = 2;

/// Virtual-time gap between a node's protocol rounds.
pub const ROUND_TIME: u64 = 8;
/// Routing safety valve: drop lookups that somehow exceed this many
/// hops (cannot happen on a stable oracle-seeded ring).
pub const MAX_HOPS: u8 = 64;

/// SplitMix64 — the ring's identifier hash.
fn ring_hash(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Is `x` in the half-open ring interval `(a, b]`?
fn in_open_closed(a: u64, b: u64, x: u64) -> bool {
    if a < b {
        a < x && x <= b
    } else {
        // Wrapped interval (or a == b: the full circle).
        x > a || x <= b
    }
}

/// Is `x` in the open ring interval `(a, b)`?
fn in_open_open(a: u64, b: u64, x: u64) -> bool {
    if a < b {
        a < x && x < b
    } else if a == b {
        x != a
    } else {
        x > a || x < b
    }
}

/// The membership oracle: which processes participate in the ring and
/// where they sit. Shared (`Arc`) by every member — it is the *only*
/// world knowledge a node has, which is what makes behaviour
/// independent of world width.
#[derive(Debug)]
pub struct ChordRing {
    /// Members sorted by ring id.
    members: Vec<(u64, Pid)>,
}

impl ChordRing {
    /// Build the ring over `member_pids` (any order; ids are hashed
    /// from the pid, with the rare collision broken deterministically).
    pub fn new(member_pids: &[Pid]) -> Self {
        let mut members: Vec<(u64, Pid)> = member_pids
            .iter()
            .map(|&p| (ring_hash(u64::from(p.0) << 1 | 1), p))
            .collect();
        members.sort_unstable();
        members.dedup_by_key(|m| m.0);
        Self { members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The ring identifier of `pid`.
    pub fn id_of(&self, pid: Pid) -> u64 {
        ring_hash(u64::from(pid.0) << 1 | 1)
    }

    /// The member that owns `key`: the first member at or clockwise
    /// after `key` on the ring.
    pub fn successor_of(&self, key: u64) -> (u64, Pid) {
        let i = self.members.partition_point(|&(id, _)| id < key);
        self.members[i % self.members.len()]
    }

    /// The member strictly clockwise-before `id`.
    pub fn predecessor_of(&self, id: u64) -> (u64, Pid) {
        let i = self.members.partition_point(|&(mid, _)| mid < id);
        self.members[(i + self.members.len() - 1) % self.members.len()]
    }

    /// The finger table for the node at `id`: `successor_of(id + 2^k)`
    /// for each bit, deduplicated (oracle-seeded, as after a full
    /// fix-fingers pass).
    pub fn fingers_for(&self, id: u64) -> Vec<(u64, Pid)> {
        let mut out: Vec<(u64, Pid)> = Vec::with_capacity(16);
        for k in 0..64 {
            let f = self.successor_of(id.wrapping_add(1u64 << k));
            if out.last() != Some(&f) && f.0 != id {
                out.push(f);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Per-node lookup statistics, checked by tests and the benchmark.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LookupStats {
    /// Lookups whose answer matched the oracle.
    pub ok: u64,
    /// Lookups whose answer disagreed with the oracle (possible only
    /// under churn, while pointers are stale).
    pub bad: u64,
    /// Total routing hops across answered lookups.
    pub hops: u64,
}

/// Per-node keyed-storage statistics (the put/get workload).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Writes this origin issued that the owner acknowledged.
    pub put_acked: u64,
    /// Read-after-write checks that returned this origin's value.
    pub get_ok: u64,
    /// Reads that missed or returned a wrong value (possible only under
    /// loss or churn — never on a lossless stable ring).
    pub get_bad: u64,
    /// Replica writes this node applied on behalf of its predecessor.
    pub replicas: u64,
}

/// One Chord member.
pub struct ChordNode {
    ring: Arc<ChordRing>,
    /// Our ring identifier (derived from our pid on start).
    id: u64,
    /// Current successor (first node clockwise).
    succ: Pid,
    /// Current predecessor, if known.
    pred: Option<Pid>,
    /// Finger targets, sorted by ring id.
    fingers: Vec<(u64, Pid)>,
    /// Stabilize rounds left to run.
    stabilize_left: u32,
    /// Lookups left to issue.
    lookups_left: u32,
    /// Deterministic compute iterations burned per delivered message
    /// (models per-hop application work: hash checks, verification).
    /// Zero by default; the sharded campaign bench turns this up to
    /// make wide cells handler-heavy.
    work: u64,
    /// Accumulator the burned work folds into (part of the snapshot, so
    /// the work is real state the compiler cannot elide).
    work_acc: u64,
    /// Completed-lookup stats.
    pub stats: LookupStats,
    /// Keyed store: the keys this node owns (plus replicas of its
    /// predecessor's keys).
    pub kv: BTreeMap<u64, u64>,
    /// Writes the keyed workload still has to issue (one per round).
    puts_left: u32,
    /// Total writes the workload was configured with (`> 0` enables the
    /// keyed snapshot block).
    puts_total: u32,
    /// Monotonic write counter — keys are derived from `(pid, seq)`, so
    /// origins never race on the same key.
    put_seq: u32,
    /// What this origin wrote (key → value), for read-after-write checks.
    expected: BTreeMap<u64, u64>,
    /// Keyed-workload stats.
    pub kv_stats: KvStats,
}

/// The per-delivery compute burn: `iters` FNV rounds over the payload.
fn burn(iters: u64, payload: &[u8], acc: u64) -> u64 {
    let mut h = acc ^ 0x9E37_79B9_7F4A_7C15;
    for i in 0..iters {
        h = fnv_mix(h, i);
        for &b in payload {
            h = fnv_mix(h, u64::from(b));
        }
    }
    h
}

impl ChordNode {
    /// A fresh member with the given protocol budgets.
    pub fn new(ring: Arc<ChordRing>, stabilize_rounds: u32, lookups: u32) -> Self {
        Self {
            ring,
            id: 0,
            succ: Pid(0),
            pred: None,
            fingers: Vec::new(),
            stabilize_left: stabilize_rounds,
            lookups_left: lookups,
            work: 0,
            work_acc: 0,
            stats: LookupStats::default(),
            kv: BTreeMap::new(),
            puts_left: 0,
            puts_total: 0,
            put_seq: 0,
            expected: BTreeMap::new(),
            kv_stats: KvStats::default(),
        }
    }

    /// Burn `iters` deterministic compute iterations per delivered
    /// message (builder style).
    pub fn with_work(mut self, iters: u64) -> Self {
        self.work = iters;
        self
    }

    /// Enable the keyed-storage workload: issue `puts` writes (one per
    /// protocol round), each followed — on ack — by a read-after-write
    /// check against the value this origin wrote (builder style).
    pub fn with_kv_workload(mut self, puts: u32) -> Self {
        self.puts_left = puts;
        self.puts_total = puts;
        self
    }

    /// Route `key`: the next hop and whether that hop is the owner.
    fn next_hop(&self, key: u64) -> (Pid, bool) {
        let succ_id = self.ring.id_of(self.succ);
        if in_open_closed(self.id, succ_id, key) {
            return (self.succ, true);
        }
        // Closest preceding finger: the highest finger in (self, key).
        let mut best: Option<(u64, Pid)> = None;
        for &(fid, fpid) in &self.fingers {
            if in_open_open(self.id, key, fid) {
                best = match best {
                    Some((bid, _)) if in_open_open(bid, key, fid) => Some((fid, fpid)),
                    Some(b) => Some(b),
                    None => Some((fid, fpid)),
                };
            }
        }
        (best.map_or(self.succ, |(_, p)| p), false)
    }

    /// Does this node own `key` on the oracle ring?
    fn owns(&self, key: u64) -> bool {
        self.ring.successor_of(key).0 == self.id
    }

    /// Store a write locally and replicate it to our successor (the
    /// next member clockwise — the node that inherits our keys).
    fn store_and_replicate(&mut self, ctx: &mut Context, key: u64, val: u64) {
        self.kv.insert(key, val);
        if self.succ != ctx.pid() {
            let mut buf = [0u8; 16];
            buf[..8].copy_from_slice(&key.to_le_bytes());
            buf[8..].copy_from_slice(&val.to_le_bytes());
            ctx.send(self.succ, REPLICATE, buf.to_vec());
        }
    }

    /// Route a write toward its owner; the owner stores, replicates,
    /// and acks the origin. Self-owned keys are handled locally (no
    /// self-send).
    fn route_put(&mut self, ctx: &mut Context, key: u64, val: u64, origin: Pid, hops: u8) {
        if hops >= MAX_HOPS {
            return;
        }
        if self.owns(key) {
            self.store_and_replicate(ctx, key, val);
            if origin == ctx.pid() {
                self.put_acked(ctx, key);
            } else {
                let mut buf = [0u8; 16];
                buf[..8].copy_from_slice(&key.to_le_bytes());
                buf[8..].copy_from_slice(&val.to_le_bytes());
                ctx.send(origin, PUT_ACK, buf.to_vec());
            }
        } else {
            let (hop, _) = self.next_hop(key);
            let mut buf = [0u8; 21];
            buf[..8].copy_from_slice(&key.to_le_bytes());
            buf[8..16].copy_from_slice(&val.to_le_bytes());
            buf[16..20].copy_from_slice(&origin.0.to_le_bytes());
            buf[20] = hops + 1;
            ctx.send(hop, PUT_REQ, buf.to_vec());
        }
    }

    /// The origin saw its write acknowledged: immediately issue the
    /// read-after-write check for that key.
    fn put_acked(&mut self, ctx: &mut Context, key: u64) {
        self.kv_stats.put_acked += 1;
        self.route_get(ctx, key, ctx.pid(), 0);
    }

    /// Route a read toward its owner; the owner answers the origin.
    fn route_get(&mut self, ctx: &mut Context, key: u64, origin: Pid, hops: u8) {
        if hops >= MAX_HOPS {
            return;
        }
        if self.owns(key) {
            let (val, found) = match self.kv.get(&key) {
                Some(&v) => (v, 1u8),
                None => (0, 0),
            };
            if origin == ctx.pid() {
                self.got_reply(ctx, key, val, found);
            } else {
                let mut buf = [0u8; 17];
                buf[..8].copy_from_slice(&key.to_le_bytes());
                buf[8..16].copy_from_slice(&val.to_le_bytes());
                buf[16] = found;
                ctx.send(origin, GET_REPLY, buf.to_vec());
            }
        } else {
            let (hop, _) = self.next_hop(key);
            let mut buf = [0u8; 13];
            buf[..8].copy_from_slice(&key.to_le_bytes());
            buf[8..12].copy_from_slice(&origin.0.to_le_bytes());
            buf[12] = hops + 1;
            ctx.send(hop, GET_REQ, buf.to_vec());
        }
    }

    /// Judge a read answer against what this origin wrote.
    fn got_reply(&mut self, ctx: &mut Context, key: u64, val: u64, found: u8) {
        let ok = found == 1 && self.expected.get(&key) == Some(&val);
        if ok {
            self.kv_stats.get_ok += 1;
        } else {
            self.kv_stats.get_bad += 1;
        }
        ctx.output(vec![KV_READ_MARK, u8::from(ok)]);
    }

    fn forward_lookup(&mut self, ctx: &mut Context, key: u64, origin: Pid, hops: u8) {
        if hops >= MAX_HOPS {
            return; // routing loop safety valve; unreachable when stable
        }
        let (hop, is_owner) = self.next_hop(key);
        let mut buf = [0u8; 13];
        buf[..8].copy_from_slice(&key.to_le_bytes());
        buf[12] = hops + 1;
        if is_owner {
            buf[8..12].copy_from_slice(&hop.0.to_le_bytes());
            ctx.send(origin, LOOKUP_DONE, buf.to_vec());
        } else {
            buf[8..12].copy_from_slice(&origin.0.to_le_bytes());
            ctx.send(hop, LOOKUP_REQ, buf.to_vec());
        }
    }
}

fn decode_lookup(payload: &[u8]) -> (u64, Pid, u8) {
    let key = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let pid = Pid(u32::from_le_bytes(payload[8..12].try_into().unwrap()));
    (key, pid, payload[12])
}

impl Program for ChordNode {
    fn on_start(&mut self, ctx: &mut Context) {
        // (Re)join: seed pointers from the oracle, as a node that has
        // completed its join protocol. A revived node passes through
        // here again, which models rejoin-after-crash.
        self.id = self.ring.id_of(ctx.pid());
        self.succ = self.ring.successor_of(self.id.wrapping_add(1)).1;
        self.pred = Some(self.ring.predecessor_of(self.id).1);
        self.fingers = self.ring.fingers_for(self.id);
        // Jittered first round so the ring's rounds interleave.
        let jitter = ctx.random_below(ROUND_TIME);
        ctx.set_timer(1 + jitter);
    }

    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        if self.work > 0 {
            self.work_acc = burn(self.work, &msg.payload, self.work_acc);
        }
        match msg.tag {
            LOOKUP_REQ => {
                let (key, origin, hops) = decode_lookup(&msg.payload);
                self.forward_lookup(ctx, key, origin, hops);
            }
            LOOKUP_DONE => {
                let (key, owner, hops) = decode_lookup(&msg.payload);
                let oracle = self.ring.successor_of(key).1;
                if owner == oracle {
                    self.stats.ok += 1;
                } else {
                    self.stats.bad += 1;
                }
                self.stats.hops += u64::from(hops);
                ctx.output(vec![u8::from(owner == oracle), hops]);
            }
            STABILIZE => {
                let pred = self.pred.unwrap_or(Pid(ctx.pid().0));
                ctx.send(msg.src, STAB_REPLY, pred.0.to_le_bytes().to_vec());
            }
            STAB_REPLY => {
                let cand = Pid(u32::from_le_bytes(msg.payload[..4].try_into().unwrap()));
                let cand_id = self.ring.id_of(cand);
                let succ_id = self.ring.id_of(self.succ);
                if cand != Pid(ctx.pid().0) && in_open_open(self.id, succ_id, cand_id) {
                    self.succ = cand;
                }
                ctx.send(self.succ, NOTIFY, Vec::new());
            }
            NOTIFY => {
                let cand_id = self.ring.id_of(msg.src);
                let adopt = match self.pred {
                    None => true,
                    Some(p) => in_open_open(self.ring.id_of(p), self.id, cand_id),
                };
                if adopt {
                    self.pred = Some(msg.src);
                }
            }
            PUT_REQ => {
                let key = u64::from_le_bytes(msg.payload[..8].try_into().unwrap());
                let val = u64::from_le_bytes(msg.payload[8..16].try_into().unwrap());
                let origin = Pid(u32::from_le_bytes(msg.payload[16..20].try_into().unwrap()));
                self.route_put(ctx, key, val, origin, msg.payload[20]);
            }
            PUT_ACK => {
                let key = u64::from_le_bytes(msg.payload[..8].try_into().unwrap());
                self.put_acked(ctx, key);
            }
            GET_REQ => {
                let (key, origin, hops) = decode_lookup(&msg.payload);
                self.route_get(ctx, key, origin, hops);
            }
            GET_REPLY => {
                let key = u64::from_le_bytes(msg.payload[..8].try_into().unwrap());
                let val = u64::from_le_bytes(msg.payload[8..16].try_into().unwrap());
                self.got_reply(ctx, key, val, msg.payload[16]);
            }
            REPLICATE => {
                let key = u64::from_le_bytes(msg.payload[..8].try_into().unwrap());
                let val = u64::from_le_bytes(msg.payload[8..16].try_into().unwrap());
                self.kv.insert(key, val);
                self.kv_stats.replicas += 1;
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, _t: TimerId) {
        let mut more = false;
        if self.stabilize_left > 0 {
            self.stabilize_left -= 1;
            ctx.send(self.succ, STABILIZE, Vec::new());
            more |= self.stabilize_left > 0;
        }
        if self.lookups_left > 0 {
            self.lookups_left -= 1;
            let key = ctx.random();
            self.forward_lookup(ctx, key, ctx.pid(), 0);
            more |= self.lookups_left > 0;
        }
        if self.puts_left > 0 {
            self.puts_left -= 1;
            let seq = self.put_seq;
            self.put_seq += 1;
            // Keys are derived from (pid, seq) so origins never write
            // the same key; the value binds both so a wrong answer
            // cannot masquerade as right.
            let key = ring_hash((u64::from(ctx.pid().0) + 1) << 20 | u64::from(seq));
            let val = ring_hash(key ^ 0xBEE5_u64);
            self.expected.insert(key, val);
            self.route_put(ctx, key, val, ctx.pid(), 0);
            more |= self.puts_left > 0;
        }
        if more {
            ctx.set_timer(ROUND_TIME);
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        b.extend_from_slice(&self.id.to_le_bytes());
        b.extend_from_slice(&self.succ.0.to_le_bytes());
        b.extend_from_slice(&self.pred.map_or(u32::MAX, |p| p.0).to_le_bytes());
        b.extend_from_slice(&self.stabilize_left.to_le_bytes());
        b.extend_from_slice(&self.lookups_left.to_le_bytes());
        b.extend_from_slice(&self.stats.ok.to_le_bytes());
        b.extend_from_slice(&self.stats.bad.to_le_bytes());
        b.extend_from_slice(&self.stats.hops.to_le_bytes());
        b.extend_from_slice(&self.work_acc.to_le_bytes());
        // The keyed-storage block is appended only when the workload is
        // enabled, so pure-lookup nodes keep the legacy 56-byte layout
        // (scale benches and goldens fingerprint these snapshots).
        if self.puts_total > 0 {
            b.extend_from_slice(&self.puts_total.to_le_bytes());
            b.extend_from_slice(&self.puts_left.to_le_bytes());
            b.extend_from_slice(&self.put_seq.to_le_bytes());
            b.extend_from_slice(&self.kv_stats.put_acked.to_le_bytes());
            b.extend_from_slice(&self.kv_stats.get_ok.to_le_bytes());
            b.extend_from_slice(&self.kv_stats.get_bad.to_le_bytes());
            b.extend_from_slice(&self.kv_stats.replicas.to_le_bytes());
            for map in [&self.expected, &self.kv] {
                b.extend_from_slice(&(map.len() as u32).to_le_bytes());
                for (&k, &v) in map {
                    b.extend_from_slice(&k.to_le_bytes());
                    b.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        b
    }

    fn restore(&mut self, b: &[u8]) {
        self.id = u64::from_le_bytes(b[..8].try_into().unwrap());
        self.succ = Pid(u32::from_le_bytes(b[8..12].try_into().unwrap()));
        let pred = u32::from_le_bytes(b[12..16].try_into().unwrap());
        self.pred = (pred != u32::MAX).then_some(Pid(pred));
        self.stabilize_left = u32::from_le_bytes(b[16..20].try_into().unwrap());
        self.lookups_left = u32::from_le_bytes(b[20..24].try_into().unwrap());
        self.stats.ok = u64::from_le_bytes(b[24..32].try_into().unwrap());
        self.stats.bad = u64::from_le_bytes(b[32..40].try_into().unwrap());
        self.stats.hops = u64::from_le_bytes(b[40..48].try_into().unwrap());
        self.work_acc = u64::from_le_bytes(b[48..56].try_into().unwrap());
        if b.len() > 56 {
            let mut at = 56;
            let u32_at = |at: &mut usize| {
                let v = u32::from_le_bytes(b[*at..*at + 4].try_into().unwrap());
                *at += 4;
                v
            };
            let u64_at = |at: &mut usize| {
                let v = u64::from_le_bytes(b[*at..*at + 8].try_into().unwrap());
                *at += 8;
                v
            };
            self.puts_total = u32_at(&mut at);
            self.puts_left = u32_at(&mut at);
            self.put_seq = u32_at(&mut at);
            self.kv_stats.put_acked = u64_at(&mut at);
            self.kv_stats.get_ok = u64_at(&mut at);
            self.kv_stats.get_bad = u64_at(&mut at);
            self.kv_stats.replicas = u64_at(&mut at);
            self.expected.clear();
            self.kv.clear();
            for map in [&mut self.expected, &mut self.kv] {
                let len = u32_at(&mut at);
                for _ in 0..len {
                    let k = u64_at(&mut at);
                    let v = u64_at(&mut at);
                    map.insert(k, v);
                }
            }
        } else {
            self.puts_total = 0;
            self.puts_left = 0;
            self.put_seq = 0;
            self.kv_stats = KvStats::default();
            self.expected.clear();
            self.kv.clear();
        }
        // Fingers are derived state: rebuild from the oracle.
        self.fingers = self.ring.fingers_for(self.id);
    }

    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Self {
            ring: Arc::clone(&self.ring),
            id: self.id,
            succ: self.succ,
            pred: self.pred,
            fingers: self.fingers.clone(),
            stabilize_left: self.stabilize_left,
            lookups_left: self.lookups_left,
            work: self.work,
            work_acc: self.work_acc,
            stats: self.stats,
            kv: self.kv.clone(),
            puts_left: self.puts_left,
            puts_total: self.puts_total,
            put_seq: self.put_seq,
            expected: self.expected.clone(),
            kv_stats: self.kv_stats,
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &'static str {
        "chord-node"
    }
}

/// A process factory for Chord members over a shared ring oracle —
/// pass to [`World::add_lazy_processes`] so only the members that
/// actually run ever materialize.
pub fn chord_factory(
    ring: Arc<ChordRing>,
    stabilize_rounds: u32,
    lookups: u32,
) -> impl Fn(Pid) -> Box<dyn Program> + Send + Sync {
    move |_pid| Box::new(ChordNode::new(Arc::clone(&ring), stabilize_rounds, lookups))
}

/// A dense world of `n` Chord members (pids `0..n`), for tests: every
/// node runs `stabilize_rounds` rounds and issues `lookups` lookups.
pub fn chord_world(n: usize, seed: u64, stabilize_rounds: u32, lookups: u32) -> World {
    let mut w = World::new(WorldConfig::seeded(seed));
    chord_populate(&mut w, n, stabilize_rounds, lookups);
    w
}

/// Populate any [`ProcHost`] with a dense `n`-member Chord ring
/// (shard-capable entry point for the campaign driver). Members are
/// spawned eagerly so the topology is identical on serial and sharded
/// hosts without lazy-materialization bookkeeping.
pub fn chord_populate(host: &mut dyn ProcHost, n: usize, stabilize_rounds: u32, lookups: u32) {
    chord_populate_work(host, n, stabilize_rounds, lookups, 0);
}

/// [`chord_populate`] with a per-delivery compute burn (see
/// [`ChordNode::with_work`]) — the handler-heavy regime the sharded
/// campaign bench measures.
pub fn chord_populate_work(
    host: &mut dyn ProcHost,
    n: usize,
    stabilize_rounds: u32,
    lookups: u32,
    work: u64,
) {
    let members: Vec<Pid> = (0..n as u32).map(Pid).collect();
    let ring = Arc::new(ChordRing::new(&members));
    for _ in 0..n {
        host.spawn(Box::new(
            ChordNode::new(Arc::clone(&ring), stabilize_rounds, lookups).with_work(work),
        ));
    }
}

/// Populate any [`ProcHost`] with a dense `n`-member ring running the
/// keyed-storage workload: every node issues `puts` writes (routed to
/// their ring owners, replicated to the owner's successor) and — on
/// each ack — a read-after-write check against the value it wrote.
pub fn chord_kv_populate(host: &mut dyn ProcHost, n: usize, stabilize_rounds: u32, puts: u32) {
    let members: Vec<Pid> = (0..n as u32).map(Pid).collect();
    let ring = Arc::new(ChordRing::new(&members));
    for _ in 0..n {
        host.spawn(Box::new(
            ChordNode::new(Arc::clone(&ring), stabilize_rounds, 0).with_kv_workload(puts),
        ));
    }
}

/// A dense keyed-storage world of `n` members, for tests and the model
/// checker.
pub fn chord_kv_world(n: usize, seed: u64, stabilize_rounds: u32, puts: u32) -> World {
    let mut w = World::new(WorldConfig::seeded(seed));
    chord_kv_populate(&mut w, n, stabilize_rounds, puts);
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut World) -> u64 {
        let mut steps = 0;
        while w.step().is_some() {
            steps += 1;
        }
        steps
    }

    fn total_stats(w: &World, n: usize) -> LookupStats {
        let mut t = LookupStats::default();
        for i in 0..n {
            let s = w.program::<ChordNode>(Pid(i as u32)).unwrap().stats;
            t.ok += s.ok;
            t.bad += s.bad;
            t.hops += s.hops;
        }
        t
    }

    #[test]
    fn ring_oracle_is_consistent() {
        let members: Vec<Pid> = (0..32).map(Pid).collect();
        let ring = ChordRing::new(&members);
        assert_eq!(ring.len(), 32);
        for &p in &members {
            let id = ring.id_of(p);
            // A member owns its own id.
            assert_eq!(ring.successor_of(id).1, p);
            // successor(pred(x)) round-trips.
            let (pid_id, _) = ring.predecessor_of(id);
            assert_eq!(ring.successor_of(pid_id.wrapping_add(1)).1, p);
        }
    }

    #[test]
    fn stable_ring_resolves_all_lookups_in_log_hops() {
        let n = 32;
        let lookups_per_node = 4;
        let mut w = chord_world(n, 0xC0DE, 2, lookups_per_node);
        drain(&mut w);
        let t = total_stats(&w, n);
        assert_eq!(t.bad, 0, "oracle-seeded ring must answer correctly");
        assert_eq!(t.ok, n as u64 * u64::from(lookups_per_node));
        let avg_hops = t.hops as f64 / t.ok as f64;
        assert!(
            avg_hops <= 2.0 * (n as f64).log2(),
            "finger routing must stay logarithmic: avg {avg_hops:.2} hops"
        );
    }

    #[test]
    fn same_seed_same_execution() {
        let run = |seed| {
            let mut w = chord_world(16, seed, 2, 3);
            let steps = drain(&mut w);
            (steps, total_stats(&w, 16))
        };
        assert_eq!(run(7), run(7), "chord worlds must be deterministic");
        assert_ne!(
            run(7).1.hops,
            run(8).1.hops,
            "different seeds should route different keys"
        );
    }

    #[test]
    fn survives_churn_and_keeps_resolving() {
        let n = 24;
        let mut w = chord_world(n, 0xFEED, 6, 6);
        let victim = Pid(5);
        let mut steps = 0u64;
        loop {
            if w.step().is_none() {
                break;
            }
            steps += 1;
            if steps == 200 {
                w.crash_now(victim);
            }
            if steps == 600 {
                w.revive(victim);
                w.schedule_start(victim);
            }
        }
        let t = total_stats(&w, n);
        // The ring keeps answering through the crash window; answers
        // for keys owned by the victim may be stale while it is down.
        assert!(t.ok > 0, "lookups must keep resolving under churn");
        assert!(
            t.ok >= 10 * t.bad.max(1),
            "stale answers must be rare: {} ok vs {} bad",
            t.ok,
            t.bad
        );
    }

    fn total_kv_stats(w: &World, n: usize) -> KvStats {
        let mut t = KvStats::default();
        for i in 0..n {
            let s = w.program::<ChordNode>(Pid(i as u32)).unwrap().kv_stats;
            t.put_acked += s.put_acked;
            t.get_ok += s.get_ok;
            t.get_bad += s.get_bad;
            t.replicas += s.replicas;
        }
        t
    }

    #[test]
    fn kv_puts_gets_and_replication_check_out() {
        let n = 16;
        let puts = 3u32;
        let mut w = chord_kv_world(n, 0xD0_17, 2, puts);
        drain(&mut w);
        let t = total_kv_stats(&w, n);
        let want = n as u64 * u64::from(puts);
        assert_eq!(t.put_acked, want, "every write must be acked");
        assert_eq!(t.get_ok, want, "every read-after-write must succeed");
        assert_eq!(t.get_bad, 0, "no bad reads on a stable lossless ring");
        assert!(t.replicas > 0, "owners must replicate to successors");

        // Replication oracle: every key an owner holds must also sit on
        // its successor, byte-for-byte.
        let members: Vec<Pid> = (0..n as u32).map(Pid).collect();
        let ring = ChordRing::new(&members);
        for &p in &members {
            let node = w.program::<ChordNode>(p).unwrap();
            let id = ring.id_of(p);
            let succ = ring.successor_of(id.wrapping_add(1)).1;
            let succ_kv = &w.program::<ChordNode>(succ).unwrap().kv;
            for (&k, &v) in &node.kv {
                if ring.successor_of(k).1 == p {
                    assert_eq!(
                        succ_kv.get(&k),
                        Some(&v),
                        "key {k:#x} owned by {p:?} missing on successor {succ:?}"
                    );
                }
            }
        }
        // Store oracle: every written key lives at its ring owner with
        // the origin's value.
        for &p in &members {
            let node = w.program::<ChordNode>(p).unwrap();
            for (&k, &v) in &node.expected {
                let owner = ring.successor_of(k).1;
                assert_eq!(
                    w.program::<ChordNode>(owner).unwrap().kv.get(&k),
                    Some(&v),
                    "write {k:#x} from {p:?} not at owner {owner:?}"
                );
            }
        }
    }

    #[test]
    fn kv_workload_is_deterministic() {
        let run = |seed| {
            let mut w = chord_kv_world(8, seed, 1, 2);
            let steps = drain(&mut w);
            (steps, total_kv_stats(&w, 8))
        };
        assert_eq!(run(11), run(11), "kv worlds must be deterministic");
    }

    #[test]
    fn legacy_snapshot_layout_unchanged_without_kv() {
        let ring = Arc::new(ChordRing::new(&[Pid(0), Pid(1), Pid(2)]));
        let plain = ChordNode::new(Arc::clone(&ring), 3, 4);
        assert_eq!(
            plain.snapshot().len(),
            56,
            "pure-lookup snapshot must keep the legacy layout"
        );
        let keyed = ChordNode::new(ring, 3, 0).with_kv_workload(2);
        assert!(keyed.snapshot().len() > 56);
    }

    #[test]
    fn kv_snapshot_roundtrip() {
        let ring = Arc::new(ChordRing::new(&[Pid(0), Pid(1), Pid(2)]));
        let mut a = ChordNode::new(Arc::clone(&ring), 1, 0).with_kv_workload(4);
        a.id = ring.id_of(Pid(1));
        a.succ = Pid(2);
        a.puts_left = 1;
        a.put_seq = 3;
        a.kv.insert(7, 70);
        a.kv.insert(9, 90);
        a.expected.insert(7, 70);
        a.kv_stats = KvStats {
            put_acked: 3,
            get_ok: 2,
            get_bad: 1,
            replicas: 5,
        };
        let mut b = ChordNode::new(ring, 0, 0);
        b.restore(&a.snapshot());
        assert_eq!(b.snapshot(), a.snapshot());
        assert_eq!(b.kv_stats, a.kv_stats);
        assert_eq!(b.kv, a.kv);
        assert_eq!(b.expected, a.expected);
    }

    #[test]
    fn snapshot_roundtrip() {
        let ring = Arc::new(ChordRing::new(&[Pid(0), Pid(1), Pid(2)]));
        let mut a = ChordNode::new(Arc::clone(&ring), 3, 4);
        a.id = ring.id_of(Pid(1));
        a.succ = Pid(2);
        a.pred = Some(Pid(0));
        a.stats = LookupStats {
            ok: 5,
            bad: 1,
            hops: 9,
        };
        let mut b = ChordNode::new(ring, 0, 0);
        b.restore(&a.snapshot());
        assert_eq!(b.snapshot(), a.snapshot());
        assert_eq!(b.stats, a.stats);
    }
}
