//! Token-ring mutual exclusion.
//!
//! One token circulates; holding the token = being in the critical
//! section (held until a local timer models the CS duration). The buggy
//! variant duplicates the token on a configurable round — after that, two
//! processes can be in the CS simultaneously, violating mutual exclusion.
//! This is the classic scheduling-dependent distributed bug the paper's
//! Investigator is designed to corner (Fig. 3).

use fixd_core::Monitor;
use fixd_runtime::{Context, Message, Pid, ProcHost, Program, TimerId, World, WorldConfig};

/// Message tag for the token.
pub const TOKEN: u16 = 1;
/// Critical-section duration in virtual time.
pub const CS_TIME: u64 = 5;

/// A ring node.
pub struct RingNode {
    /// Currently inside the critical section (holding the token).
    pub holding: bool,
    /// Times this node entered the CS.
    pub entries: u64,
    /// Rounds remaining when we next forward.
    rounds_left: u8,
    /// BUG KNOB: on this remaining-rounds value, forward the token twice.
    dup_at: Option<u8>,
}

impl RingNode {
    /// A correct node.
    pub fn correct() -> Self {
        Self {
            holding: false,
            entries: 0,
            rounds_left: 0,
            dup_at: None,
        }
    }

    /// A node that duplicates (and misroutes) the token when forwarding
    /// with `rounds == dup_at` remaining.
    pub fn buggy(dup_at: u8) -> Self {
        Self {
            dup_at: Some(dup_at),
            ..Self::correct()
        }
    }

    fn forward(&self, ctx: &mut Context, rounds: u8) {
        let n = ctx.world_size();
        let next = Pid(((ctx.pid().0 as usize + 1) % n) as u32);
        let token = fixd_runtime::Payload::from([rounds]);
        ctx.send(next, TOKEN, token.clone());
        if self.dup_at == Some(rounds) {
            // BUG: a misdirected "retransmission" skips a hop — now two
            // tokens circulate out of phase (sharing one payload buffer).
            let skip = Pid(((ctx.pid().0 as usize + 2) % n) as u32);
            ctx.send(skip, TOKEN, token);
        }
    }

    fn enter_cs(&mut self, ctx: &mut Context, rounds: u8) {
        self.holding = true;
        self.entries += 1;
        self.rounds_left = rounds;
        ctx.output(vec![b'C', ctx.pid().0 as u8]);
        ctx.set_timer(CS_TIME);
    }
}

impl Program for RingNode {
    fn on_start(&mut self, ctx: &mut Context) {
        if ctx.pid() == Pid(0) {
            // Mint the token and immediately take the CS.
            let rounds = 3 * ctx.world_size() as u8;
            self.enter_cs(ctx, rounds);
        }
    }

    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        if msg.tag == TOKEN {
            let rounds = msg.payload[0];
            self.enter_cs(ctx, rounds);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, _t: TimerId) {
        // CS over: release and forward.
        if self.holding {
            self.holding = false;
            if self.rounds_left > 0 {
                self.forward(ctx, self.rounds_left - 1);
            }
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut b = vec![
            u8::from(self.holding),
            self.rounds_left,
            self.dup_at.map_or(255, |d| d),
        ];
        b.extend_from_slice(&self.entries.to_le_bytes());
        b
    }

    fn restore(&mut self, b: &[u8]) {
        self.holding = b[0] != 0;
        self.rounds_left = b[1];
        self.dup_at = if b[2] == 255 { None } else { Some(b[2]) };
        self.entries = u64::from_le_bytes(b[3..11].try_into().unwrap());
    }

    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Self {
            holding: self.holding,
            entries: self.entries,
            rounds_left: self.rounds_left,
            dup_at: self.dup_at,
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &'static str {
        "ring-node"
    }
}

/// Build a ring world of `n` nodes over an explicit [`WorldConfig`]
/// (campaign matrices inject network pathologies through the config);
/// node `buggy_node` (if any) duplicates the token when `dup_at` rounds
/// remain.
pub fn ring_world_cfg(cfg: WorldConfig, n: usize, buggy_node: Option<(usize, u8)>) -> World {
    let mut w = World::new(cfg);
    ring_populate(&mut w, n, buggy_node);
    w
}

/// Populate any [`ProcHost`] with the ring topology — the shard-capable
/// entry point the campaign driver uses to build the same cell on a
/// serial and a sharded world.
pub fn ring_populate(host: &mut dyn ProcHost, n: usize, buggy_node: Option<(usize, u8)>) {
    for i in 0..n {
        match buggy_node {
            Some((b, dup_at)) if b == i => host.spawn(Box::new(RingNode::buggy(dup_at))),
            _ => host.spawn(Box::new(RingNode::correct())),
        };
    }
}

/// Build a ring world of `n` nodes; node `buggy_node` (if any) duplicates
/// the token when `dup_at` rounds remain.
pub fn ring_world(n: usize, seed: u64, buggy_node: Option<(usize, u8)>) -> World {
    ring_world_cfg(WorldConfig::seeded(seed), n, buggy_node)
}

/// The mutual-exclusion monitor: at most one node holds the token.
pub fn mutex_monitor() -> Monitor {
    Monitor::global(
        "mutual-exclusion",
        |w| {
            (0..w.num_procs())
                .filter(|&i| {
                    w.program::<RingNode>(Pid(i as u32))
                        .is_some_and(|p| p.holding)
                })
                .count()
                <= 1
        },
        |s| {
            (0..s.width())
                .filter(|&i| {
                    s.program::<RingNode>(Pid(i as u32))
                        .is_some_and(|p| p.holding)
                })
                .count()
                <= 1
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_ring_preserves_mutex() {
        let mut w = ring_world(4, 1, None);
        let monitor = mutex_monitor();
        loop {
            if w.step().is_none() {
                break;
            }
            assert!(
                monitor.violated_in(&w).is_none(),
                "mutex broken in correct ring"
            );
        }
        let total: u64 = (0..4)
            .map(|i| w.program::<RingNode>(Pid(i)).unwrap().entries)
            .sum();
        assert_eq!(total, 13, "initial CS + 12 forwarded rounds");
    }

    #[test]
    fn buggy_ring_violates_mutex() {
        let mut w = ring_world(4, 1, Some((2, 5)));
        let monitor = mutex_monitor();
        let mut violated = false;
        while w.step().is_some() {
            if monitor.violated_in(&w).is_some() {
                violated = true;
                break;
            }
        }
        assert!(violated, "duplicated token must break mutual exclusion");
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut a = RingNode::buggy(3);
        a.holding = true;
        a.entries = 7;
        a.rounds_left = 2;
        let mut b = RingNode::correct();
        b.restore(&a.snapshot());
        assert_eq!(b.snapshot(), a.snapshot());
    }
}
