//! Primary/backup replicated key-value store.
//!
//! A client streams PUTs to the primary; the primary applies them,
//! assigns sequence numbers, and replicates to the backup. The **buggy**
//! backup applies replication messages in arrival order — under a
//! reordering network this leaves sequence gaps and stale values (the
//! lost-update family). The **fixed** backup holds out-of-order messages
//! and applies in sequence order. The patch between them migrates the
//! backup's state (adds the hold-back buffer).

use std::collections::BTreeMap;

use fixd_core::Monitor;
use fixd_healer::{migrate, Patch};
use fixd_runtime::wire::{get_varint, put_varint};
use fixd_runtime::{Context, Message, NetworkConfig, Pid, ProcHost, Program, World, WorldConfig};

/// Client → primary: PUT key value.
pub const PUT: u16 = 10;
/// Primary → backup: REPLICATE seq key value.
pub const REPL: u16 = 11;

/// Scripted client: sends `(key, value)` PUTs to the primary (P1).
pub struct Client {
    pub script: Vec<(u8, u8)>,
}

impl Program for Client {
    fn on_start(&mut self, ctx: &mut Context) {
        for &(k, v) in &self.script {
            ctx.send(Pid(1), PUT, [k, v]);
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        self.script.iter().flat_map(|&(k, v)| [k, v]).collect()
    }
    fn restore(&mut self, b: &[u8]) {
        self.script = b.chunks(2).map(|c| (c[0], c[1])).collect();
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Client {
            script: self.script.clone(),
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &'static str {
        "kv-client"
    }
}

/// The primary replica (P1). Applies PUTs, replicates to the backup (P2).
#[derive(Default)]
pub struct Primary {
    pub store: BTreeMap<u8, u8>,
    pub seq: u64,
}

impl Program for Primary {
    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        if msg.tag == PUT {
            let (k, v) = (msg.payload[0], msg.payload[1]);
            self.store.insert(k, v);
            self.seq += 1;
            let mut p = vec![k, v];
            put_varint(&mut p, self.seq);
            ctx.send(Pid(2), REPL, p);
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        encode_store(&self.store, self.seq, &[])
    }
    fn restore(&mut self, b: &[u8]) {
        let (store, seq, _) = decode_store(b);
        self.store = store;
        self.seq = seq;
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(Primary {
            store: self.store.clone(),
            seq: self.seq,
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &'static str {
        "kv-primary"
    }
}

/// The backup replica (P2), **buggy**: applies in arrival order.
#[derive(Default)]
pub struct BackupV1 {
    pub store: BTreeMap<u8, u8>,
    /// Highest sequence number applied.
    pub applied: u64,
    /// Count of messages applied (== applied iff no gaps).
    pub applied_count: u64,
}

impl Program for BackupV1 {
    fn on_message(&mut self, _ctx: &mut Context, msg: &Message) {
        if msg.tag == REPL {
            let (k, v) = (msg.payload[0], msg.payload[1]);
            let mut pos = 2;
            let seq = get_varint(&msg.payload, &mut pos).unwrap_or(0);
            // BUG: no ordering check — a stale (reordered) REPL
            // overwrites a newer value, and gaps go unnoticed.
            self.store.insert(k, v);
            self.applied = self.applied.max(seq);
            self.applied_count += 1;
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        let mut b = encode_store(&self.store, self.applied, &[]);
        put_varint(&mut b, self.applied_count);
        b
    }
    fn restore(&mut self, b: &[u8]) {
        let (store, applied, rest) = decode_store(b);
        self.store = store;
        self.applied = applied;
        let mut pos = 0;
        self.applied_count = get_varint(&rest, &mut pos).unwrap_or(0);
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(BackupV1 {
            store: self.store.clone(),
            applied: self.applied,
            applied_count: self.applied_count,
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &'static str {
        "kv-backup-v1"
    }
}

/// The backup replica, **fixed**: holds back out-of-order messages and
/// applies strictly in sequence order.
#[derive(Default)]
pub struct BackupV2 {
    pub store: BTreeMap<u8, u8>,
    pub applied: u64,
    pub applied_count: u64,
    /// Held-back out-of-order messages: seq → (key, value).
    pub pending: BTreeMap<u64, (u8, u8)>,
}

impl Program for BackupV2 {
    fn on_message(&mut self, _ctx: &mut Context, msg: &Message) {
        if msg.tag == REPL {
            let (k, v) = (msg.payload[0], msg.payload[1]);
            let mut pos = 2;
            let seq = get_varint(&msg.payload, &mut pos).unwrap_or(0);
            if seq <= self.applied {
                return; // duplicate of an already-applied REPL
            }
            self.pending.insert(seq, (k, v));
            // Drain in order.
            while let Some(&(pk, pv)) = self.pending.get(&(self.applied + 1)) {
                self.pending.remove(&(self.applied + 1));
                self.store.insert(pk, pv);
                self.applied += 1;
                self.applied_count += 1;
            }
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        let mut b = encode_store(&self.store, self.applied, &[]);
        put_varint(&mut b, self.applied_count);
        put_varint(&mut b, self.pending.len() as u64);
        for (&s, &(k, v)) in &self.pending {
            put_varint(&mut b, s);
            b.push(k);
            b.push(v);
        }
        b
    }
    fn restore(&mut self, b: &[u8]) {
        let (store, applied, rest) = decode_store(b);
        self.store = store;
        self.applied = applied;
        let mut pos = 0;
        self.applied_count = get_varint(&rest, &mut pos).unwrap_or(0);
        let n = get_varint(&rest, &mut pos).unwrap_or(0);
        self.pending.clear();
        for _ in 0..n {
            let s = get_varint(&rest, &mut pos).unwrap_or(0);
            let k = rest[pos];
            let v = rest[pos + 1];
            pos += 2;
            self.pending.insert(s, (k, v));
        }
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(BackupV2 {
            store: self.store.clone(),
            applied: self.applied,
            applied_count: self.applied_count,
            pending: self.pending.clone(),
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &'static str {
        "kv-backup-v2"
    }
}

/// 16-bit FNV checksum over a REPL payload prefix (everything except the
/// trailing checksum bytes). [`PrimaryV2`] stamps it; [`BackupV3`]
/// verifies it and rejects mismatches instead of applying garbage.
pub fn repl_checksum(prefix: &[u8]) -> u16 {
    (fixd_runtime::wire::fnv1a(prefix) & 0xFFFF) as u16
}

/// The primary replica, **checksummed**: identical to [`Primary`] except
/// every REPL payload carries a trailing [`repl_checksum`] so the backup
/// can detect in-flight corruption.
#[derive(Default)]
pub struct PrimaryV2 {
    pub store: BTreeMap<u8, u8>,
    pub seq: u64,
}

impl Program for PrimaryV2 {
    fn on_message(&mut self, ctx: &mut Context, msg: &Message) {
        if msg.tag == PUT {
            let (k, v) = (msg.payload[0], msg.payload[1]);
            self.store.insert(k, v);
            self.seq += 1;
            let mut p = vec![k, v];
            put_varint(&mut p, self.seq);
            let ck = repl_checksum(&p);
            p.extend_from_slice(&ck.to_le_bytes());
            ctx.send(Pid(2), REPL, p);
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        encode_store(&self.store, self.seq, &[])
    }
    fn restore(&mut self, b: &[u8]) {
        let (store, seq, _) = decode_store(b);
        self.store = store;
        self.seq = seq;
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(PrimaryV2 {
            store: self.store.clone(),
            seq: self.seq,
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &'static str {
        "kv-primary-v2"
    }
}

/// The backup replica, **checksummed**: ordering fix of [`BackupV2`] plus
/// checksum verification — a corrupted REPL is counted in `rejected` and
/// dropped rather than applied, so corruption degrades to loss.
#[derive(Default)]
pub struct BackupV3 {
    pub store: BTreeMap<u8, u8>,
    pub applied: u64,
    pub applied_count: u64,
    /// Held-back out-of-order messages: seq → (key, value).
    pub pending: BTreeMap<u64, (u8, u8)>,
    /// REPL messages rejected because their checksum did not verify.
    pub rejected: u64,
}

impl Program for BackupV3 {
    fn on_message(&mut self, _ctx: &mut Context, msg: &Message) {
        if msg.tag != REPL {
            return;
        }
        if msg.payload.len() < 5 {
            self.rejected += 1;
            return;
        }
        let (prefix, ck_bytes) = msg.payload.split_at(msg.payload.len() - 2);
        let ck = u16::from_le_bytes([ck_bytes[0], ck_bytes[1]]);
        if repl_checksum(prefix) != ck {
            self.rejected += 1;
            return;
        }
        let (k, v) = (prefix[0], prefix[1]);
        let mut pos = 2;
        let seq = get_varint(prefix, &mut pos).unwrap_or(0);
        if seq <= self.applied {
            return; // duplicate of an already-applied REPL
        }
        self.pending.insert(seq, (k, v));
        while let Some(&(pk, pv)) = self.pending.get(&(self.applied + 1)) {
            self.pending.remove(&(self.applied + 1));
            self.store.insert(pk, pv);
            self.applied += 1;
            self.applied_count += 1;
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        let mut b = encode_store(&self.store, self.applied, &[]);
        put_varint(&mut b, self.applied_count);
        put_varint(&mut b, self.pending.len() as u64);
        for (&s, &(k, v)) in &self.pending {
            put_varint(&mut b, s);
            b.push(k);
            b.push(v);
        }
        put_varint(&mut b, self.rejected);
        b
    }
    fn restore(&mut self, b: &[u8]) {
        let (store, applied, rest) = decode_store(b);
        self.store = store;
        self.applied = applied;
        let mut pos = 0;
        self.applied_count = get_varint(&rest, &mut pos).unwrap_or(0);
        let n = get_varint(&rest, &mut pos).unwrap_or(0);
        self.pending.clear();
        for _ in 0..n {
            let s = get_varint(&rest, &mut pos).unwrap_or(0);
            let k = rest[pos];
            let v = rest[pos + 1];
            pos += 2;
            self.pending.insert(s, (k, v));
        }
        self.rejected = get_varint(&rest, &mut pos).unwrap_or(0);
    }
    fn clone_program(&self) -> Box<dyn Program> {
        Box::new(BackupV3 {
            store: self.store.clone(),
            applied: self.applied,
            applied_count: self.applied_count,
            pending: self.pending.clone(),
            rejected: self.rejected,
        })
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &'static str {
        "kv-backup-v3"
    }
}

fn encode_store(store: &BTreeMap<u8, u8>, seq: u64, extra: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(store.len() * 2 + 16);
    put_varint(&mut b, seq);
    put_varint(&mut b, store.len() as u64);
    for (&k, &v) in store {
        b.push(k);
        b.push(v);
    }
    b.extend_from_slice(extra);
    b
}

fn decode_store(b: &[u8]) -> (BTreeMap<u8, u8>, u64, Vec<u8>) {
    let mut pos = 0;
    let seq = get_varint(b, &mut pos).unwrap_or(0);
    let n = get_varint(b, &mut pos).unwrap_or(0);
    let mut store = BTreeMap::new();
    for _ in 0..n {
        store.insert(b[pos], b[pos + 1]);
        pos += 2;
    }
    (store, seq, b[pos..].to_vec())
}

/// The consistency monitor: the backup must never have applied more
/// messages than its highest sequence (a gap means a message was applied
/// out of order). Works for both backup versions.
pub fn gap_monitor() -> Monitor {
    Monitor::global_implicating(
        "backup-no-gaps",
        |w| {
            let v1_ok = w
                .program::<BackupV1>(Pid(2))
                .is_none_or(|b| b.applied == b.applied_count);
            let v2_ok = w
                .program::<BackupV2>(Pid(2))
                .is_none_or(|b| b.applied == b.applied_count);
            let v3_ok = w
                .program::<BackupV3>(Pid(2))
                .is_none_or(|b| b.applied == b.applied_count);
            v1_ok && v2_ok && v3_ok
        },
        |_w| Pid(2), // the backup is where the gap materializes
        |s| {
            let v1_ok = s
                .program::<BackupV1>(Pid(2))
                .is_none_or(|b| b.applied == b.applied_count);
            let v2_ok = s
                .program::<BackupV2>(Pid(2))
                .is_none_or(|b| b.applied == b.applied_count);
            let v3_ok = s
                .program::<BackupV3>(Pid(2))
                .is_none_or(|b| b.applied == b.applied_count);
            v1_ok && v2_ok && v3_ok
        },
    )
}

/// Build the 3-process world (client, primary, buggy backup) over a
/// reordering network.
pub fn kv_world(seed: u64, script: Vec<(u8, u8)>, jitter: (u64, u64)) -> World {
    let mut cfg = WorldConfig::seeded(seed);
    cfg.net = NetworkConfig::jittery(jitter.0, jitter.1);
    let mut w = World::new(cfg);
    w.add_process(Box::new(Client { script }));
    w.add_process(Box::new(Primary::default()));
    w.add_process(Box::new(BackupV1::default()));
    w
}

/// Build a client/primary/**buggy**-backup world ([`BackupV1`]) over an
/// explicit [`WorldConfig`]. This is the detection-power column of the
/// campaign matrix: under reordering the arrival-order bug *must* be
/// caught by [`gap_monitor`] in a healthy fraction of cells.
pub fn kv_world_v1_cfg(cfg: WorldConfig, script: Vec<(u8, u8)>) -> World {
    let mut w = World::new(cfg);
    kv_populate_v1(&mut w, script);
    w
}

/// Populate any [`ProcHost`] with the buggy-backup topology (shard-capable
/// entry point for the campaign driver).
pub fn kv_populate_v1(host: &mut dyn ProcHost, script: Vec<(u8, u8)>) {
    host.spawn(Box::new(Client { script }));
    host.spawn(Box::new(Primary::default()));
    host.spawn(Box::new(BackupV1::default()));
}

/// Build a client/primary/fixed-backup world over an explicit
/// [`WorldConfig`] (campaign matrices inject network pathologies through
/// the config).
pub fn kv_world_v2_cfg(cfg: WorldConfig, script: Vec<(u8, u8)>) -> World {
    let mut w = World::new(cfg);
    kv_populate_v2(&mut w, script);
    w
}

/// Populate any [`ProcHost`] with the fixed-backup topology (shard-capable
/// entry point for the campaign driver).
pub fn kv_populate_v2(host: &mut dyn ProcHost, script: Vec<(u8, u8)>) {
    host.spawn(Box::new(Client { script }));
    host.spawn(Box::new(Primary::default()));
    host.spawn(Box::new(BackupV2::default()));
}

/// Build the checksummed pair ([`PrimaryV2`] + [`BackupV3`]) over an
/// explicit [`WorldConfig`]: the variant that survives payload
/// corruption by rejecting bad REPLs.
pub fn kv_world_ck_cfg(cfg: WorldConfig, script: Vec<(u8, u8)>) -> World {
    let mut w = World::new(cfg);
    kv_populate_ck(&mut w, script);
    w
}

/// Populate any [`ProcHost`] with the checksummed topology (shard-capable
/// entry point for the campaign driver).
pub fn kv_populate_ck(host: &mut dyn ProcHost, script: Vec<(u8, u8)>) {
    host.spawn(Box::new(Client { script }));
    host.spawn(Box::new(PrimaryV2::default()));
    host.spawn(Box::new(BackupV3::default()));
}

/// The v1 → v2 patch: same store/applied state, empty hold-back buffer.
pub fn backup_patch() -> Patch {
    Patch::code_only("kv-backup-ordering-fix", 1, 2, || {
        Box::new(BackupV2::default())
    })
    .with_migration(migrate::from_fn(|old| {
        // v1 layout: [store..., applied_count]; v2 appends pending=0.
        let mut b = old.to_vec();
        put_varint(&mut b, 0); // empty pending map
        Ok(b)
    }))
}

/// A deterministic client script of `n` puts.
pub fn script(n: usize, seed: u64) -> Vec<(u8, u8)> {
    let mut rng = fixd_runtime::DetRng::derive(seed, 0x4B);
    (0..n)
        .map(|_| (rng.below(16) as u8, rng.below(256) as u8))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_network_hides_the_bug() {
        let mut w = kv_world(1, vec![(1, 10), (2, 20), (1, 11)], (10, 10));
        w.run_to_quiescence(10_000);
        let monitor = gap_monitor();
        assert!(monitor.violated_in(&w).is_none());
        let b = w.program::<BackupV1>(Pid(2)).unwrap();
        assert_eq!(b.store.get(&1), Some(&11));
    }

    #[test]
    fn reordering_network_exposes_the_gap() {
        // Find a seed where jitter reorders the replication stream.
        let monitor = gap_monitor();
        let mut found = false;
        for seed in 0..50 {
            let mut w = kv_world(
                seed,
                (0..12).map(|i| (i as u8 % 4, i as u8)).collect(),
                (1, 80),
            );
            loop {
                if w.step().is_none() {
                    break;
                }
                if monitor.violated_in(&w).is_some() {
                    found = true;
                    break;
                }
            }
            if found {
                break;
            }
        }
        assert!(found, "some seed must reorder REPL messages");
    }

    #[test]
    fn fixed_backup_tolerates_reordering() {
        for seed in 0..20 {
            let mut cfg = WorldConfig::seeded(seed);
            cfg.net = NetworkConfig::jittery(1, 80);
            let mut w = World::new(cfg);
            w.add_process(Box::new(Client {
                script: (0..12).map(|i| (i as u8 % 4, i as u8)).collect(),
            }));
            w.add_process(Box::new(Primary::default()));
            w.add_process(Box::new(BackupV2::default()));
            w.run_to_quiescence(10_000);
            let p = w.program::<Primary>(Pid(1)).unwrap().store.clone();
            let b = w.program::<BackupV2>(Pid(2)).unwrap();
            assert_eq!(b.store, p, "seed {seed}: fixed backup converges");
            assert_eq!(b.applied, b.applied_count);
        }
    }

    #[test]
    fn patch_migrates_v1_state() {
        let mut v1 = BackupV1::default();
        v1.store.insert(3, 7);
        v1.applied = 2;
        v1.applied_count = 2;
        let patch = backup_patch();
        let new_prog = patch.instantiate(&v1.snapshot()).unwrap();
        let v2 = new_prog.as_any().downcast_ref::<BackupV2>().unwrap();
        assert_eq!(v2.store.get(&3), Some(&7));
        assert_eq!(v2.applied, 2);
        assert!(v2.pending.is_empty());
    }

    #[test]
    fn checksummed_backup_rejects_corrupted_repl() {
        // Corrupt every primary→backup REPL via the fault plan: the
        // checksummed backup must reject all of them and apply none.
        let mut w = World::new(WorldConfig::seeded(1));
        w.add_process(Box::new(Client {
            script: vec![(1, 10), (2, 20), (3, 30)],
        }));
        w.add_process(Box::new(PrimaryV2::default()));
        w.add_process(Box::new(BackupV3::default()));
        w.set_fault_plan(fixd_runtime::FaultPlan::none().corrupt_link(Pid(1), Pid(2), 0, u64::MAX));
        w.run_to_quiescence(10_000);
        let b = w.program::<BackupV3>(Pid(2)).unwrap();
        assert_eq!(b.rejected, 3, "every corrupted REPL is rejected");
        assert_eq!(b.applied, 0, "corrupted REPLs must not apply");
        assert!(b.store.is_empty());
        // Same world without the fault plan applies everything.
        let mut w = World::new(WorldConfig::seeded(1));
        w.add_process(Box::new(Client {
            script: vec![(1, 10), (2, 20), (3, 30)],
        }));
        w.add_process(Box::new(PrimaryV2::default()));
        w.add_process(Box::new(BackupV3::default()));
        w.run_to_quiescence(10_000);
        let b = w.program::<BackupV3>(Pid(2)).unwrap();
        assert_eq!(b.rejected, 0);
        assert_eq!(b.applied, 3);
        assert_eq!(b.store.get(&3), Some(&30));
    }

    #[test]
    fn checksummed_pair_converges_like_v2() {
        for seed in 0..10u64 {
            let mut cfg = WorldConfig::seeded(seed);
            cfg.net = NetworkConfig::jittery(1, 80);
            let mut w = World::new(cfg);
            w.add_process(Box::new(Client {
                script: script(12, seed),
            }));
            w.add_process(Box::new(PrimaryV2::default()));
            w.add_process(Box::new(BackupV3::default()));
            w.run_to_quiescence(10_000);
            let p = w.program::<PrimaryV2>(Pid(1)).unwrap().store.clone();
            let b = w.program::<BackupV3>(Pid(2)).unwrap();
            assert_eq!(b.store, p, "seed {seed}: checksummed backup converges");
            assert_eq!(b.applied, b.applied_count);
            assert_eq!(b.rejected, 0, "clean network rejects nothing");
        }
    }

    #[test]
    fn duplicated_repls_do_not_accumulate_in_pending() {
        // Every message delivered twice: after the stream drains, both
        // ordered backups must have applied everything with an *empty*
        // hold-back buffer — dups of applied seqs are dropped, not held.
        for seed in 0..5u64 {
            let mut cfg = WorldConfig::seeded(seed);
            cfg.net = NetworkConfig {
                dup_prob: 1.0,
                ..NetworkConfig::default()
            };
            let mut w = kv_world_v2_cfg(cfg.clone(), script(8, seed));
            w.run_to_quiescence(10_000);
            let b = w.program::<BackupV2>(Pid(2)).unwrap();
            assert_eq!(b.applied, b.applied_count);
            assert!(b.pending.is_empty(), "seed {seed}: v2 pending leaked");

            let mut w = kv_world_ck_cfg(cfg, script(8, seed));
            w.run_to_quiescence(10_000);
            let b = w.program::<BackupV3>(Pid(2)).unwrap();
            assert_eq!(b.applied, b.applied_count);
            assert!(b.pending.is_empty(), "seed {seed}: v3 pending leaked");
            assert_eq!(b.rejected, 0, "dups are not checksum rejects");
        }
    }

    #[test]
    fn backup_v3_snapshot_roundtrip() {
        let mut v3 = BackupV3::default();
        v3.store.insert(1, 2);
        v3.applied = 3;
        v3.applied_count = 3;
        v3.pending.insert(5, (9, 9));
        v3.rejected = 4;
        let mut w = BackupV3::default();
        w.restore(&v3.snapshot());
        assert_eq!(w.snapshot(), v3.snapshot());
        assert_eq!(w.rejected, 4);
    }

    #[test]
    fn snapshots_roundtrip() {
        let mut v2 = BackupV2::default();
        v2.store.insert(1, 2);
        v2.applied = 3;
        v2.applied_count = 3;
        v2.pending.insert(5, (9, 9));
        let mut w = BackupV2::default();
        w.restore(&v2.snapshot());
        assert_eq!(w.snapshot(), v2.snapshot());
        assert_eq!(w.pending.get(&5), Some(&(9, 9)));
    }
}
