//! # fixd-examples — example distributed applications
//!
//! Realistic application scenarios exercising the FixD public API,
//! shared by the runnable examples (`examples/`), the cross-crate
//! integration tests (`tests/`), and the benchmark harness
//! (`fixd-bench`). Each app ships a **buggy** and a **fixed** version
//! plus the patch between them, because the whole FixD loop —
//! detect → roll back → investigate → heal — needs a bug to chase:
//!
//! * [`apps::token_ring`] — token-ring mutual exclusion; the buggy node
//!   duplicates the token, eventually putting two processes in the
//!   critical section at once (safety violation a global monitor
//!   catches);
//! * [`apps::kvstore`] — primary/backup replicated KV store; the buggy
//!   backup applies replication messages out of order, creating sequence
//!   gaps (the lost-update family of bugs);
//! * [`apps::two_phase_commit`] — atomic commit; the buggy coordinator
//!   commits after the *first* YES vote;
//! * [`apps::pipeline`] — a source/cruncher work pipeline for measuring
//!   salvaged computation under the Healer's two recovery strategies;
//! * [`apps::chord`] — a Chord DHT (finger-routed lookups, stabilize
//!   rounds, churn) whose behaviour is independent of world width — the
//!   scenario behind the wide-world scale benchmark.

pub mod apps;

pub use apps::chord;
pub use apps::kvstore;
pub use apps::pipeline;
pub use apps::token_ring;
pub use apps::two_phase_commit;
pub use apps::wal_counter;
