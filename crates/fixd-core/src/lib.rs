//! # fixd-core — FixD: Fault Detection, Bug Reporting, and Recoverability
//! # for Distributed Applications
//!
//! Reproduction of Ţăpuş & Noblet, IPPS 2007. This crate is the paper's
//! stated second contribution — *"the design of FixD, which amounts to
//! designing the glue components required to combine the various logging,
//! debugging, and verification tools in an efficient manner"* — gluing:
//!
//! * the **Scroll** (`fixd-scroll`) — logging of nondeterministic actions,
//! * the **Time Machine** (`fixd-timemachine`) — speculation-based
//!   checkpointing and consistent rollback,
//! * the **Investigator** (`fixd-investigator`) — ModelD, exploring the
//!   real implementation from a restored global checkpoint,
//! * the **Healer** (`fixd-healer`) — dynamic update or restart on the
//!   fixed code,
//!
//! into the workflow of Figs. 4–5:
//!
//! ```text
//! supervise ──fault──▶ respond (rollback + collect {checkpoint, model}
//!     ▲                 from peers + assemble global checkpoint)
//!     │                          │
//!  heal (update /                ▼
//!  restart, Fig. 5) ◀── report ◀── investigate (trails, Fig. 3)
//! ```
//!
//! Entry point: [`Fixd`]. See `examples/` for complete loops.

pub mod assembly;
pub mod characteristics;
pub mod config;
pub mod detector;
pub mod knobs;
pub mod protocol;
pub mod report;
pub mod session;

pub use assembly::assemble_worldstate;
pub use characteristics::{matrix, render_matrix, Capabilities, MatrixRow, Technique};
pub use config::FixdConfig;
pub use detector::{DetectedFault, Monitor};
pub use knobs::{parse_count, shards_from_env, CountParseError, SHARDS_ENV};
pub use protocol::{choose_rollback_target, respond, RespondOutcome};
pub use report::BugReport;
pub use session::{Fixd, FixdStats, SuperviseOutcome};
