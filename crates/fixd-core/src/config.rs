//! FixD configuration.

use fixd_investigator::{ExploreConfig, NetModel};
use fixd_scroll::SpillConfig;
use fixd_timemachine::{CheckpointPolicy, PageStore, TimeMachineConfig};

/// Configuration for a [`crate::Fixd`] supervisor.
#[derive(Clone, Debug)]
pub struct FixdConfig {
    /// World seed — must match the supervised world for replay and model
    /// assembly to line up.
    pub seed: u64,
    /// Checkpointing discipline of the Time Machine.
    pub policy: CheckpointPolicy,
    /// Page size for content-addressed checkpoint images.
    pub page_size: usize,
    /// Intern checkpoint pages into this store instead of a private one.
    /// Hand one store to many supervisors (e.g. campaign cells) and
    /// identical pages across their worlds are held once.
    pub page_store: Option<PageStore>,
    /// Seal and spill scroll prefixes through this config's disk, so
    /// arbitrarily long supervised runs keep only scroll tails resident.
    pub scroll_spill: Option<SpillConfig>,
    /// Environment model the Investigator explores under.
    pub net_model: NetModel,
    /// Investigator limits.
    pub explore: ExploreConfig,
    /// Evaluate fault monitors every N executed events (1 = every event).
    pub check_every: u64,
    /// Record dropped messages in the Scroll (diagnostic).
    pub record_drops: bool,
    /// Worker shard count for sharded world execution (see
    /// `fixd_runtime::ShardedWorld`). Defaults to the `FIXD_SHARDS`
    /// environment knob, else 1. The supervision loop itself stays
    /// serial — per-step checkpointing is incompatible with windowed
    /// execution — so this knob is consumed by workload drivers (tests,
    /// benches, campaigns) that run worlds *under* a shard count.
    pub shards: usize,
}

impl Default for FixdConfig {
    fn default() -> Self {
        Self {
            seed: 0xF1BD,
            policy: CheckpointPolicy::EveryReceive,
            page_size: fixd_timemachine::DEFAULT_PAGE_SIZE,
            page_store: None,
            scroll_spill: None,
            net_model: NetModel::reliable(),
            explore: ExploreConfig::default(),
            check_every: 1,
            record_drops: false,
            shards: crate::knobs::shards_from_env().unwrap_or(1),
        }
    }
}

impl FixdConfig {
    /// Config with a specific seed, defaults otherwise.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The Time Machine configuration slice.
    pub fn tm_config(&self) -> TimeMachineConfig {
        TimeMachineConfig {
            policy: self.policy,
            page_size: self.page_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_seeding() {
        let c = FixdConfig::default();
        assert_eq!(c.policy, CheckpointPolicy::EveryReceive);
        assert_eq!(c.check_every, 1);
        let s = FixdConfig::seeded(99);
        assert_eq!(s.seed, 99);
        assert_eq!(s.tm_config().page_size, c.page_size);
        // The shard default tracks the env knob (CI runs the suite under
        // several FIXD_SHARDS values), falling back to serial.
        assert_eq!(c.shards, crate::knobs::shards_from_env().unwrap_or(1));
    }
}
