//! Assembling a consistent global checkpoint into an Investigator state.
//!
//! Fig. 4 of the paper: after the fault, each peer replies with *"a local
//! checkpoint of the state of that process, and a model of its behavior
//! (this model does not have to be abstract; it could simply be the
//! implementation of the process itself)"*; the detecting process
//! *"collects these responses to piece together a consistent global
//! checkpoint of the system that is fed to the Investigator"*.
//!
//! In this reproduction the "model of its behavior" is literally the
//! process's [`fixd_runtime::Program`] (cloned), and the consistent checkpoint is the
//! world state after the Time Machine's rollback. This module performs
//! the piecing-together.

use fixd_investigator::{WorldModel, WorldState};
use fixd_runtime::{Pid, SoloHarness, World};

/// Build an Investigator [`WorldState`] from the current (post-rollback)
/// world: programs are cloned as their own models, per-process clocks and
/// RNG positions are carried over, and channel state (in-flight messages
/// and pending timers) is captured.
pub fn assemble_worldstate(world: &World) -> WorldState {
    let n = world.num_procs();
    let mut programs = Vec::with_capacity(n);
    let mut harnesses = Vec::with_capacity(n);
    for i in 0..n {
        let pid = Pid(i as u32);
        let ck = world.checkpoint_process(pid);
        programs.push(world.with_program(pid, |p| p.clone_program()));
        let mut h = SoloHarness::new(pid, n, 0);
        h.restore_context(ck.vc.clone(), ck.lamport, ck.rng.clone());
        h.set_now(world.now());
        harnesses.push(h);
    }
    let inflight = world.inflight_messages();
    let timers = world
        .pending_timers()
        .into_iter()
        .map(|(pid, t, _at)| (pid, t))
        .collect();
    WorldModel::assemble_state(programs, harnesses, inflight, timers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_investigator::{ExploreConfig, ModelD, NetModel};
    use fixd_runtime::{Context, Program, WorldConfig};

    struct Hop {
        hops: u64,
    }
    impl Program for Hop {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                ctx.send(Pid(1), 1, vec![6]);
            }
        }
        fn on_message(&mut self, ctx: &mut Context, msg: &fixd_runtime::Message) {
            self.hops += 1;
            if msg.payload[0] > 0 {
                let next = Pid(((ctx.pid().0 as usize + 1) % ctx.world_size()) as u32);
                ctx.send(next, 1, vec![msg.payload[0] - 1]);
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            self.hops.to_le_bytes().to_vec()
        }
        fn restore(&mut self, b: &[u8]) {
            self.hops = u64::from_le_bytes(b.try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Hop { hops: self.hops })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn assembled_state_reflects_world() {
        let mut w = World::new(WorldConfig::seeded(3));
        w.add_process(Box::new(Hop { hops: 0 }));
        w.add_process(Box::new(Hop { hops: 0 }));
        w.run_steps(4); // token bouncing, mail likely in flight
        let s = assemble_worldstate(&w);
        assert_eq!(s.width(), 2);
        // Program state carried over.
        let world_hops = w.program::<Hop>(Pid(1)).unwrap().hops;
        assert_eq!(s.program::<Hop>(Pid(1)).unwrap().hops, world_hops);
        // Channel state carried over.
        assert_eq!(s.mail_count(), w.inflight_messages().len());
        assert!(s.is_started(Pid(0)));
    }

    #[test]
    fn assembled_state_is_explorable() {
        let mut w = World::new(WorldConfig::seeded(3));
        w.add_process(Box::new(Hop { hops: 0 }));
        w.add_process(Box::new(Hop { hops: 0 }));
        w.run_steps(3);
        let s = assemble_worldstate(&w);
        let report = ModelD::from_checkpoint(3, NetModel::reliable(), s)
            .config(ExploreConfig::default())
            .run();
        assert!(report.states >= 1);
        assert!(report.clean());
    }

    #[test]
    fn quiescent_assembly_has_no_mail() {
        let mut w = World::new(WorldConfig::seeded(3));
        w.add_process(Box::new(Hop { hops: 0 }));
        w.add_process(Box::new(Hop { hops: 0 }));
        w.run_to_quiescence(1_000);
        let s = assemble_worldstate(&w);
        assert_eq!(s.mail_count(), 0);
    }
}
