//! The fault-response protocol of Fig. 4.
//!
//! "In the event that one process ... detects a fault locally, the
//! process that detected the fault uses the Time Machine component to
//! roll back its state to a recently stored checkpoint and notifies the
//! other processes in the system that an error has occurred. Upon receipt
//! of this notification, each process ... responds with ... a local
//! checkpoint of the state of that process, and a model of its behavior
//! ...; the checkpoint it provides needs to satisfy global consistency
//! properties."
//!
//! In the reproduction the notification round is subsumed by the Time
//! Machine's recovery-line computation (which *is* the consistency
//! agreement), and the replies are gathered by [`crate::assembly`].

use fixd_investigator::WorldState;
use fixd_runtime::{Pid, World};
use fixd_timemachine::{RollbackReport, TimeMachine};

use crate::assembly::assemble_worldstate;
use crate::detector::{DetectedFault, Monitor};

/// The assembled response to a fault.
#[derive(Debug)]
pub struct RespondOutcome {
    /// Checkpoint index the faulty process rolled back to.
    pub target: u64,
    /// Rollback accounting (recovery line, cascade size, replays).
    pub rollback: RollbackReport,
    /// The consistent global checkpoint, ready for the Investigator.
    pub state: WorldState,
}

/// Pick the newest live checkpoint of `fail` whose restored state passes
/// every (local) monitor — "a point in time where the invariant holds"
/// (§3.2). Falls back to checkpoint 0.
pub fn choose_rollback_target(
    world: &World,
    tm: &TimeMachine,
    monitors: &[Monitor],
    fail: Pid,
) -> u64 {
    let store = tm.store(fail);
    let latest = store.latest_index().unwrap_or(0);
    for idx in (0..=latest).rev() {
        if !store.is_live(idx) {
            continue;
        }
        let Some(ck) = store.get(idx) else { continue };
        let state = ck.image.to_bytes();
        let mut candidate = world.with_program(fail, |p| p.clone_program());
        candidate.restore(&state);
        if monitors
            .iter()
            .all(|m| m.holds_for_program(fail, candidate.as_ref()))
        {
            return idx;
        }
    }
    0
}

/// Execute the Fig. 4 response: roll back to `target` (computing the
/// consistent recovery line across all processes), then assemble the
/// global checkpoint for investigation.
pub fn respond(
    world: &mut World,
    tm: &mut TimeMachine,
    monitors: &[Monitor],
    fault: &DetectedFault,
) -> Result<RespondOutcome, fixd_timemachine::recovery::RollbackError> {
    // Global monitors without an implicated process: blame the process
    // with the most recent activity (highest checkpoint interval) — its
    // last receive is the likeliest trigger.
    let fail = fault.pid.unwrap_or_else(|| {
        (0..world.num_procs())
            .map(|i| Pid(i as u32))
            .max_by_key(|&p| tm.interval(p))
            .unwrap_or(Pid(0))
    });
    let target = choose_rollback_target(world, tm, monitors, fail);
    let rollback = tm.rollback(world, fail, target)?;
    let state = assemble_worldstate(world);
    Ok(RespondOutcome {
        target,
        rollback,
        state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::{Context, Program, WorldConfig};
    use fixd_timemachine::{CheckpointPolicy, TimeMachineConfig};

    /// Accumulator that goes "bad" once its sum exceeds a threshold.
    struct Acc {
        sum: u64,
    }
    impl Program for Acc {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                for v in [2u8, 3, 50, 1] {
                    ctx.send(Pid(1), 1, vec![v]);
                }
            }
        }
        fn on_message(&mut self, _ctx: &mut Context, msg: &fixd_runtime::Message) {
            self.sum += u64::from(msg.payload[0]);
        }
        fn snapshot(&self) -> Vec<u8> {
            self.sum.to_le_bytes().to_vec()
        }
        fn restore(&mut self, b: &[u8]) {
            self.sum = u64::from_le_bytes(b.try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Acc { sum: self.sum })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn setup() -> (World, TimeMachine, Vec<Monitor>) {
        let mut w = World::new(WorldConfig::seeded(5));
        w.add_process(Box::new(Acc { sum: 0 }));
        w.add_process(Box::new(Acc { sum: 0 }));
        let tm = TimeMachine::new(
            2,
            TimeMachineConfig {
                policy: CheckpointPolicy::EveryReceive,
                ..Default::default()
            },
        );
        let monitors = vec![Monitor::local::<Acc>("sum<=10", |_, a| a.sum <= 10)];
        (w, tm, monitors)
    }

    #[test]
    fn target_is_newest_good_checkpoint() {
        let (mut w, mut tm, monitors) = setup();
        tm.run(&mut w, 10_000);
        // Sum trajectory at P1: 0, 2, 5, 55, 56 — checkpoints before each
        // receive hold 0,2,5,55. Newest passing (<=10) is the one holding 5.
        let target = choose_rollback_target(&w, &tm, &monitors, Pid(1));
        let ck = tm.store(Pid(1)).get(target).unwrap();
        let sum = u64::from_le_bytes(ck.image.to_bytes().try_into().unwrap());
        assert_eq!(sum, 5);
    }

    #[test]
    fn respond_restores_good_state_and_assembles() {
        let (mut w, mut tm, monitors) = setup();
        tm.run(&mut w, 10_000);
        let fault = crate::detector::check_all(&monitors, &w, 0).expect("fault manifest");
        assert_eq!(fault.pid, Some(Pid(1)));
        let out = respond(&mut w, &mut tm, &monitors, &fault).unwrap();
        // Restored world passes the monitor again.
        assert!(monitors[0].violated_in(&w).is_none());
        // The assembled state carries the restored sum and the replayed
        // mail (the offending message is back in flight, to be
        // investigated/processed under new code).
        assert_eq!(out.state.program::<Acc>(Pid(1)).unwrap().sum, 5);
        assert!(
            out.state.mail_count() >= 1,
            "undone receives back in flight"
        );
        assert!(out.rollback.procs_rolled >= 1);
    }

    #[test]
    fn hopeless_process_falls_back_to_zero() {
        let (mut w, mut tm, _) = setup();
        tm.run(&mut w, 10_000);
        // A monitor nothing satisfies.
        let impossible = vec![Monitor::local::<Acc>("never", |_, _| false)];
        let target = choose_rollback_target(&w, &tm, &impossible, Pid(1));
        assert_eq!(target, 0);
    }
}
