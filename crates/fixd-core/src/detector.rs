//! Fault detection: invariant monitors over the running application.
//!
//! A [`Monitor`] is one user-specified invariant, usable in *both* FixD
//! contexts: online, against the live [`World`] (detection); and offline,
//! against the Investigator's [`WorldState`] (the same property drives
//! the state-space search). Declaring it once keeps the two in sync —
//! part of the "glue" this crate contributes.

use std::sync::Arc;

use fixd_investigator::{Invariant, WorldState};
use fixd_runtime::{Pid, Program, VTime, World};

/// A detected invariant violation in the live system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetectedFault {
    /// Which monitor fired.
    pub monitor: String,
    /// The process it implicates (local monitors; `None` for global).
    pub pid: Option<Pid>,
    /// Virtual time of detection.
    pub at: VTime,
    /// Executed events before detection.
    pub after_steps: u64,
}

/// Whole-world invariant check: `Some(culprit)` on violation.
type WorldCheck = Arc<dyn Fn(&World) -> Option<Option<Pid>> + Send + Sync>;
/// Per-process invariant check: `false` on violation.
type ProgramCheck = Arc<dyn Fn(Pid, &dyn Program) -> bool + Send + Sync>;

/// One invariant, with all the views FixD needs of it.
#[derive(Clone)]
pub struct Monitor {
    pub name: String,
    world_check: WorldCheck,
    program_check: ProgramCheck,
    model_invariant: Invariant<WorldState>,
}

impl Monitor {
    /// A **local** invariant over every process of program type `P`:
    /// `f(pid, program)` must hold everywhere. Violations implicate the
    /// first failing process.
    pub fn local<P: 'static>(
        name: &str,
        f: impl Fn(Pid, &P) -> bool + Send + Sync + 'static,
    ) -> Self {
        let f = Arc::new(f);
        let fw = Arc::clone(&f);
        let fp = Arc::clone(&f);
        let fm = Arc::clone(&f);
        Self {
            name: name.to_string(),
            world_check: Arc::new(move |w: &World| {
                for i in 0..w.num_procs() {
                    let pid = Pid(i as u32);
                    let ok = w.with_program(pid, |p| {
                        p.as_any().downcast_ref::<P>().is_none_or(|t| fw(pid, t))
                    });
                    if !ok {
                        return Some(Some(pid));
                    }
                }
                None
            }),
            program_check: Arc::new(move |pid, p: &dyn Program| {
                p.as_any().downcast_ref::<P>().is_none_or(|t| fp(pid, t))
            }),
            model_invariant: Invariant::for_program(name, move |pid, p: &P| fm(pid, p)),
        }
    }

    /// A **global** invariant: `fw` over the live world, `fm` over the
    /// Investigator's model state. The two closures must express the same
    /// property; keeping them adjacent here is the API's nudge.
    pub fn global(
        name: &str,
        fw: impl Fn(&World) -> bool + Send + Sync + 'static,
        fm: impl Fn(&WorldState) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            world_check: Arc::new(move |w| if fw(w) { None } else { Some(None) }),
            program_check: Arc::new(|_, _| true),
            model_invariant: Invariant::new(name, fm),
        }
    }

    /// A global invariant that also names the process to roll back when
    /// it fires (the "process that detected the fault" of Fig. 4 — for a
    /// global property, the process whose local anomaly triggered it).
    pub fn global_implicating(
        name: &str,
        fw: impl Fn(&World) -> bool + Send + Sync + 'static,
        implicate: impl Fn(&World) -> Pid + Send + Sync + 'static,
        fm: impl Fn(&WorldState) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            world_check: Arc::new(move |w| {
                if fw(w) {
                    None
                } else {
                    Some(Some(implicate(w)))
                }
            }),
            program_check: Arc::new(|_, _| true),
            model_invariant: Invariant::new(name, fm),
        }
    }

    /// Evaluate against the live world. `Some(pid)` = violated (with the
    /// implicated process, if local).
    pub fn violated_in(&self, world: &World) -> Option<Option<Pid>> {
        (self.world_check)(world)
    }

    /// Evaluate against a single restored program (used when choosing a
    /// rollback target; global monitors vacuously pass).
    pub fn holds_for_program(&self, pid: Pid, p: &dyn Program) -> bool {
        (self.program_check)(pid, p)
    }

    /// The Investigator-side invariant.
    pub fn invariant(&self) -> Invariant<WorldState> {
        self.model_invariant.clone()
    }
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Monitor({})", self.name)
    }
}

/// Evaluate all monitors; first violation wins.
pub(crate) fn check_all(
    monitors: &[Monitor],
    world: &World,
    after_steps: u64,
) -> Option<DetectedFault> {
    for m in monitors {
        if let Some(pid) = m.violated_in(world) {
            return Some(DetectedFault {
                monitor: m.name.clone(),
                pid,
                at: world.now(),
                after_steps,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::{Context, WorldConfig};

    pub(crate) struct Counter {
        pub n: u64,
    }
    impl Program for Counter {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                for _ in 0..5 {
                    ctx.send(Pid(1), 1, vec![1]);
                }
            }
        }
        fn on_message(&mut self, _ctx: &mut Context, _msg: &fixd_runtime::Message) {
            self.n += 1;
        }
        fn snapshot(&self) -> Vec<u8> {
            self.n.to_le_bytes().to_vec()
        }
        fn restore(&mut self, b: &[u8]) {
            self.n = u64::from_le_bytes(b.try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(Counter { n: self.n })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn world() -> World {
        let mut w = World::new(WorldConfig::seeded(1));
        w.add_process(Box::new(Counter { n: 0 }));
        w.add_process(Box::new(Counter { n: 0 }));
        w
    }

    #[test]
    fn local_monitor_fires_and_implicates() {
        let m = Monitor::local::<Counter>("n<3", |_, c| c.n < 3);
        let mut w = world();
        assert_eq!(m.violated_in(&w), None);
        w.run_to_quiescence(100);
        assert_eq!(m.violated_in(&w), Some(Some(Pid(1))));
    }

    #[test]
    fn global_monitor_fires_without_pid() {
        let m = Monitor::global(
            "total<4",
            |w: &World| {
                (0..w.num_procs())
                    .map(|i| w.program::<Counter>(Pid(i as u32)).unwrap().n)
                    .sum::<u64>()
                    < 4
            },
            |s| {
                (0..s.width())
                    .map(|i| s.program::<Counter>(Pid(i as u32)).unwrap().n)
                    .sum::<u64>()
                    < 4
            },
        );
        let mut w = world();
        w.run_to_quiescence(100);
        assert_eq!(m.violated_in(&w), Some(None));
    }

    #[test]
    fn program_check_is_local_only() {
        let local = Monitor::local::<Counter>("n<3", |_, c| c.n < 3);
        let global = Monitor::global("x", |_| false, |_| false);
        let good = Counter { n: 0 };
        let bad = Counter { n: 10 };
        assert!(local.holds_for_program(Pid(0), &good));
        assert!(!local.holds_for_program(Pid(0), &bad));
        assert!(global.holds_for_program(Pid(0), &bad), "global vacuous");
    }

    #[test]
    fn check_all_reports_first_violation() {
        let monitors = vec![
            Monitor::local::<Counter>("n<100", |_, c| c.n < 100),
            Monitor::local::<Counter>("n<3", |_, c| c.n < 3),
        ];
        let mut w = world();
        w.run_to_quiescence(100);
        let fault = check_all(&monitors, &w, 7).unwrap();
        assert_eq!(fault.monitor, "n<3");
        assert_eq!(fault.after_steps, 7);
    }

    #[test]
    fn monitor_invariant_mirrors_world_check() {
        let m = Monitor::local::<Counter>("n<3", |_, c| c.n < 3);
        let inv = m.invariant();
        assert_eq!(inv.name, "n<3");
    }
}
