//! Environment knobs shared across the workspace.
//!
//! Two runtime surfaces scale across cores — the campaign driver
//! (`FIXD_CAMPAIGN_THREADS`) and the sharded world executor
//! (`FIXD_SHARDS`) — and both take a positive worker count from the
//! environment. Parsing lives here once so the two knobs cannot drift:
//! both trim whitespace, both reject `0` (a zero-wide pool or zero-shard
//! world is meaningless, and silently clamping would hide a typo), and
//! both reject overflow explicitly instead of letting `usize::MAX`-sized
//! requests wrap into something plausible.

use std::env;

/// Environment variable selecting the shard count for sharded worlds.
pub const SHARDS_ENV: &str = "FIXD_SHARDS";

/// Why a count knob failed to parse. Split finely so tests (and error
/// messages) can distinguish a typo from an out-of-range request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CountParseError {
    /// Empty or whitespace-only input.
    Empty,
    /// Parsed fine, but `0` workers/shards is never a valid request.
    Zero,
    /// All digits, but the value exceeds `usize::MAX`.
    Overflow,
    /// Not a base-10 unsigned integer at all.
    Invalid,
}

impl std::fmt::Display for CountParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "empty value"),
            Self::Zero => write!(f, "count must be at least 1"),
            Self::Overflow => write!(f, "count overflows usize"),
            Self::Invalid => write!(f, "not a positive integer"),
        }
    }
}

/// Parse a positive worker/shard count: trimmed base-10, `1..=usize::MAX`.
///
/// Rejections are explicit — see [`CountParseError`]. Note `"+8"` is
/// rejected as [`CountParseError::Invalid`] even though `usize::parse`
/// would accept it: env knobs should be plain digits.
pub fn parse_count(raw: &str) -> Result<usize, CountParseError> {
    let s = raw.trim();
    if s.is_empty() {
        return Err(CountParseError::Empty);
    }
    if !s.bytes().all(|b| b.is_ascii_digit()) {
        return Err(CountParseError::Invalid);
    }
    match s.parse::<usize>() {
        Ok(0) => Err(CountParseError::Zero),
        Ok(n) => Ok(n),
        // All-digits input can only fail by exceeding usize::MAX.
        Err(_) => Err(CountParseError::Overflow),
    }
}

/// Read a count knob from the environment. `None` when the variable is
/// unset **or** malformed — a bad knob falls back to the caller's
/// default rather than aborting a long campaign.
pub fn env_count(var: &str) -> Option<usize> {
    env::var(var).ok().and_then(|v| parse_count(&v).ok())
}

/// The `FIXD_SHARDS` knob, if set and valid.
pub fn shards_from_env() -> Option<usize> {
    env_count(SHARDS_ENV)
}

/// Budget outer worker threads against per-task fan-out.
///
/// When every unit of work spins up `fanout` threads of its own (a
/// sharded campaign cell runs `FIXD_SHARDS` shard workers), running the
/// full `threads` workers oversubscribes the machine by a factor of
/// `fanout`: `FIXD_CAMPAIGN_THREADS × FIXD_SHARDS` threads contend for
/// `FIXD_CAMPAIGN_THREADS` cores. The fix is to spend the thread budget
/// on the *product*: at most `threads / fanout` outer workers, never
/// fewer than one (a fan-out wider than the budget still makes
/// progress, one cell at a time).
pub fn worker_budget(threads: usize, fanout: usize) -> usize {
    (threads / fanout.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_trimmed_positive_integers() {
        assert_eq!(parse_count("8"), Ok(8));
        assert_eq!(parse_count("  8  "), Ok(8));
        assert_eq!(parse_count("\t2\n"), Ok(2));
        assert_eq!(parse_count("1"), Ok(1));
    }

    #[test]
    fn rejects_each_edge_explicitly() {
        assert_eq!(parse_count(""), Err(CountParseError::Empty));
        assert_eq!(parse_count("   "), Err(CountParseError::Empty));
        assert_eq!(parse_count("0"), Err(CountParseError::Zero));
        assert_eq!(parse_count("00"), Err(CountParseError::Zero));
        // 2^64 = 18446744073709551616 exceeds usize::MAX on 64-bit (and
        // 32-bit) targets.
        assert_eq!(
            parse_count("18446744073709551616"),
            Err(CountParseError::Overflow)
        );
        assert_eq!(parse_count("-1"), Err(CountParseError::Invalid));
        assert_eq!(parse_count("+8"), Err(CountParseError::Invalid));
        assert_eq!(parse_count("eight"), Err(CountParseError::Invalid));
        assert_eq!(parse_count("8 shards"), Err(CountParseError::Invalid));
    }

    #[test]
    fn worker_budget_spends_the_product_not_the_factor() {
        // 8 workers × 4 shards would be 32 threads; the budget caps the
        // outer pool so the product stays within the 8-thread budget.
        assert_eq!(worker_budget(8, 4), 2);
        assert_eq!(worker_budget(8, 1), 8);
        assert_eq!(worker_budget(8, 8), 1);
        // Fan-out wider than the budget: still one worker, never zero.
        assert_eq!(worker_budget(2, 16), 1);
        assert_eq!(worker_budget(1, 1), 1);
        // Degenerate zero fan-out is treated as serial, not a panic.
        assert_eq!(worker_budget(8, 0), 8);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(
            CountParseError::Zero.to_string(),
            "count must be at least 1"
        );
    }
}
