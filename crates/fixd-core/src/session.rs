//! The [`Fixd`] supervisor: the four components glued into the workflow
//! of Figs. 4–5.

use fixd_healer::{HealReport, Healer, Patch};
use fixd_investigator::{ExploreReport, ModelAction, ModelD, WorldState};
use fixd_runtime::{Pid, World};
use fixd_scroll::{RecordConfig, ScrollQuery, ScrollRecorder, ScrollStore};
use fixd_timemachine::TimeMachine;

use crate::config::FixdConfig;
use crate::detector::{check_all, DetectedFault, Monitor};
use crate::protocol::{respond, RespondOutcome};
use crate::report::BugReport;

/// Result of a supervised run segment.
#[derive(Debug)]
pub struct SuperviseOutcome {
    /// Events executed in this segment.
    pub steps: u64,
    /// The first detected fault, if any (execution pauses there).
    pub fault: Option<DetectedFault>,
    /// True if the world went quiescent.
    pub quiescent: bool,
}

/// Bookkeeping counters of one supervisor: how much the Scroll and the
/// Time Machine recorded while supervising. Campaign drivers aggregate
/// these across cells.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FixdStats {
    /// Events executed under supervision.
    pub steps: u64,
    /// Scroll entries recorded across all processes.
    pub scroll_entries: usize,
    /// Live checkpoints held by the Time Machine.
    pub checkpoints: usize,
    /// Bytes held in checkpoint pages (after COW sharing).
    pub checkpoint_bytes: usize,
}

/// FixD, assembled: Scroll + Time Machine + Investigator + Healer around
/// one [`World`].
pub struct Fixd {
    cfg: FixdConfig,
    tm: TimeMachine,
    scroll: ScrollRecorder,
    monitors: Vec<Monitor>,
    healer: Healer,
    steps: u64,
}

impl Fixd {
    /// A supervisor for a world of `n` processes. When the config names
    /// a shared [`fixd_timemachine::PageStore`] the Time Machine interns
    /// checkpoint pages there; when it names a scroll spill target the
    /// Scroll seals and spills its prefixes there.
    pub fn new(n: usize, cfg: FixdConfig) -> Self {
        let record = RecordConfig {
            record_drops: cfg.record_drops,
        };
        Self {
            tm: match &cfg.page_store {
                Some(store) => TimeMachine::with_store(n, cfg.tm_config(), store.clone()),
                None => TimeMachine::new(n, cfg.tm_config()),
            },
            scroll: match &cfg.scroll_spill {
                Some(spill) => ScrollRecorder::with_spill(n, record, spill.clone()),
                None => ScrollRecorder::new(n, record),
            },
            monitors: Vec::new(),
            healer: Healer::new(),
            steps: 0,
            cfg,
        }
    }

    /// Add an invariant monitor (builder style).
    pub fn monitor(mut self, m: Monitor) -> Self {
        self.monitors.push(m);
        self
    }

    /// Register a patch with the Healer.
    pub fn register_patch(&mut self, patch: Patch) {
        self.healer.register(patch);
    }

    /// The Time Machine (e.g. for explicit speculations).
    pub fn time_machine(&mut self) -> &mut TimeMachine {
        &mut self.tm
    }

    /// The Scroll accumulated so far.
    pub fn scroll(&self) -> &ScrollStore {
        self.scroll.store()
    }

    /// The configured monitors.
    pub fn monitors(&self) -> &[Monitor] {
        &self.monitors
    }

    /// Drive the world under full FixD supervision (checkpointing +
    /// logging + detection) until a fault fires, the world quiesces, or
    /// `max_steps` execute.
    pub fn supervise(&mut self, world: &mut World, max_steps: u64) -> SuperviseOutcome {
        let mut steps = 0u64;
        while steps < max_steps {
            let Some(ev) = world.peek() else {
                return SuperviseOutcome {
                    steps,
                    fault: None,
                    quiescent: true,
                };
            };
            self.tm.before_step(world, &ev);
            let Some(rec) = world.step() else {
                return SuperviseOutcome {
                    steps,
                    fault: None,
                    quiescent: true,
                };
            };
            self.tm.after_step(world, &rec);
            self.scroll.observe(world, &rec);
            steps += 1;
            self.steps += 1;
            // `check_every == 0` would make `is_multiple_of` always
            // false and silently disable monitoring; treat it as 1.
            if self.steps.is_multiple_of(self.cfg.check_every.max(1)) {
                if let Some(fault) = check_all(&self.monitors, world, self.steps) {
                    return SuperviseOutcome {
                        steps,
                        fault: Some(fault),
                        quiescent: false,
                    };
                }
            }
        }
        SuperviseOutcome {
            steps,
            fault: None,
            quiescent: false,
        }
    }

    /// Fig. 4 response: roll back to a checkpoint where the invariants
    /// hold and assemble the consistent global checkpoint.
    pub fn respond(
        &mut self,
        world: &mut World,
        fault: &DetectedFault,
    ) -> Result<RespondOutcome, fixd_timemachine::recovery::RollbackError> {
        respond(world, &mut self.tm, &self.monitors, fault)
    }

    /// Investigate an assembled checkpoint: explore execution paths and
    /// return the trails that lead to invariant violations (Fig. 3).
    pub fn investigate(&self, state: WorldState) -> ExploreReport<ModelAction> {
        let mut md = ModelD::from_checkpoint(self.cfg.seed, self.cfg.net_model, state)
            .config(self.cfg.explore.clone());
        for m in &self.monitors {
            md = md.invariant(m.invariant());
        }
        md.run()
    }

    /// The full detect→respond→investigate→report pipeline, starting from
    /// an already-detected fault.
    pub fn diagnose(
        &mut self,
        world: &mut World,
        fault: DetectedFault,
    ) -> Result<BugReport, fixd_timemachine::recovery::RollbackError> {
        let outcome = self.respond(world, &fault)?;
        let ckpt_fp = {
            // Fingerprint of the assembled checkpoint (via its model).
            use fixd_investigator::system::TransitionSystem;
            let model = fixd_investigator::WorldModel::from_state(
                self.cfg.seed,
                self.cfg.net_model,
                outcome.state.clone(),
            );
            let s = model.initial();
            model.fingerprint(&s)
        };
        let explore = self.investigate(outcome.state);
        let scroll_excerpt = match fault.pid {
            Some(pid) => ScrollQuery::new(&self.scroll.store().scroll(pid)).render(),
            None => String::new(),
        };
        Ok(BugReport::assemble(
            fault,
            outcome.rollback.line.clone(),
            world.now(),
            &explore,
            world.trace().render_tail(10),
            scroll_excerpt,
            ckpt_fp,
        ))
    }

    /// Fig. 5 recovery, option 2: dynamic update from a checkpoint of
    /// `fail`. Picks the *newest* checkpoint whose restored state the
    /// patch precondition accepts and where the local monitors hold —
    /// the paper's "restarted from a previously saved checkpoint where
    /// all invariants are satisfied" with the §4.4 state-equivalence
    /// gate. Falls back deeper automatically (ultimately to checkpoint
    /// 0) when shallow update points are refused.
    pub fn heal_update(
        &mut self,
        world: &mut World,
        fail: Pid,
        patch: &Patch,
    ) -> Result<HealReport, fixd_healer::update::HealError> {
        let latest = self.tm.interval(fail);
        let mut target = latest;
        for idx in (0..=latest).rev() {
            let store = self.tm.store(fail);
            if !store.is_live(idx) {
                continue;
            }
            let Some(ck) = store.get(idx) else { continue };
            let state = ck.image.to_bytes();
            let monitors_ok = {
                let mut candidate = world.with_program(fail, |p| p.clone_program());
                candidate.restore(&state);
                self.monitors
                    .iter()
                    .all(|m| m.holds_for_program(fail, candidate.as_ref()))
            };
            if monitors_ok && patch.applicable_to(&state) {
                target = idx;
                break;
            }
            if idx == 0 {
                target = 0;
            }
        }
        let monitors = self.monitors.clone();
        self.healer.update_from_checkpoint(
            world,
            &mut self.tm,
            fail,
            target,
            patch,
            &[],
            move |w| monitors.iter().all(|m| m.violated_in(w).is_none()),
        )
    }

    /// Fig. 5 recovery, option 1: restart processes from scratch on the
    /// patched code.
    pub fn heal_restart(&mut self, world: &mut World, patch: &Patch, pids: &[Pid]) -> HealReport {
        self.healer
            .restart_from_scratch(world, &self.tm, patch, pids)
    }

    /// Events executed under supervision so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Scroll + Time Machine bookkeeping counters for this supervisor.
    pub fn stats(&self) -> FixdStats {
        FixdStats {
            steps: self.steps,
            scroll_entries: self.scroll.store().total_entries(),
            checkpoints: self.tm.total_checkpoints(),
            checkpoint_bytes: self.tm.total_checkpoint_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_healer::migrate;
    use fixd_runtime::{Context, Message, Program, WorldConfig};

    /// A replicated max-register with a lost-update bug: replicas apply
    /// values but the buggy version applies DECREASES too.
    struct MaxRegV1 {
        value: u64,
    }
    impl Program for MaxRegV1 {
        fn on_start(&mut self, ctx: &mut Context) {
            if ctx.pid() == Pid(0) {
                for v in [5u8, 9, 3] {
                    // 3 after 9: the bug will regress the register
                    ctx.send(Pid(1), 1, vec![v]);
                }
            }
        }
        fn on_message(&mut self, _ctx: &mut Context, msg: &Message) {
            // BUG: should be self.value = self.value.max(new)
            self.value = u64::from(msg.payload[0]);
        }
        fn snapshot(&self) -> Vec<u8> {
            self.value.to_le_bytes().to_vec()
        }
        fn restore(&mut self, b: &[u8]) {
            self.value = u64::from_le_bytes(b.try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(MaxRegV1 { value: self.value })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    struct MaxRegV2 {
        value: u64,
    }
    impl Program for MaxRegV2 {
        fn on_message(&mut self, _ctx: &mut Context, msg: &Message) {
            self.value = self.value.max(u64::from(msg.payload[0]));
        }
        fn snapshot(&self) -> Vec<u8> {
            self.value.to_le_bytes().to_vec()
        }
        fn restore(&mut self, b: &[u8]) {
            self.value = u64::from_le_bytes(b.try_into().unwrap());
        }
        fn clone_program(&self) -> Box<dyn Program> {
            Box::new(MaxRegV2 { value: self.value })
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Monotonicity monitor: the register at P1 must never be below a
    /// previously confirmed high-water mark. Modeled simply: value never
    /// regresses below 9 once the 9 was sent... we keep it simple and
    /// assert value != 3 (the regressed state).
    fn monitors() -> Monitor {
        Monitor::local::<MaxRegV1>("no-regression", |_, r| r.value != 3)
    }

    fn setup() -> (World, Fixd) {
        let mut w = World::new(WorldConfig::seeded(7));
        w.add_process(Box::new(MaxRegV1 { value: 0 }));
        w.add_process(Box::new(MaxRegV1 { value: 0 }));
        let fixd = Fixd::new(2, FixdConfig::seeded(7)).monitor(monitors());
        (w, fixd)
    }

    #[test]
    fn supervise_detects_the_regression() {
        let (mut w, mut fixd) = setup();
        let out = fixd.supervise(&mut w, 10_000);
        let fault = out.fault.expect("regression must be detected");
        assert_eq!(fault.monitor, "no-regression");
        assert_eq!(fault.pid, Some(Pid(1)));
        assert!(!out.quiescent);
        // Scroll recorded the run so far.
        assert!(fixd.scroll().total_entries() > 0);
    }

    #[test]
    fn diagnose_produces_reproducing_report() {
        let (mut w, mut fixd) = setup();
        let fault = fixd.supervise(&mut w, 10_000).fault.unwrap();
        let report = fixd.diagnose(&mut w, fault).unwrap();
        assert!(
            report.reproduced(),
            "investigator must rediscover the bug:\n{}",
            report.render()
        );
        assert!(report.states_explored >= 2);
        let text = report.render();
        assert!(text.contains("no-regression"));
        assert!(text.contains("trail #1"));
    }

    #[test]
    fn full_loop_detect_diagnose_heal_update() {
        let (mut w, mut fixd) = setup();
        let fault = fixd.supervise(&mut w, 10_000).fault.unwrap();
        let _report = fixd.diagnose(&mut w, fault.clone()).unwrap();
        // The programmer writes the fix; FixD applies it in place.
        let patch = Patch::code_only("maxreg-fix", 1, 2, || Box::new(MaxRegV2 { value: 0 }))
            .with_migration(migrate::identity());
        let heal = fixd.heal_update(&mut w, Pid(1), &patch).unwrap();
        assert!(heal.salvaged_events > 0);
        // Resume: the offending message replays into the FIXED code.
        let out = fixd.supervise(&mut w, 10_000);
        assert!(out.fault.is_none(), "no more regression after the fix");
        assert!(out.quiescent);
        assert_eq!(w.program::<MaxRegV2>(Pid(1)).unwrap().value, 9);
    }

    #[test]
    fn heal_restart_loses_progress_but_fixes() {
        let (mut w, mut fixd) = setup();
        let fault = fixd.supervise(&mut w, 10_000).fault.unwrap();
        let _ = fault;
        let patch = Patch::code_only("maxreg-fix", 1, 2, || Box::new(MaxRegV2 { value: 0 }));
        let heal = fixd.heal_restart(&mut w, &patch, &[Pid(1)]);
        assert_eq!(heal.salvaged_events, 0);
        let out = fixd.supervise(&mut w, 10_000);
        assert!(out.fault.is_none());
        // All original messages were consumed by v1 before the restart;
        // the restarted v2 has only what arrives afterwards (nothing).
        assert_eq!(w.program::<MaxRegV2>(Pid(1)).unwrap().value, 0);
    }

    #[test]
    fn supervised_run_with_spill_and_shared_store_matches_plain_run() {
        use fixd_runtime::SharedDisk;
        use fixd_scroll::SpillConfig;
        use fixd_timemachine::PageStore;

        // Plain supervisor: everything resident, private page store.
        let mut w1 = World::new(WorldConfig::seeded(7));
        w1.add_process(Box::new(MaxRegV1 { value: 0 }));
        w1.add_process(Box::new(MaxRegV1 { value: 0 }));
        let mut plain = Fixd::new(2, FixdConfig::seeded(7));
        plain.supervise(&mut w1, 10_000);

        // Storage-backed supervisor: shared page store + scroll spill.
        let mut w2 = World::new(WorldConfig::seeded(7));
        w2.add_process(Box::new(MaxRegV1 { value: 0 }));
        w2.add_process(Box::new(MaxRegV1 { value: 0 }));
        let pages = PageStore::new();
        let disk = SharedDisk::new();
        let mut cfg = FixdConfig::seeded(7);
        cfg.page_store = Some(pages.clone());
        cfg.scroll_spill = Some(SpillConfig::new(disk.clone(), 128));
        let mut backed = Fixd::new(2, cfg);
        backed.supervise(&mut w2, 10_000);

        // Identical logical scroll, byte for byte, despite spilling.
        for pid in [Pid(0), Pid(1)] {
            assert_eq!(
                backed.scroll().encode_segment(pid),
                plain.scroll().encode_segment(pid),
                "spilled scroll must re-read to the identical wire bytes"
            );
        }
        assert!(
            backed.scroll().spilled_segments() > 0,
            "the 128-byte threshold must have sealed something"
        );
        // Checkpoints were interned into the caller's shared store.
        assert!(pages.unique_bytes() > 0);
        assert_eq!(
            pages.unique_bytes(),
            backed.time_machine().total_checkpoint_bytes()
        );
        // And the two worlds ended in the same state.
        assert_eq!(
            w1.global_snapshot().fingerprint(),
            w2.global_snapshot().fingerprint()
        );
    }

    #[test]
    fn supervise_runs_to_quiescence_when_clean() {
        let mut w = World::new(WorldConfig::seeded(7));
        w.add_process(Box::new(MaxRegV1 { value: 0 }));
        w.add_process(Box::new(MaxRegV1 { value: 0 }));
        // Monitor that never fires.
        let mut fixd = Fixd::new(2, FixdConfig::seeded(7))
            .monitor(Monitor::local::<MaxRegV1>("true", |_, _| true));
        let out = fixd.supervise(&mut w, 10_000);
        assert!(out.quiescent);
        assert!(out.fault.is_none());
        assert_eq!(fixd.steps(), out.steps);
    }
}
