//! Bug reports — the "bug reporting" of the paper's title.
//!
//! A report is what FixD hands the programmer after a fault: what fired,
//! where the system was rolled back to, what the Investigator found, the
//! relevant Scroll excerpt, and the trails that reproduce the violation.
//! It replaces "the traditional printf logging and debugging mechanisms"
//! (§1) with a structured artifact.

use fixd_investigator::{ExploreReport, ModelAction, Trail};
use fixd_runtime::VTime;

use crate::detector::DetectedFault;

/// A structured bug report.
#[derive(Clone, Debug)]
pub struct BugReport {
    /// The detected fault.
    pub fault: DetectedFault,
    /// Recovery line applied before investigation (checkpoint index per
    /// process; `u64::MAX` = not rolled back).
    pub recovery_line: Vec<u64>,
    /// Virtual time at which the report was produced.
    pub produced_at: VTime,
    /// Investigator statistics.
    pub states_explored: usize,
    pub transitions: u64,
    pub truncated: bool,
    /// Trails that lead to invariant violations (stringified actions, so
    /// the report is self-contained).
    pub trails: Vec<Trail<String>>,
    /// Deadlock trails, if any.
    pub deadlocks: Vec<Trail<String>>,
    /// Tail of the runtime trace before detection.
    pub trace_tail: String,
    /// Scroll excerpt for the implicated process.
    pub scroll_excerpt: String,
    /// Fingerprint of the assembled global checkpoint investigated.
    pub checkpoint_fingerprint: u64,
}

impl BugReport {
    /// Build from the pieces the session gathered.
    pub fn assemble(
        fault: DetectedFault,
        recovery_line: Vec<u64>,
        produced_at: VTime,
        explore: &ExploreReport<ModelAction>,
        trace_tail: String,
        scroll_excerpt: String,
        checkpoint_fingerprint: u64,
    ) -> Self {
        let stringify = |t: &Trail<ModelAction>| t.clone().map_labels(|l| l.describe());
        Self {
            fault,
            recovery_line,
            produced_at,
            states_explored: explore.states,
            transitions: explore.transitions,
            truncated: explore.truncated,
            trails: explore.violations.iter().map(stringify).collect(),
            deadlocks: explore.deadlocks.iter().map(stringify).collect(),
            trace_tail,
            scroll_excerpt,
            checkpoint_fingerprint,
        }
    }

    /// Did the investigation confirm the fault is reachable from the
    /// restored checkpoint?
    pub fn reproduced(&self) -> bool {
        !self.trails.is_empty()
    }

    /// Render the report as human-readable text.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "==================== FixD BUG REPORT ===================="
        );
        let _ = writeln!(
            s,
            "fault     : invariant `{}` violated{} at t={} (after {} events)",
            self.fault.monitor,
            self.fault
                .pid
                .map(|p| format!(" at {p}"))
                .unwrap_or_else(|| " (global)".to_string()),
            self.fault.at,
            self.fault.after_steps
        );
        let line: Vec<String> = self
            .recovery_line
            .iter()
            .map(|&l| {
                if l == u64::MAX {
                    "-".into()
                } else {
                    l.to_string()
                }
            })
            .collect();
        let _ = writeln!(s, "rollback  : recovery line [{}]", line.join(" "));
        let _ = writeln!(
            s,
            "invest.   : {} states, {} transitions{} from checkpoint {:016x}",
            self.states_explored,
            self.transitions,
            if self.truncated { " (truncated)" } else { "" },
            self.checkpoint_fingerprint
        );
        let _ = writeln!(
            s,
            "verdict   : {} violating trail(s), {} deadlock(s){}",
            self.trails.len(),
            self.deadlocks.len(),
            if self.reproduced() {
                " — fault REPRODUCED from checkpoint"
            } else {
                ""
            }
        );
        for (i, t) in self.trails.iter().enumerate() {
            let _ = writeln!(s, "---- trail #{} ----", i + 1);
            let _ = write!(s, "{}", t.render(|l| l.clone()));
        }
        if !self.scroll_excerpt.is_empty() {
            let _ = writeln!(s, "---- scroll (implicated process) ----");
            let _ = write!(s, "{}", self.scroll_excerpt);
        }
        if !self.trace_tail.is_empty() {
            let _ = writeln!(s, "---- trace tail ----");
            let _ = write!(s, "{}", self.trace_tail);
        }
        let _ = writeln!(
            s,
            "========================================================="
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixd_runtime::Pid;

    fn fault() -> DetectedFault {
        DetectedFault {
            monitor: "inv".into(),
            pid: Some(Pid(1)),
            at: 42,
            after_steps: 10,
        }
    }

    fn sample_report(trails: Vec<Trail<String>>) -> BugReport {
        BugReport {
            fault: fault(),
            recovery_line: vec![u64::MAX, 3],
            produced_at: 50,
            states_explored: 100,
            transitions: 250,
            truncated: false,
            trails,
            deadlocks: vec![],
            trace_tail: "#1 t=1 ...\n".into(),
            scroll_excerpt: "[P1 #0 t=0] start\n".into(),
            checkpoint_fingerprint: 0xabcd,
        }
    }

    #[test]
    fn render_contains_key_facts() {
        let t = Trail {
            labels: vec!["deliver P0→P1".to_string()],
            violation: "inv".into(),
            end_fingerprint: 1,
            depth: 1,
        };
        let r = sample_report(vec![t]);
        assert!(r.reproduced());
        let text = r.render();
        assert!(text.contains("invariant `inv` violated at P1"));
        assert!(text.contains("recovery line [- 3]"));
        assert!(text.contains("100 states"));
        assert!(text.contains("REPRODUCED"));
        assert!(text.contains("deliver P0→P1"));
        assert!(text.contains("scroll"));
    }

    #[test]
    fn unreproduced_report_says_so() {
        let r = sample_report(vec![]);
        assert!(!r.reproduced());
        assert!(!r.render().contains("REPRODUCED"));
    }
}
