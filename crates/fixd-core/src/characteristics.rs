//! The characteristics matrix of Figure 8.
//!
//! "Figure 8 presents an overview of the characteristics of the
//! techniques and tools discussed in this paper, both from the point of
//! view of the type of service they provide (preventive, diagnostic, or
//! treatment) to find and cure bugs, and of the generality of the service
//! (comprehensive or just opportunistic)." (§5)
//!
//! The matrix here is data (regenerated programmatically by
//! `fixd-bench`'s `fig8_matrix` binary) so the reproduction can print the
//! table in the paper's exact layout and tests can assert its content.

/// The five base mechanisms of the paper's comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Model Checking (MC)
    ModelChecking,
    /// Logging (L)
    Logging,
    /// Checkpoint & Rollback (CR)
    CheckpointRollback,
    /// Dynamic Updates (DU)
    DynamicUpdates,
    /// Speculations (S)
    Speculations,
}

impl Technique {
    /// The paper's abbreviation.
    pub fn abbrev(&self) -> &'static str {
        match self {
            Technique::ModelChecking => "MC",
            Technique::Logging => "L",
            Technique::CheckpointRollback => "CR",
            Technique::DynamicUpdates => "DU",
            Technique::Speculations => "S",
        }
    }

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Technique::ModelChecking => "Model Checking (MC)",
            Technique::Logging => "Logging (L)",
            Technique::CheckpointRollback => "Checkpoint & Rollback (CR)",
            Technique::DynamicUpdates => "Dynamic Updates (DU)",
            Technique::Speculations => "Speculations (S)",
        }
    }
}

/// The five capability columns of Fig. 8.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Capabilities {
    /// Finds bugs before they bite (verification).
    pub preventive: bool,
    /// Explains what went wrong after the fact.
    pub diagnostic: bool,
    /// Repairs the running system.
    pub treatment: bool,
    /// Covers the whole behavior space.
    pub comprehensive: bool,
    /// Covers only behaviors that happened to occur.
    pub opportunistic: bool,
}

impl Capabilities {
    /// Build from the five flags in column order.
    pub const fn new(p: bool, d: bool, t: bool, c: bool, o: bool) -> Self {
        Self {
            preventive: p,
            diagnostic: d,
            treatment: t,
            comprehensive: c,
            opportunistic: o,
        }
    }

    /// Render as the paper's check/dash cells.
    pub fn cells(&self) -> [&'static str; 5] {
        let f = |b: bool| if b { "√" } else { "−" };
        [
            f(self.preventive),
            f(self.diagnostic),
            f(self.treatment),
            f(self.comprehensive),
            f(self.opportunistic),
        ]
    }

    /// Union (a tool composed of several techniques).
    pub fn union(self, other: Capabilities) -> Capabilities {
        Capabilities {
            preventive: self.preventive || other.preventive,
            diagnostic: self.diagnostic || other.diagnostic,
            treatment: self.treatment || other.treatment,
            comprehensive: self.comprehensive || other.comprehensive,
            opportunistic: self.opportunistic || other.opportunistic,
        }
    }
}

/// One row of Fig. 8.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatrixRow {
    /// "Techniques" or "Tools" section.
    pub section: &'static str,
    pub name: String,
    /// Mechanisms the row uses (tools only; empty for techniques).
    pub uses: Vec<Technique>,
    pub caps: Capabilities,
}

/// The capabilities of a base technique, exactly as Fig. 8 assigns them.
pub fn technique_caps(t: Technique) -> Capabilities {
    match t {
        //                                   prev   diag   treat  compr  opport
        Technique::ModelChecking => Capabilities::new(true, false, false, true, false),
        Technique::Logging => Capabilities::new(false, true, false, false, true),
        Technique::CheckpointRollback => Capabilities::new(false, false, false, false, true),
        Technique::DynamicUpdates => Capabilities::new(false, false, true, false, false),
        Technique::Speculations => Capabilities::new(false, false, true, false, true),
    }
}

/// The full Fig. 8 matrix: five techniques, then the three tools.
///
/// Note the paper's deliberate subtlety, preserved here: a tool's row is
/// **not** simply the union of its techniques' rows — e.g. liblog uses
/// L & CR but its row matches L alone (its checkpointing serves replay,
/// not recovery), and CMC uses MC but is scored opportunistic-only
/// (it explores real code from states an execution reaches, without an
/// abstract comprehensive model). FixD's composition is what achieves
/// all five.
pub fn matrix() -> Vec<MatrixRow> {
    let techniques = [
        Technique::ModelChecking,
        Technique::Logging,
        Technique::CheckpointRollback,
        Technique::DynamicUpdates,
        Technique::Speculations,
    ];
    let mut rows: Vec<MatrixRow> = techniques
        .iter()
        .map(|&t| MatrixRow {
            section: "Techniques",
            name: t.name().to_string(),
            uses: vec![],
            caps: technique_caps(t),
        })
        .collect();
    rows.push(MatrixRow {
        section: "Tools",
        name: "liblog (L & CR)".to_string(),
        uses: vec![Technique::Logging, Technique::CheckpointRollback],
        caps: Capabilities::new(false, true, false, false, true),
    });
    rows.push(MatrixRow {
        section: "Tools",
        name: "CMC (MC)".to_string(),
        uses: vec![Technique::ModelChecking],
        caps: Capabilities::new(false, false, false, false, true),
    });
    rows.push(MatrixRow {
        section: "Tools",
        name: "FixD (M & L & S & DU)".to_string(),
        uses: vec![
            Technique::ModelChecking,
            Technique::Logging,
            Technique::Speculations,
            Technique::DynamicUpdates,
        ],
        caps: Capabilities::new(true, true, true, true, true),
    });
    rows
}

/// Render the matrix as an aligned text table (the `fig8_matrix` output).
pub fn render_matrix() -> String {
    use std::fmt::Write;
    let rows = matrix();
    let headers = [
        "preventive",
        "diagnostic",
        "treatment",
        "comprehensive",
        "opportunistic",
    ];
    let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(10) + 2;
    let mut s = String::new();
    let _ = write!(s, "{:name_w$}", "");
    for h in headers {
        let _ = write!(s, "{h:^15}");
    }
    let _ = writeln!(s);
    let mut section = "";
    for r in &rows {
        if r.section != section {
            section = r.section;
            let _ = writeln!(s, "--- {section} ---");
        }
        let _ = write!(s, "{:name_w$}", r.name);
        for c in r.caps.cells() {
            let _ = write!(s, "{c:^15}");
        }
        let _ = writeln!(s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technique_rows_match_figure8() {
        // Row order and cells exactly as the paper's Figure 8.
        let rows = matrix();
        let expect: Vec<(&str, [bool; 5])> = vec![
            ("Model Checking (MC)", [true, false, false, true, false]),
            ("Logging (L)", [false, true, false, false, true]),
            (
                "Checkpoint & Rollback (CR)",
                [false, false, false, false, true],
            ),
            ("Dynamic Updates (DU)", [false, false, true, false, false]),
            ("Speculations (S)", [false, false, true, false, true]),
            ("liblog (L & CR)", [false, true, false, false, true]),
            ("CMC (MC)", [false, false, false, false, true]),
            ("FixD (M & L & S & DU)", [true, true, true, true, true]),
        ];
        assert_eq!(rows.len(), expect.len());
        for (row, (name, caps)) in rows.iter().zip(expect) {
            assert_eq!(row.name, name);
            assert_eq!(
                [
                    row.caps.preventive,
                    row.caps.diagnostic,
                    row.caps.treatment,
                    row.caps.comprehensive,
                    row.caps.opportunistic
                ],
                caps,
                "row {name}"
            );
        }
    }

    #[test]
    fn fixd_is_the_only_all_check_row() {
        let all = Capabilities::new(true, true, true, true, true);
        let full_rows: Vec<_> = matrix().into_iter().filter(|r| r.caps == all).collect();
        assert_eq!(full_rows.len(), 1);
        assert!(full_rows[0].name.starts_with("FixD"));
    }

    #[test]
    fn union_composes() {
        let mc = technique_caps(Technique::ModelChecking);
        let du = technique_caps(Technique::DynamicUpdates);
        let u = mc.union(du);
        assert!(u.preventive && u.treatment && u.comprehensive);
        assert!(!u.diagnostic);
    }

    #[test]
    fn render_contains_all_rows_and_sections() {
        let text = render_matrix();
        assert!(text.contains("--- Techniques ---"));
        assert!(text.contains("--- Tools ---"));
        assert!(text.contains("FixD"));
        assert!(text.contains("liblog"));
        assert!(text.contains("preventive"));
        // FixD row has five checks.
        let fixd_line = text.lines().find(|l| l.contains("FixD")).unwrap();
        assert_eq!(fixd_line.matches('√').count(), 5);
    }

    #[test]
    fn abbrevs() {
        assert_eq!(Technique::ModelChecking.abbrev(), "MC");
        assert_eq!(Technique::Speculations.abbrev(), "S");
    }
}
