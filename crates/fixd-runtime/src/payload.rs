//! [`Payload`] — one shared, immutable message-payload buffer.
//!
//! The paper's supervised-execution loop observes every message several
//! times over: the network delivers it, the Scroll records it (§3.1), and
//! the Time Machine captures it again inside consistent checkpoints
//! (§3.2). With `Vec<u8>` payloads each of those observation points paid
//! for a full byte copy. `Payload` is a **view** (offset + length) into a
//! shared `Arc<[u8]>` buffer: the bytes are materialized **once**, at
//! send time, and every later observer — duplicate deliveries, scroll
//! entries, trace records, in-flight checkpoint captures — aliases the
//! same allocation. Since the allocation-free-step-loop refactor a view
//! may also cover a *sub-range* of a larger buffer: decoding a spilled
//! scroll segment produces one buffer for the whole segment and every
//! decoded message payload aliases its slice of it
//! ([`Payload::slice_of`]), instead of one fresh allocation per entry.
//! The only component allowed to materialize a *second* copy is the
//! corruption fault path, which flips a byte through the copy-on-write
//! [`Payload::to_mut`].
//!
//! The module keeps two **thread-local** counters so the win is a
//! measured number rather than a claim:
//!
//! * **copied** bytes — bytes physically written into a payload
//!   allocation (initial materialization and copy-on-write splits);
//! * **aliased** bytes — bytes a [`Payload::clone`] (or a zero-copy
//!   [`Payload::slice_of`]) *shared* instead of copying, i.e. exactly
//!   the bytes the pre-`Payload` code would have `memcpy`ed.
//!
//! Thread-locality is what makes the counters *attributable*: a
//! deterministic simulation runs one [`crate::World`] per thread at a
//! time, so a world can snapshot the counters at construction and report
//! exact per-world (and therefore per-campaign-cell) deltas — see
//! [`crate::World::payload_stats`]. Campaign cells aggregate those
//! per-cell figures; `bench/payload_demo` reads them from the campaign
//! report to emit `BENCH_payload.json`.

use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    static BYTES_COPIED: Cell<u64> = const { Cell::new(0) };
    static BYTES_ALIASED: Cell<u64> = const { Cell::new(0) };
}

fn add_copied(n: u64) {
    BYTES_COPIED.with(|c| c.set(c.get().wrapping_add(n)));
}

fn add_aliased(n: u64) {
    BYTES_ALIASED.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Count payload bytes that were *shared* rather than copied by a
/// non-`Payload` handle (e.g. a [`crate::SharedMessage`] clone, which
/// aliases its message's payload without touching the `Payload` itself).
pub(crate) fn note_aliased(n: usize) {
    add_aliased(n as u64);
}

/// Snapshot of one thread's payload copy/alias counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PayloadStats {
    /// Bytes physically copied into payload allocations (materialization
    /// from `Vec<u8>`/`&[u8]` plus copy-on-write splits in [`Payload::to_mut`]).
    pub copied: u64,
    /// Bytes shared by `Payload::clone` instead of copied — the bytes a
    /// `Vec<u8>` payload representation would have duplicated.
    pub aliased: u64,
}

impl PayloadStats {
    /// Counter deltas since `earlier` (for scoped measurements).
    pub fn since(self, earlier: PayloadStats) -> PayloadStats {
        PayloadStats {
            copied: self.copied.wrapping_sub(earlier.copied),
            aliased: self.aliased.wrapping_sub(earlier.aliased),
        }
    }

    /// Component-wise sum — folds per-worker-thread deltas into one
    /// figure (a sharded world's handler work runs on scoped threads
    /// whose thread-local counters die with them).
    pub fn plus(self, other: PayloadStats) -> PayloadStats {
        PayloadStats {
            copied: self.copied.wrapping_add(other.copied),
            aliased: self.aliased.wrapping_add(other.aliased),
        }
    }
}

/// Current values of this thread's payload counters. Counters are
/// per-thread and monotone; diff two snapshots (see
/// [`PayloadStats::since`]) to measure a region of interest that runs on
/// one thread — which every deterministic world does.
pub fn stats() -> PayloadStats {
    PayloadStats {
        copied: BYTES_COPIED.with(Cell::get),
        aliased: BYTES_ALIASED.with(Cell::get),
    }
}

/// An immutable, cheaply clonable message payload: a `(offset, length)`
/// view into one shared allocation (`Arc<[u8]>`).
///
/// * Construction from owned or borrowed bytes copies once (counted).
/// * [`Clone`] is a reference-count bump — O(1), no bytes move.
/// * [`Payload::slice_of`] carves a sub-view out of an existing payload
///   without touching the bytes (the segment-decode fast path).
/// * Reading is transparent: `Payload` derefs to `[u8]`, so indexing,
///   slicing, iteration, and `&msg.payload` as a `&[u8]` argument all
///   work exactly as they did when the field was a `Vec<u8>`.
/// * The single sanctioned mutation point is [`Payload::to_mut`]
///   (copy-on-write), used by the fault-injection corruption path.
#[derive(Debug, Eq)]
pub struct Payload {
    buf: Arc<[u8]>,
    off: usize,
    len: usize,
}

// Hash over the byte contents — consistent with `PartialEq`, which is
// content equality (with a same-view fast path).
impl std::hash::Hash for Payload {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Payload {
    /// The empty payload. All empties alias one process-wide zero-length
    /// buffer — `Arc<[u8]>` always heap-allocates its header, and the
    /// arena's recycle path empties every returning message, so a fresh
    /// `Arc::from(&[][..])` here would put an allocation back into the
    /// loop the arena exists to keep allocation-free.
    pub fn empty() -> Self {
        static EMPTY: std::sync::OnceLock<Arc<[u8]>> = std::sync::OnceLock::new();
        Payload {
            buf: EMPTY.get_or_init(|| Arc::from(&[][..])).clone(),
            off: 0,
            len: 0,
        }
    }

    fn whole(buf: Arc<[u8]>) -> Self {
        let len = buf.len();
        Payload { buf, off: 0, len }
    }

    /// Copy `bytes` into a fresh shared allocation (counted as copied).
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        add_copied(bytes.len() as u64);
        Payload::whole(Arc::from(bytes))
    }

    /// Wrap already-materialized bytes **without** bumping the copied
    /// counter. For byte strings that are *not* message payloads (e.g.
    /// program outputs joining the `Payload` representation): the
    /// counters specifically measure message-payload copy traffic, and
    /// that metric must not shift when other surfaces adopt the type.
    pub fn untracked(bytes: Vec<u8>) -> Self {
        Payload::whole(Arc::from(bytes))
    }

    /// A zero-copy sub-view of `base`: the returned payload aliases
    /// `base`'s backing buffer (counted as aliased — these are bytes a
    /// copying decoder would have materialized afresh).
    ///
    /// Panics if `range` is out of bounds of `base`.
    pub fn slice_of(base: &Payload, range: std::ops::Range<usize>) -> Self {
        assert!(range.start <= range.end && range.end <= base.len);
        add_aliased((range.end - range.start) as u64);
        Payload {
            buf: Arc::clone(&base.buf),
            off: base.off + range.start,
            len: range.end - range.start,
        }
    }

    /// The payload bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }

    /// Do `self` and `other` denote the same view of one allocation?
    /// (True aliasing — the zero-copy property tests assert with this.)
    pub fn ptr_eq(&self, other: &Payload) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf) && self.off == other.off && self.len == other.len
    }

    /// Do `self` and `other` share one backing allocation (possibly as
    /// different sub-views)? Segment-decode aliasing tests assert with
    /// this: every decoded payload shares the segment's buffer.
    pub fn shares_buffer(&self, other: &Payload) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }

    /// How many `Payload` handles currently share this allocation.
    pub fn strong_count(&self) -> usize {
        Arc::strong_count(&self.buf)
    }

    /// Copy-on-write mutable access: if this handle is the unique owner
    /// of its whole buffer the bytes are mutated in place (zero copies);
    /// otherwise the view is split into a private copy first (counted as
    /// copied).
    ///
    /// Only the corruption fault path should need this — everything else
    /// in the runtime treats payloads as immutable.
    pub fn to_mut(&mut self) -> &mut [u8] {
        let covers_whole = self.off == 0 && self.len == self.buf.len();
        if !covers_whole || Arc::get_mut(&mut self.buf).is_none() {
            add_copied(self.len as u64);
            let private: Arc<[u8]> = Arc::from(self.as_slice());
            *self = Payload::whole(private);
        }
        Arc::get_mut(&mut self.buf).expect("payload unique after copy-on-write split")
    }

    /// Clone the view (internal helper so `Clone` can count).
    fn share(&self) -> Payload {
        add_aliased(self.len as u64);
        Payload {
            buf: Arc::clone(&self.buf),
            off: self.off,
            len: self.len,
        }
    }
}

#[allow(clippy::non_canonical_clone_impl)] // counts aliased bytes
impl Clone for Payload {
    fn clone(&self) -> Self {
        self.share()
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::empty()
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        add_copied(v.len() as u64);
        Payload::whole(Arc::from(v))
    }
}

impl From<&[u8]> for Payload {
    fn from(b: &[u8]) -> Self {
        Payload::copy_from_slice(b)
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(b: &[u8; N]) -> Self {
        Payload::copy_from_slice(b)
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(b: [u8; N]) -> Self {
        Payload::copy_from_slice(&b)
    }
}

impl From<&Payload> for Payload {
    fn from(p: &Payload) -> Self {
        p.clone()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_reads() {
        let p = Payload::from(vec![1, 2, 3]);
        assert_eq!(p.len(), 3);
        assert_eq!(p[1], 2);
        assert_eq!(p.as_slice(), &[1, 2, 3]);
        assert_eq!(p, [1u8, 2, 3]);
        assert_eq!(p, vec![1u8, 2, 3]);
        assert_eq!(Payload::from(b"abc"), b"abc");
        assert!(Payload::empty().is_empty());
        assert!(Payload::default().is_empty());
    }

    #[test]
    fn clone_aliases_one_allocation() {
        let p = Payload::from(vec![9; 1024]);
        let q = p.clone();
        assert!(p.ptr_eq(&q));
        assert_eq!(p.strong_count(), 2);
        assert_eq!(p, q);
        // Equal content in a different allocation is == but not aliased.
        let r = Payload::from(vec![9; 1024]);
        assert_eq!(p, r);
        assert!(!p.ptr_eq(&r));
    }

    #[test]
    fn slice_of_shares_the_buffer() {
        let base = Payload::from((0u8..200).collect::<Vec<u8>>());
        let view = Payload::slice_of(&base, 10..20);
        assert_eq!(view.len(), 10);
        assert_eq!(view.as_slice(), &base.as_slice()[10..20]);
        assert!(view.shares_buffer(&base), "no new allocation");
        assert!(!view.ptr_eq(&base), "different view of the same buffer");
        assert_eq!(base.strong_count(), 2);
        // A sub-view of a sub-view still aliases the original buffer.
        let inner = Payload::slice_of(&view, 2..5);
        assert!(inner.shares_buffer(&base));
        assert_eq!(inner.as_slice(), &base.as_slice()[12..15]);
        // Content equality against an equal standalone payload holds.
        assert_eq!(inner, Payload::from(&base.as_slice()[12..15]));
    }

    #[test]
    fn slice_counts_aliased_not_copied() {
        let base = Payload::from(vec![5; 64]);
        let before = stats();
        let _v = Payload::slice_of(&base, 8..40);
        let delta = stats().since(before);
        assert_eq!(delta.copied, 0, "slicing must not copy");
        assert_eq!(delta.aliased, 32);
    }

    #[test]
    fn to_mut_in_place_when_unique() {
        // Pointer identity proves zero copies (counters are process-wide
        // and other test threads may bump them concurrently).
        let mut p = Payload::from(vec![1, 2, 3]);
        let addr = p.as_slice().as_ptr();
        p.to_mut()[0] ^= 0xFF;
        assert_eq!(
            p.as_slice().as_ptr(),
            addr,
            "unique owner mutates in place — no copy"
        );
        assert_eq!(p[0], 0xFE);
    }

    #[test]
    fn to_mut_copies_once_when_shared() {
        let mut p = Payload::from(vec![7; 100]);
        let q = p.clone();
        p.to_mut()[0] = 0;
        assert!(!p.ptr_eq(&q), "p split away from q");
        assert_eq!(q[0], 7, "the other owner is untouched");
        assert_eq!(p[0], 0);
        // The split made p unique again: further mutation is in-place.
        let addr = p.as_slice().as_ptr();
        p.to_mut()[1] = 1;
        assert_eq!(p.as_slice().as_ptr(), addr);
    }

    #[test]
    fn to_mut_on_a_view_splits_only_the_view() {
        let base = Payload::from((0u8..100).collect::<Vec<u8>>());
        let mut view = Payload::slice_of(&base, 50..60);
        view.to_mut()[0] = 0xAA;
        assert!(!view.shares_buffer(&base), "view split to a private copy");
        assert_eq!(view.len(), 10);
        assert_eq!(view[0], 0xAA);
        assert_eq!(base[50], 50, "the shared buffer is untouched");
        assert_eq!(&view[1..], &base.as_slice()[51..60]);
    }

    #[test]
    fn counters_track_copies_and_aliases() {
        let before = stats();
        let p = Payload::from(vec![0; 50]);
        let _q = p.clone();
        let _r = p.clone();
        let delta = stats().since(before);
        assert!(delta.copied >= 50);
        assert!(delta.aliased >= 100, "two clones alias 50 bytes each");
    }

    #[test]
    fn untracked_construction_leaves_counters_alone() {
        let before = stats();
        let p = Payload::untracked(vec![3; 4096]);
        let delta = stats().since(before);
        assert_eq!(delta.copied, 0, "outputs must not skew the payload metric");
        assert_eq!(p.len(), 4096);
    }

    #[test]
    fn hash_matches_content_equality() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |p: &Payload| {
            let mut s = DefaultHasher::new();
            p.hash(&mut s);
            s.finish()
        };
        let a = Payload::from(vec![1, 2]);
        let b = Payload::from(vec![1, 2]);
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
        // A view and a standalone payload with equal bytes hash alike.
        let base = Payload::from(vec![9, 1, 2, 9]);
        let v = Payload::slice_of(&base, 1..3);
        assert_eq!(v, a);
        assert_eq!(h(&v), h(&a));
    }
}
