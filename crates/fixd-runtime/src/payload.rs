//! [`Payload`] — one shared, immutable message-payload buffer.
//!
//! The paper's supervised-execution loop observes every message several
//! times over: the network delivers it, the Scroll records it (§3.1), and
//! the Time Machine captures it again inside consistent checkpoints
//! (§3.2). With `Vec<u8>` payloads each of those observation points paid
//! for a full byte copy. `Payload` is a newtype over `Arc<[u8]>`: the
//! bytes are materialized **once**, at send time, and every later
//! observer — duplicate deliveries, scroll entries, trace records,
//! in-flight checkpoint captures — aliases the same allocation. The only
//! component allowed to materialize a *second* copy is the corruption
//! fault path, which flips a byte through the copy-on-write
//! [`Payload::to_mut`].
//!
//! The module keeps two **thread-local** counters so the win is a
//! measured number rather than a claim:
//!
//! * **copied** bytes — bytes physically written into a payload
//!   allocation (initial materialization and copy-on-write splits);
//! * **aliased** bytes — bytes a [`Payload::clone`] *shared* instead of
//!   copying, i.e. exactly the bytes the pre-`Payload` code would have
//!   `memcpy`ed.
//!
//! Thread-locality is what makes the counters *attributable*: a
//! deterministic simulation runs one [`crate::World`] per thread at a
//! time, so a world can snapshot the counters at construction and report
//! exact per-world (and therefore per-campaign-cell) deltas — see
//! [`crate::World::payload_stats`]. Campaign cells aggregate those
//! per-cell figures; `bench/payload_demo` reads them from the campaign
//! report to emit `BENCH_payload.json`.

use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    static BYTES_COPIED: Cell<u64> = const { Cell::new(0) };
    static BYTES_ALIASED: Cell<u64> = const { Cell::new(0) };
}

fn add_copied(n: u64) {
    BYTES_COPIED.with(|c| c.set(c.get().wrapping_add(n)));
}

fn add_aliased(n: u64) {
    BYTES_ALIASED.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Snapshot of one thread's payload copy/alias counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PayloadStats {
    /// Bytes physically copied into payload allocations (materialization
    /// from `Vec<u8>`/`&[u8]` plus copy-on-write splits in [`Payload::to_mut`]).
    pub copied: u64,
    /// Bytes shared by `Payload::clone` instead of copied — the bytes a
    /// `Vec<u8>` payload representation would have duplicated.
    pub aliased: u64,
}

impl PayloadStats {
    /// Counter deltas since `earlier` (for scoped measurements).
    pub fn since(self, earlier: PayloadStats) -> PayloadStats {
        PayloadStats {
            copied: self.copied.wrapping_sub(earlier.copied),
            aliased: self.aliased.wrapping_sub(earlier.aliased),
        }
    }
}

/// Current values of this thread's payload counters. Counters are
/// per-thread and monotone; diff two snapshots (see
/// [`PayloadStats::since`]) to measure a region of interest that runs on
/// one thread — which every deterministic world does.
pub fn stats() -> PayloadStats {
    PayloadStats {
        copied: BYTES_COPIED.with(Cell::get),
        aliased: BYTES_ALIASED.with(Cell::get),
    }
}

/// An immutable, cheaply clonable message payload backed by one shared
/// allocation (`Arc<[u8]>`).
///
/// * Construction from owned or borrowed bytes copies once (counted).
/// * [`Clone`] is a reference-count bump — O(1), no bytes move.
/// * Reading is transparent: `Payload` derefs to `[u8]`, so indexing,
///   slicing, iteration, and `&msg.payload` as a `&[u8]` argument all
///   work exactly as they did when the field was a `Vec<u8>`.
/// * The single sanctioned mutation point is [`Payload::to_mut`]
///   (copy-on-write), used by the fault-injection corruption path.
#[derive(Debug, Eq)]
pub struct Payload(Arc<[u8]>);

// Hash over the byte contents — consistent with `PartialEq`, which is
// content equality (with a same-allocation fast path).
impl std::hash::Hash for Payload {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl Payload {
    /// A payload sharing no bytes with anyone (empty).
    pub fn empty() -> Self {
        Payload(Arc::from(&[][..]))
    }

    /// Copy `bytes` into a fresh shared allocation (counted as copied).
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        add_copied(bytes.len() as u64);
        Payload(Arc::from(bytes))
    }

    /// The payload bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Do `self` and `other` share one allocation? (True aliasing — the
    /// zero-copy property tests assert with this.)
    pub fn ptr_eq(&self, other: &Payload) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// How many `Payload` handles currently share this allocation.
    pub fn strong_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }

    /// Copy-on-write mutable access: if this handle is the unique owner
    /// the bytes are mutated in place (zero copies); otherwise the
    /// payload is split into a private copy first (counted as copied).
    ///
    /// Only the corruption fault path should need this — everything else
    /// in the runtime treats payloads as immutable.
    pub fn to_mut(&mut self) -> &mut [u8] {
        if Arc::get_mut(&mut self.0).is_none() {
            add_copied(self.0.len() as u64);
            self.0 = Arc::from(&self.0[..]);
        }
        Arc::get_mut(&mut self.0).expect("payload unique after copy-on-write split")
    }

    /// Clone the underlying `Arc` (internal helper so `Clone` can count).
    fn share(&self) -> Arc<[u8]> {
        add_aliased(self.0.len() as u64);
        Arc::clone(&self.0)
    }
}

#[allow(clippy::non_canonical_clone_impl)] // counts aliased bytes
impl Clone for Payload {
    fn clone(&self) -> Self {
        Payload(self.share())
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::empty()
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        add_copied(v.len() as u64);
        Payload(Arc::from(v))
    }
}

impl From<&[u8]> for Payload {
    fn from(b: &[u8]) -> Self {
        Payload::copy_from_slice(b)
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(b: &[u8; N]) -> Self {
        Payload::copy_from_slice(b)
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(b: [u8; N]) -> Self {
        Payload::copy_from_slice(&b)
    }
}

impl From<&Payload> for Payload {
    fn from(p: &Payload) -> Self {
        p.clone()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || self.0 == other.0
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        &self.0[..] == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        &self.0[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_reads() {
        let p = Payload::from(vec![1, 2, 3]);
        assert_eq!(p.len(), 3);
        assert_eq!(p[1], 2);
        assert_eq!(p.as_slice(), &[1, 2, 3]);
        assert_eq!(p, [1u8, 2, 3]);
        assert_eq!(p, vec![1u8, 2, 3]);
        assert_eq!(Payload::from(b"abc"), b"abc");
        assert!(Payload::empty().is_empty());
        assert!(Payload::default().is_empty());
    }

    #[test]
    fn clone_aliases_one_allocation() {
        let p = Payload::from(vec![9; 1024]);
        let q = p.clone();
        assert!(p.ptr_eq(&q));
        assert_eq!(p.strong_count(), 2);
        assert_eq!(p, q);
        // Equal content in a different allocation is == but not aliased.
        let r = Payload::from(vec![9; 1024]);
        assert_eq!(p, r);
        assert!(!p.ptr_eq(&r));
    }

    #[test]
    fn to_mut_in_place_when_unique() {
        // Pointer identity proves zero copies (counters are process-wide
        // and other test threads may bump them concurrently).
        let mut p = Payload::from(vec![1, 2, 3]);
        let addr = p.as_slice().as_ptr();
        p.to_mut()[0] ^= 0xFF;
        assert_eq!(
            p.as_slice().as_ptr(),
            addr,
            "unique owner mutates in place — no copy"
        );
        assert_eq!(p[0], 0xFE);
    }

    #[test]
    fn to_mut_copies_once_when_shared() {
        let mut p = Payload::from(vec![7; 100]);
        let q = p.clone();
        p.to_mut()[0] = 0;
        assert!(!p.ptr_eq(&q), "p split away from q");
        assert_eq!(q[0], 7, "the other owner is untouched");
        assert_eq!(p[0], 0);
        // The split made p unique again: further mutation is in-place.
        let addr = p.as_slice().as_ptr();
        p.to_mut()[1] = 1;
        assert_eq!(p.as_slice().as_ptr(), addr);
    }

    #[test]
    fn counters_track_copies_and_aliases() {
        let before = stats();
        let p = Payload::from(vec![0; 50]);
        let _q = p.clone();
        let _r = p.clone();
        let delta = stats().since(before);
        assert!(delta.copied >= 50);
        assert!(delta.aliased >= 100, "two clones alias 50 bytes each");
    }

    #[test]
    fn hash_matches_content_equality() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |p: &Payload| {
            let mut s = DefaultHasher::new();
            p.hash(&mut s);
            s.finish()
        };
        let a = Payload::from(vec![1, 2]);
        let b = Payload::from(vec![1, 2]);
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }
}
