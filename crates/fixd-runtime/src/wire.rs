//! Minimal binary encoding helpers (LEB128 varints + length-prefixed
//! slices) used by example programs to snapshot their state and by the
//! Scroll's codec. Hand-rolled so the log/wire format is fully
//! self-contained, with no external serialization dependency.

/// Append an unsigned LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decode an unsigned LEB128 varint from `buf[*pos..]`, advancing `pos`.
/// Returns `None` on truncation or overlong (>10 byte) encodings.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // overflow
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// ZigZag-encode a signed integer then varint it.
pub fn put_varint_i64(buf: &mut Vec<u8>, v: i64) {
    put_varint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Inverse of [`put_varint_i64`].
pub fn get_varint_i64(buf: &[u8], pos: &mut usize) -> Option<i64> {
    let z = get_varint(buf, pos)?;
    Some(((z >> 1) as i64) ^ -((z & 1) as i64))
}

/// Append a length-prefixed byte slice.
pub fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_varint(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

/// Decode a length-prefixed byte slice.
pub fn get_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let len = get_varint(buf, pos)? as usize;
    let end = pos.checked_add(len)?;
    if end > buf.len() {
        return None;
    }
    let out = &buf[*pos..end];
    *pos = end;
    Some(out)
}

/// Decode a length-prefixed byte slice into a fresh shared [`Payload`]
/// allocation (the one copy a decode inherently needs; every later
/// observer of the decoded message aliases it).
///
/// [`Payload`]: crate::payload::Payload
pub fn get_payload(buf: &[u8], pos: &mut usize) -> Option<crate::payload::Payload> {
    get_bytes(buf, pos).map(crate::payload::Payload::from)
}

/// Append a `u64` slice, length-prefixed.
pub fn put_u64s(buf: &mut Vec<u8>, xs: &[u64]) {
    put_varint(buf, xs.len() as u64);
    for &x in xs {
        put_varint(buf, x);
    }
}

/// Decode a `u64` vector written by [`put_u64s`].
pub fn get_u64s(buf: &[u8], pos: &mut usize) -> Option<Vec<u64>> {
    let n = get_varint(buf, pos)? as usize;
    // Each element is at least one byte; reject absurd lengths early.
    if n > buf.len().saturating_sub(*pos) {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_varint(buf, pos)?);
    }
    Some(out)
}

/// A stable 64-bit FNV-1a hash, used for state fingerprints throughout the
/// workspace (deterministic across runs and platforms, unlike
/// `DefaultHasher`). One definition for the whole workspace: the
/// content-addressed page store keys pages with the same function, so
/// this delegates to [`fixd_store::fnv1a`].
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fixd_store::fnv1a(bytes)
}

/// Combine two fingerprints order-dependently.
pub fn fnv_mix(a: u64, b: u64) -> u64 {
    let mut h = a ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_add(b);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_truncated_is_none() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), None);
    }

    #[test]
    fn signed_roundtrip() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300, 300] {
            let mut buf = Vec::new();
            put_varint_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint_i64(&buf, &mut pos), Some(v));
        }
    }

    #[test]
    fn bytes_roundtrip_and_bounds() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello");
        put_bytes(&mut buf, b"");
        let mut pos = 0;
        assert_eq!(get_bytes(&buf, &mut pos), Some(&b"hello"[..]));
        assert_eq!(get_bytes(&buf, &mut pos), Some(&b""[..]));
        assert_eq!(get_bytes(&buf, &mut pos), None, "exhausted");
        // corrupt length
        let bad = [0x05, b'h', b'i'];
        let mut p = 0;
        assert_eq!(get_bytes(&bad, &mut p), None);
    }

    #[test]
    fn payload_roundtrip_matches_bytes() {
        // `get_payload` must read exactly the `put_bytes` framing.
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"zero-copy");
        let mut pos = 0;
        let p = get_payload(&buf, &mut pos).unwrap();
        assert_eq!(p, b"zero-copy");
        assert_eq!(pos, buf.len());
        let mut p2 = 0;
        assert_eq!(get_payload(&[0x05, b'h', b'i'], &mut p2), None, "truncated");
    }

    #[test]
    fn u64s_roundtrip() {
        let xs = vec![0, 1, u64::MAX, 42];
        let mut buf = Vec::new();
        put_u64s(&mut buf, &xs);
        let mut pos = 0;
        assert_eq!(get_u64s(&buf, &mut pos), Some(xs));
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv_mix(1, 2), fnv_mix(2, 1));
    }
}
